"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``      — run the write-skew demonstration (SI vs WSI).
* ``classify``  — classify a history given in Berenson notation.
* ``figures``   — regenerate the paper's figures quickly as ASCII charts.
* ``micro``     — the §6.2 operation-latency table.
"""

from __future__ import annotations

import argparse
import sys


def cmd_demo(_args) -> int:
    from repro import create_system
    from repro.core.errors import ConflictAbort

    for level in ("si", "wsi"):
        system = create_system(level)
        init = system.manager.begin()
        init.write("x", 1)
        init.write("y", 1)
        init.commit()
        t1, t2 = system.manager.begin(), system.manager.begin()
        for txn, target in ((t1, "x"), (t2, "y")):
            x, y = txn.read("x"), txn.read("y")
            txn.write(target, (x if target == "x" else y) - 1)
        t1.commit()
        try:
            t2.commit()
            verdict = "both committed -> write skew admitted"
        except ConflictAbort:
            verdict = "second txn aborted -> serializable"
        check = system.manager.begin()
        total = check.read("x") + check.read("y")
        print(f"{level.upper():>4}: {verdict}; x+y = {total}")
    return 0


def cmd_classify(args) -> int:
    from repro.history import (
        allowed_under_si,
        allowed_under_wsi,
        is_serializable,
        parse_history,
    )

    history = parse_history(" ".join(args.history))
    print(f"history:       {history}")
    print(f"serializable:  {is_serializable(history)}")
    print(f"SI allows:     {allowed_under_si(history).allowed}")
    print(f"WSI allows:    {allowed_under_wsi(history).allowed}")
    return 0


def cmd_micro(_args) -> int:
    from repro.sim.microbench import run_microbench

    print(run_microbench(samples=2000).as_table())
    return 0


def cmd_figures(args) -> int:
    from repro.bench.plots import abort_rate_chart, latency_throughput_chart
    from repro.sim.cluster_sim import sweep_cluster
    from repro.sim.oracle_bench import sweep_clients

    measure = 4.0 if args.quick else 10.0
    clients = [5, 20, 80, 320] if args.quick else [5, 10, 20, 40, 80, 160, 320, 640]

    print("Figure 5 (status oracle)...", file=sys.stderr)
    fig5 = {
        level.upper(): [
            (r.throughput_tps, r.avg_latency_ms)
            for r in sweep_clients(level, client_counts=[1, 4, 8, 16], measure=0.2)
        ]
        for level in ("wsi", "si")
    }
    print(latency_throughput_chart("Figure 5. Overhead on the status oracle.", fig5))

    for fig, dist in (("6", "uniform"), ("7", "zipfian"), ("9", "zipfianLatest")):
        print(f"Figure {fig} ({dist})...", file=sys.stderr)
        series = {
            level.upper(): [
                (r.throughput_tps, r.avg_latency_ms)
                for r in sweep_cluster(
                    level, dist, client_counts=clients, measure=measure
                )
            ]
            for level in ("wsi", "si")
        }
        print()
        print(
            latency_throughput_chart(
                f"Figure {fig}. Performance with {dist} distribution.", series
            )
        )

    for fig, dist in (("8", "zipfian"), ("10", "zipfianLatest")):
        print(f"Figure {fig} aborts ({dist})...", file=sys.stderr)
        series = {
            level.upper(): [
                (r.throughput_tps, 100 * r.abort_rate)
                for r in sweep_cluster(
                    level, dist, client_counts=clients, measure=measure
                )
            ]
            for level in ("wsi", "si")
        }
        print()
        print(abort_rate_chart(f"Figure {fig}. Abort rate with {dist} distribution.", series))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'A Critique of Snapshot Isolation' (EuroSys'12)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="write-skew demo: SI vs WSI")
    p_classify = sub.add_parser("classify", help="classify a history")
    p_classify.add_argument("history", nargs="+", help="e.g. 'r1[x] w2[x] c2 c1'")
    sub.add_parser("micro", help="§6.2 operation-latency table")
    p_fig = sub.add_parser("figures", help="regenerate figures as ASCII charts")
    p_fig.add_argument("--quick", action="store_true", help="fewer points, shorter runs")

    args = parser.parse_args(argv)
    handlers = {
        "demo": cmd_demo,
        "classify": cmd_classify,
        "micro": cmd_micro,
        "figures": cmd_figures,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
