"""Single-client operation-latency breakdown (§6.2 microbenchmarks).

"Here we run the system with one client and break down the latency of
different operations involved in a transaction: (i) start timestamp
request, (ii) read, (iii) write, and (iv) commit request."

One simulated client issues each operation in isolation against the
otherwise-idle cluster; the measured means should land on the latency
model's calibration points (start 0.17 ms, cold read 38.8 ms, write
1.13 ms, commit 4.1 ms), which experiment E1 verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.status_oracle import CommitRequest, make_oracle
from repro.sim.engine import Engine, Resource
from repro.sim.latency import LatencyModel, paper_latency_model
from repro.workload.distributions import UniformDistribution


@dataclass
class MicrobenchResult:
    """Mean latencies per operation type, in milliseconds."""

    start_timestamp_ms: float
    read_cold_ms: float
    read_hot_ms: float
    write_ms: float
    commit_ms: float
    samples_per_op: int

    def as_table(self) -> str:
        rows = [
            ("start timestamp", self.start_timestamp_ms, 0.17),
            ("random read (cold)", self.read_cold_ms, 38.8),
            ("write", self.write_ms, 1.13),
            ("commit request", self.commit_ms, 4.1),
        ]
        lines = [f"{'operation':<22}{'measured (ms)':>15}{'paper (ms)':>12}"]
        for name, measured, paper in rows:
            lines.append(f"{name:<22}{measured:>15.3f}{paper:>12.2f}")
        return "\n".join(lines)


def run_microbench(
    samples: int = 2000,
    latency: Optional[LatencyModel] = None,
    seed: int = 7,
    keyspace: int = 20_000_000,
) -> MicrobenchResult:
    """Measure per-operation latency with a single client."""
    lat = latency or paper_latency_model(seed=seed)
    engine = Engine()
    oracle = make_oracle("wsi")
    keys = UniformDistribution(keyspace, seed=seed)
    sums: Dict[str, float] = {
        "start": 0.0, "read_cold": 0.0, "read_hot": 0.0,
        "write": 0.0, "commit": 0.0,
    }

    def client():
        for _ in range(samples):
            # start timestamp
            t0 = engine.now
            yield engine.timeout(lat.sample_start_timestamp())
            start_ts = oracle.begin()
            sums["start"] += engine.now - t0
            # cold read
            t0 = engine.now
            yield engine.timeout(lat.sample_read(cache_hit=False))
            sums["read_cold"] += engine.now - t0
            # hot read
            t0 = engine.now
            yield engine.timeout(lat.sample_read(cache_hit=True))
            sums["read_hot"] += engine.now - t0
            # write
            t0 = engine.now
            row = keys.next_key()
            yield engine.timeout(lat.sample_write())
            sums["write"] += engine.now - t0
            # commit: oracle service + WAL persistence
            t0 = engine.now
            request = CommitRequest(
                start_ts, write_set=frozenset([row]), read_set=frozenset([row])
            )
            service = lat.oracle_service_wsi(1, 1)
            yield engine.timeout(lat.sample(service))
            oracle.commit(request)
            yield engine.timeout(lat.sample(lat.commit_wal))
            sums["commit"] += engine.now - t0

    engine.process(client())
    engine.run()
    scale = 1000.0 / samples
    return MicrobenchResult(
        start_timestamp_ms=sums["start"] * scale,
        read_cold_ms=sums["read_cold"] * scale,
        read_hot_ms=sums["read_hot"] * scale,
        write_ms=sums["write"] * scale,
        commit_ms=sums["commit"] * scale,
        samples_per_op=samples,
    )
