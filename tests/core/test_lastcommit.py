"""ArrayLastCommit: mapping parity with dict, scans, resets, the factory.

The array backend's whole claim is *representation change, zero
semantics change*: every test here drives the store and a plain dict
through the same operations and requires identical observable state.
``scan_conflict`` additionally must match the dict backend's scan
*accounting* — same first conflict row, same examined count — because
the decide loops fold both into pinned stats.
"""

from collections import OrderedDict

import pytest

from repro.core.keyspace import KeyInterner
from repro.core.lastcommit import (
    ArrayLastCommit,
    BoundedArrayLastCommit,
    LASTCOMMIT_ENV,
    NUMPY_MIN_ROWS,
    default_lastcommit_kind,
    make_lastcommit,
)


def dict_scan(mapping, rows, start_ts):
    """The dict backend's faithful first-conflict scan + examined count."""
    examined = 0
    for row in rows:
        examined += 1
        last = mapping.get(row)
        if last is not None and last > start_ts:
            return row, examined
    return None, examined


class TestMappingParity:
    def test_set_get_del_iter_len_match_dict(self):
        store, mirror = ArrayLastCommit(), {}
        for key, ts in [("a", 5), (3, 7), ("b", 2), ("a", 9), ((1, 2), 4)]:
            store[key] = ts
            mirror[key] = ts
        assert dict(store) == mirror
        assert len(store) == len(mirror)
        assert store == mirror and mirror == dict(store)
        assert store["a"] == 9 and store.get("zzz") is None
        del store["b"]
        del mirror["b"]
        assert dict(store) == mirror
        assert "b" not in store
        with pytest.raises(KeyError):
            store["b"]
        with pytest.raises(KeyError):
            del store["b"]

    def test_update_and_clear(self):
        store = ArrayLastCommit()
        store.update({1: 10, 2: 20})
        assert dict(store) == {1: 10, 2: 20}
        store.clear()
        assert dict(store) == {} and len(store) == 0
        # Slots survive a clear: re-install reuses the same ids.
        kid = store.interner.id_of(1)
        store[1] = 30
        assert store.interner.id_of(1) == kid

    def test_zero_and_negative_timestamps_rejected(self):
        store = ArrayLastCommit()
        with pytest.raises(ValueError):
            store["row"] = 0
        with pytest.raises(ValueError):
            store.install(["row"], -1)

    def test_deleted_key_keeps_its_slot(self):
        store = ArrayLastCommit()
        store["x"] = 3
        kid = store.interner.id_of("x")
        del store["x"]
        store["x"] = 8
        assert store.interner.id_of("x") == kid


class TestInstallAndScan:
    def test_install_matches_per_key_stores(self):
        store, mirror = ArrayLastCommit(), {}
        store.install(frozenset({"p", "q", "r"}), 11)
        mirror.update(dict.fromkeys({"p", "q", "r"}, 11))
        store.install(["q", "s"], 12)
        mirror.update(dict.fromkeys(["q", "s"], 12))
        assert dict(store) == mirror and len(store) == len(mirror)

    @pytest.mark.parametrize("rows_factory", [tuple, list, frozenset])
    def test_scan_matches_dict_scan(self, rows_factory):
        store, mirror = ArrayLastCommit(), {}
        for key in range(0, 40, 2):
            store[key] = key + 100
            mirror[key] = key + 100
        for start in (90, 105, 120, 200):
            rows = rows_factory(range(30))
            # frozenset scan order is the store's own iteration order --
            # compare against a dict_scan over the *same* row sequence.
            seq = tuple(rows)
            assert store.scan_conflict(seq, start) == dict_scan(
                mirror, seq, start
            )

    def test_scan_on_unseen_rows(self):
        store = ArrayLastCommit()
        assert store.scan_conflict((), 5) == (None, 0)
        assert store.scan_conflict(("never", "seen"), 5) == (None, 2)

    def test_scan_single_row(self):
        store = ArrayLastCommit()
        store["r"] = 10
        assert store.scan_conflict(("r",), 5) == ("r", 1)
        assert store.scan_conflict(("r",), 10) == (None, 1)
        assert store.scan_conflict(("other",), 5) == (None, 1)

    def test_vectorised_scan_matches_scalar_on_int_keys(self):
        # Above NUMPY_MIN_ROWS with a pure-int keyspace the scan takes
        # the int lane (when numpy is present); the verdict and count
        # must match the scalar reference bit-for-bit either way.
        store, mirror = ArrayLastCommit(), {}
        for key in range(0, 4 * NUMPY_MIN_ROWS, 2):
            store[key] = 50 + key
            mirror[key] = 50 + key
        assert store.interner.int_lane_ok
        for start in (40, 60, 100, 10_000):
            rows = tuple(range(3 * NUMPY_MIN_ROWS))
            assert store.scan_conflict(rows, start) == dict_scan(
                mirror, rows, start
            )

    def test_vectorised_scan_with_mixed_checked_keys(self):
        # Interned keys are all int (lane on) but the *checked* set
        # contains keys numpy cannot cast -- the scan must fall back and
        # still agree with the scalar reference.
        store, mirror = ArrayLastCommit(), {}
        for key in range(NUMPY_MIN_ROWS * 2):
            store[key] = 99
            mirror[key] = 99
        rows = tuple(range(NUMPY_MIN_ROWS)) + ("str-row",)
        for start in (50, 200):
            assert store.scan_conflict(rows, start) == dict_scan(
                mirror, rows, start
            )

    def test_float_checked_key_cannot_false_negative(self):
        # 2.5 truncates to 2 under a vector cast; the lane must not let
        # that report "no conflict" when the dict scan would conflict.
        store, mirror = ArrayLastCommit(), {}
        for key in range(NUMPY_MIN_ROWS * 2):
            store[key] = 10
            mirror[key] = 10
        store[2.5] = 1000  # non-int intern: kills the lane
        mirror[2.5] = 1000
        assert not store.interner.int_lane_ok
        rows = tuple(range(NUMPY_MIN_ROWS)) + (2.5,)
        assert store.scan_conflict(rows, 500) == dict_scan(mirror, rows, 500)


class TestBulkReset:
    def test_full_reset(self):
        store = ArrayLastCommit()
        store.install(range(10), 5)
        store.bulk_reset()
        assert dict(store) == {} and len(store) == 0
        assert len(store.interner) == 10  # interner survives

    def test_watermark_reset(self):
        store, mirror = ArrayLastCommit(), {}
        for key, ts in [("a", 3), ("b", 7), ("c", 5), ("d", 9)]:
            store[key] = ts
            mirror[key] = ts
        store.bulk_reset(watermark=5)
        survivors = {k: v for k, v in mirror.items() if v > 5}
        assert dict(store) == survivors and len(store) == len(survivors)


class TestBoundedArray:
    def test_lru_order_matches_ordereddict(self):
        store, mirror = BoundedArrayLastCommit(), OrderedDict()
        ops = [("a", 1), ("b", 2), ("c", 3), ("a", 4), ("d", 5)]
        for key, ts in ops:
            # The bounded oracle's rewrite idiom: pop-then-reinsert.
            if key in store:
                store.pop(key)
            if key in mirror:
                mirror.pop(key)
            store[key] = ts
            mirror[key] = ts
        assert list(store) == list(mirror)
        assert store.popitem(last=False) == mirror.popitem(last=False)
        assert store.popitem(last=True) == mirror.popitem(last=True)
        assert list(store) == list(mirror)
        assert dict(store) == dict(mirror)

    def test_popitem_empty(self):
        with pytest.raises(KeyError):
            BoundedArrayLastCommit().popitem()

    def test_eviction_keeps_slot_array(self):
        store = BoundedArrayLastCommit()
        for key in range(8):
            store[key] = key + 1
        while len(store) > 3:
            store.popitem(last=False)
        assert len(store) == 3
        assert store.slot_count() >= 8  # slots are never reclaimed
        assert dict(store) == {5: 6, 6: 7, 7: 8}


class TestFactory:
    def test_default_kind_env(self, monkeypatch):
        monkeypatch.delenv(LASTCOMMIT_ENV, raising=False)
        assert default_lastcommit_kind() == "dict"
        monkeypatch.setenv(LASTCOMMIT_ENV, "ARRAY")
        assert default_lastcommit_kind() == "array"

    def test_make_lastcommit_kinds(self, monkeypatch):
        monkeypatch.delenv(LASTCOMMIT_ENV, raising=False)
        assert isinstance(make_lastcommit(), dict)
        assert isinstance(make_lastcommit("dict", bounded=True), OrderedDict)
        assert type(make_lastcommit("array")) is ArrayLastCommit
        assert type(make_lastcommit("array", bounded=True)) is (
            BoundedArrayLastCommit
        )
        with pytest.raises(ValueError):
            make_lastcommit("mmap")

    def test_instance_passthrough_and_shared_interner(self):
        interner = KeyInterner()
        store = ArrayLastCommit(interner)
        assert make_lastcommit(store) is store
        assert store.interner is interner
