"""Snapshot reads over the multi-version store.

Section 2.2 of the paper specifies how a reading transaction obtains its
snapshot: scanning versions of a row newest-first (below its start
timestamp), transaction ``txn_r`` *skips* a version written by ``txn_w``
if ``txn_w`` is

1. not committed yet,
2. aborted, or
3. committed with a commit timestamp larger than ``Ts(txn_r)``.

The first version that survives the filter is the snapshot value.  The
commit state comes from a :class:`CommitStatusSource` — in the paper this
is either the status oracle itself, commit timestamps written back to the
data servers, or a read-only replica of the commit table kept on the
clients (the configuration the paper evaluates, and the one our
:class:`repro.core.commit_table.CommitTable` models).
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, Tuple

from repro.mvcc.store import MVCCStore, RowKey
from repro.mvcc.version import Version


class CommitStatusSource(Protocol):
    """Where the reader learns the fate of a writing transaction."""

    def commit_timestamp(self, start_ts: int) -> Optional[int]:
        """Commit timestamp of the txn that started at ``start_ts``.

        Returns ``None`` if that transaction has not committed (still
        running, or aborted).
        """

    def is_aborted(self, start_ts: int) -> bool:
        """True if the transaction that started at ``start_ts`` aborted."""


class SnapshotReader:
    """Applies the paper's three-way skip rule to produce snapshot reads."""

    def __init__(self, store: MVCCStore, commit_source: CommitStatusSource) -> None:
        self._store = store
        self._commits = commit_source

    def read(
        self,
        row: RowKey,
        snapshot_ts: int,
        own_start_ts: Optional[int] = None,
    ) -> Optional[Version]:
        """Return the version of ``row`` visible at ``snapshot_ts``.

        ``own_start_ts`` lets a transaction observe its *own* uncommitted
        writes ("the transaction observes all its own changes", Section 2):
        a version written at exactly ``own_start_ts`` is always visible.

        Returns ``None`` when no committed version is visible (including
        when the visible version is a tombstone — the caller decides how
        to surface deletions via :meth:`read_value`).
        """
        for version in self._store.get_versions(row, max_timestamp=snapshot_ts):
            if own_start_ts is not None and version.timestamp == own_start_ts:
                return version
            if self._visible(version.timestamp, snapshot_ts):
                return version
        return None

    def read_value(
        self,
        row: RowKey,
        snapshot_ts: int,
        own_start_ts: Optional[int] = None,
        default: Any = None,
    ) -> Any:
        """Like :meth:`read` but unwraps the value; tombstones read as
        ``default`` (the row looks deleted)."""
        version = self.read(row, snapshot_ts, own_start_ts)
        if version is None or version.is_tombstone:
            return default
        return version.value

    def read_with_provenance(
        self, row: RowKey, snapshot_ts: int, own_start_ts: Optional[int] = None
    ) -> Tuple[Optional[Version], int]:
        """Return (visible version, number of versions skipped).

        The skip count is a useful metric: under heavy aborts or long
        transactions the reader wades through more garbage, which the
        paper's HBase prototype pays as extra commit-table lookups.
        """
        skipped = 0
        for version in self._store.get_versions(row, max_timestamp=snapshot_ts):
            if own_start_ts is not None and version.timestamp == own_start_ts:
                return version, skipped
            if self._visible(version.timestamp, snapshot_ts):
                return version, skipped
            skipped += 1
        return None, skipped

    def _visible(self, writer_start_ts: int, snapshot_ts: int) -> bool:
        """The paper's skip rule, inverted: is this version in-snapshot?"""
        if self._commits.is_aborted(writer_start_ts):
            return False  # rule (ii): aborted
        commit_ts = self._commits.commit_timestamp(writer_start_ts)
        if commit_ts is None:
            return False  # rule (i): not committed yet
        # rule (iii): committed, but after our snapshot was taken.  The
        # paper reads "the latest version of data with commit timestamp
        # delta < Ts(txn_r)", i.e. strictly before the start timestamp.
        return commit_ts < snapshot_ts
