"""E9 — §5.1 read-only claims: zero aborts, start-timestamp-only cost.

Paper: (i) read-only transactions never abort under either level;
(ii) their sole oracle cost is obtaining the start timestamp — the
commit request carries empty sets and triggers no conflict computation
and no WAL write.
"""

import pytest

from repro.bench import format_table, run_interleaved
from repro.core import create_system
from repro.workload import mixed_workload


def run_contended(level: str):
    system = create_system(level)
    wl = mixed_workload(distribution="zipfian", keyspace=200, seed=17)
    specs = wl.batch(3000)
    result = run_interleaved(system.manager, specs, concurrency=24, seed=18)
    ro_total = sum(1 for s in specs if s.read_only)
    return system, result, ro_total


@pytest.mark.figure("readonly")
@pytest.mark.parametrize("level", ["si", "wsi"])
def test_e9_read_only_never_aborts(benchmark, print_header, level):
    system, result, ro_total = benchmark.pedantic(
        lambda: run_contended(level), rounds=1, iterations=1
    )
    print_header(f"E9 — read-only transactions under {level.upper()} (hot zipfian)")
    stats = system.oracle.stats
    print(
        format_table(
            ["metric", "value"],
            [
                ("total transactions", result.total),
                ("write-txn aborts", result.aborted),
                ("write-txn abort rate", f"{100 * result.abort_rate:.1f}%"),
                ("read-only submitted", ro_total),
                ("read-only committed", result.read_only_committed),
                ("read-only aborted", ro_total - result.read_only_committed),
                ("oracle fast-path commits", stats.read_only_commits),
                ("oracle rows checked (fast path adds 0)", stats.rows_checked),
            ],
        )
    )
    # Claim (i): every read-only transaction commits, despite heavy
    # write contention aborting a visible share of write transactions.
    assert result.read_only_committed == ro_total
    assert result.aborted > 0  # contention was real
    # Claim (ii): the oracle performed zero conflict work for them.
    assert stats.read_only_commits >= ro_total
