"""Property tests linking the oracle algorithms to the paper's definitions.

The incremental ``lastCommit`` check (Algorithms 1/2) and the declarative
conflict predicates (§2/§4.1) are two formulations of the same thing;
these tests assert they agree on random workloads, plus the invariants
the protocol promises.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.conflicts import TxnFootprint, conflicts_under
from repro.core.status_oracle import CommitRequest, make_oracle

ROWS = ["r0", "r1", "r2", "r3", "r4"]


@st.composite
def oracle_scripts(draw):
    """A script of begin/commit steps over a small row alphabet.

    Encoded as a list of steps; each step either opens a txn (with its
    future read/write sets) or commits the i-th currently-open txn.
    """
    steps = []
    num = draw(st.integers(min_value=1, max_value=10))
    for _ in range(num):
        reads = draw(st.sets(st.sampled_from(ROWS), max_size=3))
        writes = draw(st.sets(st.sampled_from(ROWS), max_size=3))
        gap = draw(st.integers(min_value=0, max_value=3))
        steps.append((frozenset(reads), frozenset(writes), gap))
    return steps


def run_script(level: str, script):
    """Execute: open each txn, commit it after `gap` later txns opened."""
    oracle = make_oracle(level)
    open_list = []  # (start_ts, reads, writes, commit_after_step)
    footprints = []
    step = 0
    pending = []
    for reads, writes, gap in script:
        start = oracle.begin()
        pending.append([start, reads, writes, step + gap])
        step += 1
        # commit everything due
        for entry in list(pending):
            if entry[3] <= step - 1:
                pending.remove(entry)
                s, r, w, _ = entry
                result = oracle.commit(
                    CommitRequest(s, write_set=w, read_set=r)
                )
                if result.committed:
                    footprints.append(
                        TxnFootprint(s, s, result.commit_ts, r, w)
                    )
    for s, r, w, _ in pending:
        result = oracle.commit(CommitRequest(s, write_set=w, read_set=r))
        if result.committed:
            footprints.append(TxnFootprint(s, s, result.commit_ts, r, w))
    return oracle, footprints


@given(script=oracle_scripts())
@settings(max_examples=200, deadline=None)
def test_si_committed_set_has_no_ww_conflicts(script):
    _, committed = run_script("si", script)
    for i, a in enumerate(committed):
        for b in committed[i + 1:]:
            assert not conflicts_under("si", a, b), (a, b)


@given(script=oracle_scripts())
@settings(max_examples=200, deadline=None)
def test_wsi_committed_set_has_no_rw_conflicts(script):
    _, committed = run_script("wsi", script)
    for i, a in enumerate(committed):
        for b in committed[i + 1:]:
            assert not conflicts_under("wsi", a, b), (a, b)


@given(script=oracle_scripts())
@settings(max_examples=100, deadline=None)
def test_commit_timestamps_unique_and_ordered(script):
    for level in ("si", "wsi"):
        _, committed = run_script(level, script)
        # read-only transactions have no commit timestamp (fast path —
        # §4.1 condition 3 exempts every empty-write-set transaction,
        # whether or not it submitted reads): only writers consume one.
        writers = [f for f in committed if f.write_set]
        commit_times = [f.commit_ts for f in writers]
        assert len(set(commit_times)) == len(commit_times)
        for f in writers:
            assert f.commit_ts > f.start_ts


@given(script=oracle_scripts())
@settings(max_examples=100, deadline=None)
def test_lastcommit_equals_max_committed_writer(script):
    # lastCommit(r) must equal the max commit_ts over committed writers
    # of r — the induction invariant behind line 2 of both algorithms.
    for level in ("si", "wsi"):
        oracle, committed = run_script(level, script)
        for row in ROWS:
            expected = max(
                (f.commit_ts for f in committed if row in f.write_set),
                default=None,
            )
            assert oracle.last_commit(row) == expected


@given(
    script=oracle_scripts(),
    read_only_positions=st.sets(st.integers(min_value=0, max_value=9)),
)
@settings(max_examples=100, deadline=None)
def test_read_only_requests_always_commit(script, read_only_positions):
    # Force some transactions read-only (empty sets per §5.1): they must
    # all commit, at both levels, regardless of surrounding traffic.
    for level in ("si", "wsi"):
        oracle = make_oracle(level)
        for idx, (reads, writes, _) in enumerate(script):
            start = oracle.begin()
            if idx in read_only_positions:
                result = oracle.commit(CommitRequest(start))
                assert result.committed
            else:
                oracle.commit(
                    CommitRequest(start, write_set=writes, read_set=reads)
                )
