"""Unit tests for Algorithm 3 (the bounded-memory oracle with Tmax)."""

import pytest

from repro.core.status_oracle import (
    BoundedStatusOracle,
    CommitRequest,
    SnapshotIsolationOracle,
    WriteSnapshotIsolationOracle,
)


def req(start, writes=(), reads=()):
    return CommitRequest(
        start, write_set=frozenset(writes), read_set=frozenset(reads)
    )


class TestEviction:
    def test_capacity_enforced(self):
        oracle = BoundedStatusOracle(policy="si", max_rows=2)
        for row in ("a", "b", "c"):
            ts = oracle.begin()
            assert oracle.commit(req(ts, writes={row})).committed
        assert oracle.lastcommit_size == 2
        assert oracle.last_commit("a") is None  # evicted (oldest)
        assert oracle.last_commit("c") is not None

    def test_tmax_tracks_evicted_maximum(self):
        oracle = BoundedStatusOracle(policy="si", max_rows=1)
        ts1 = oracle.begin()
        r1 = oracle.commit(req(ts1, writes={"a"}))
        ts2 = oracle.begin()
        oracle.commit(req(ts2, writes={"b"}))  # evicts a
        assert oracle.tmax == r1.commit_ts

    def test_tmax_zero_before_eviction(self):
        oracle = BoundedStatusOracle(policy="si", max_rows=100)
        ts = oracle.begin()
        oracle.commit(req(ts, writes={"a"}))
        assert oracle.tmax == 0

    def test_rewrite_refreshes_lru_position(self):
        oracle = BoundedStatusOracle(policy="si", max_rows=2)
        for row in ("a", "b"):
            ts = oracle.begin()
            oracle.commit(req(ts, writes={row}))
        # rewrite "a" so it becomes most-recent; then "c" evicts "b"
        ts = oracle.begin()
        oracle.commit(req(ts, writes={"a"}))
        ts = oracle.begin()
        oracle.commit(req(ts, writes={"c"}))
        assert oracle.last_commit("a") is not None
        assert oracle.last_commit("b") is None


class TestPessimisticAbort:
    def test_line8_unknown_row_old_snapshot_aborts(self):
        oracle = BoundedStatusOracle(policy="si", max_rows=1)
        stale = oracle.begin()  # old start timestamp
        # fill and evict so Tmax rises above `stale`
        for row in ("a", "b", "c"):
            ts = oracle.begin()
            oracle.commit(req(ts, writes={row}))
        assert oracle.tmax > stale
        result = oracle.commit(req(stale, writes={"zz"}))  # row unknown
        assert not result.committed
        assert result.reason == "tmax"
        assert oracle.stats.tmax_aborts == 1

    def test_fresh_snapshot_unknown_row_commits(self):
        oracle = BoundedStatusOracle(policy="si", max_rows=1)
        for row in ("a", "b", "c"):
            ts = oracle.begin()
            oracle.commit(req(ts, writes={row}))
        fresh = oracle.begin()  # starts above Tmax
        assert fresh > oracle.tmax
        assert oracle.commit(req(fresh, writes={"zz"})).committed

    def test_known_row_not_subject_to_tmax(self):
        # A row still in memory uses the precise check even for old txns.
        oracle = BoundedStatusOracle(policy="si", max_rows=10)
        stale = oracle.begin()
        ts = oracle.begin()
        oracle.commit(req(ts, writes={"other"}))
        # "mine" was never written: lastCommit is None and Tmax == 0,
        # so the stale transaction can still commit.
        assert oracle.commit(req(stale, writes={"mine"})).committed


class TestSafetyOneSided:
    """Eviction may add aborts but never admits a true conflict."""

    @pytest.mark.parametrize("policy", ["si", "wsi"])
    def test_committed_set_is_conflict_free(self, policy):
        # Tiny lastCommit (heavy eviction) must never let two genuinely
        # conflicting transactions both commit: check every committed
        # pair against the offline predicates of repro.core.conflicts.
        import random

        from repro.core.conflicts import TxnFootprint, conflicts_under

        rng = random.Random(11)
        oracle = BoundedStatusOracle(policy=policy, max_rows=3)
        rows = [f"r{i}" for i in range(12)]
        committed = []
        open_txns = []
        for _ in range(400):
            if open_txns and (rng.random() < 0.5 or len(open_txns) >= 5):
                start_ts, wset, rset = open_txns.pop(
                    rng.randrange(len(open_txns))
                )
                result = oracle.commit(req(start_ts, wset, rset))
                if result.committed:
                    committed.append(
                        TxnFootprint(
                            txn_id=start_ts,
                            start_ts=start_ts,
                            commit_ts=result.commit_ts,
                            read_set=rset,
                            write_set=wset,
                        )
                    )
            else:
                wset = frozenset(rng.sample(rows, rng.randint(1, 3)))
                rset = frozenset(rng.sample(rows, rng.randint(0, 3)))
                open_txns.append((oracle.begin(), wset, rset))
        assert len(committed) > 50  # the workload actually commits things
        for i, a in enumerate(committed):
            for b in committed[i + 1:]:
                assert not conflicts_under(policy, a, b), (a, b)


class TestSizing:
    def test_rows_for_memory_appendix_a(self):
        # Appendix A: 32 bytes/row -> 1 GB holds 32M rows.
        assert BoundedStatusOracle.rows_for_memory(2 ** 30) == 2 ** 30 // 32
        assert BoundedStatusOracle.rows_for_memory(32) == 1
        assert BoundedStatusOracle.rows_for_memory(0) == 1  # floor

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BoundedStatusOracle(policy="2pl")
        with pytest.raises(ValueError):
            BoundedStatusOracle(max_rows=0)


class TestWSIPolicy:
    def test_wsi_bounded_checks_read_set(self):
        oracle = BoundedStatusOracle(policy="wsi", max_rows=100)
        t1, t2 = oracle.begin(), oracle.begin()
        assert oracle.commit(req(t1, writes={"x"})).committed
        result = oracle.commit(req(t2, writes={"y"}, reads={"x"}))
        assert not result.committed

    def test_wsi_bounded_tmax_on_read_rows(self):
        oracle = BoundedStatusOracle(policy="wsi", max_rows=1)
        stale = oracle.begin()
        for row in ("a", "b"):
            ts = oracle.begin()
            oracle.commit(req(ts, writes={row}))
        result = oracle.commit(req(stale, writes={"w"}, reads={"unknown"}))
        assert not result.committed
        assert result.reason == "tmax"


class TestArrayBackendEquivalence:
    """The bounded oracle's eviction machinery (LRU reinsertion, Tmax,
    popitem-from-the-cold-end) must behave identically on the array
    backend — same decisions, same Tmax trajectory, same surviving
    entries in the same LRU order."""

    @staticmethod
    def _run(lastcommit, policy="si", batched=False):
        import random

        oracle = BoundedStatusOracle(
            policy=policy, max_rows=16, lastcommit=lastcommit
        )
        rng = random.Random(7)
        trace = []
        pending = []
        for step in range(400):
            start = oracle.begin()
            writes = frozenset(rng.sample(range(64), rng.randint(1, 4)))
            reads = frozenset(rng.sample(range(64), rng.randint(0, 3)))
            request = req(start, writes=writes, reads=reads)
            if batched:
                pending.append(request)
                if len(pending) >= 8:
                    for result in oracle.decide_batch(pending):
                        trace.append(
                            (result.committed, result.commit_ts,
                             result.reason, result.conflict_row)
                        )
                    pending = []
            else:
                result = oracle.commit(request)
                trace.append(
                    (result.committed, result.commit_ts,
                     result.reason, result.conflict_row)
                )
            trace.append(oracle.tmax)
        if pending:
            for result in oracle.decide_batch(pending):
                trace.append(
                    (result.committed, result.commit_ts,
                     result.reason, result.conflict_row)
                )
        return (
            trace,
            oracle.tmax,
            list(oracle._last_commit.items()),
            oracle.stats.rows_checked,
            oracle.stats.tmax_aborts,
        )

    @pytest.mark.parametrize("policy", ["si", "wsi"])
    def test_per_request_eviction_matches_dict(self, policy):
        assert self._run("array", policy) == self._run("dict", policy)

    @pytest.mark.parametrize("policy", ["si", "wsi"])
    def test_batched_eviction_matches_dict(self, policy):
        assert self._run("array", policy, batched=True) == self._run(
            "dict", policy, batched=True
        )
