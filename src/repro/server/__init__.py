"""Group-commit oracle frontend: batching without semantic change.

Why this layer exists
=====================

The paper's status oracle "executes the conflict detection algorithm in
a critical section" (§6.3) and owes its reported throughput to two
amortizations:

* the critical section is entered once for many queued commit requests,
  not once per request;
* the decisions are made durable in *groups* — Appendix A's BookKeeper
  policy batches records until 1 KB accumulates or 5 ms elapse, so one
  replicated ledger write persists ~32 commit records.

The seed :class:`~repro.core.status_oracle.StatusOracle` is faithful to
the *algorithms* but pays every cost per request.  This package restores
the amortization as a thin frontend layered over any oracle:

:class:`OracleFrontend`
    accepts begin/commit/abort requests from many logical client
    sessions, coalesces them into bounded batches (``max_batch`` count
    bound, ``flush_interval`` time bound in injected/simulated time),
    decides a whole batch inside one critical section, and persists the
    batch as a single ``group-commit`` WAL record
    (:data:`repro.wal.GROUP_COMMIT_RECORD`), which
    :meth:`~repro.core.status_oracle.StatusOracle.recover_from` replays.

:class:`ClientSession`
    the async client surface: ``commit()``/``abort()`` return a
    :class:`CommitFuture` that resolves when the batch flushes (group
    commit — no request is acknowledged before its decision is queued
    for durability).

Design rules
============

1. **The frontend never changes what is decided.**  Batch decisions are
   computed in submission order with exactly the backend's conflict
   rules, so the outcome — every commit/abort decision, every commit
   timestamp, the final ``lastCommit`` map, the commit table, and the
   ``OracleStats`` counters — is identical to feeding the unbatched
   backend the same requests in batch order.  Every bundled backend
   (plain SI/WSI, bounded/Tmax, partitioned) supplies a ``decide_batch``
   engine that owns its policy semantics; the frontend routes whole
   batches through it.
2. **Read-only transactions stay free** (§4.1 condition 3 / §5.1): a
   commit request with an empty write set resolves immediately — no
   conflict check, no commit timestamp, no batch slot — and a batch of
   only such requests writes no WAL record.
3. **One WAL record per batch.**  At Appendix A's 32 B per decision the
   default 32-request batch fills exactly one 1 KB ledger entry, mapping
   one frontend flush onto one BookKeeper write.

The CommitEngine contract: what a backend must provide
======================================================

The frontend is written against
:class:`~repro.core.engine.CommitEngine`, not against any particular
protocol.  A backend earns a seat behind the serving stack (and the HA
tier, and the simulator, and the benchmarks) by honouring five clauses:

* **Timestamps** — ``begin()`` returns strictly increasing start
  timestamps from the engine's ``timestamp_oracle``; an optional
  ``lease(n)`` reserves a contiguous block for the frontend's
  begin-lease amortization (expose ``lease = None`` to opt out, as the
  SSI engine does — its prune horizon needs to see every active
  transaction).
* **Decisions** — ``commit(request) -> CommitResult`` and
  ``abort(start_ts)`` decide one request; ``_decide_batch(batch,
  payload_commits, payload_aborts, errors, results=None)`` decides a
  whole flush *with outcomes identical to the sequential calls in batch
  order* — the load-bearing clause, pinned per engine by the hypothesis
  equivalence suite.  The inherited ``decide_batch`` template owns the
  WAL group record and error re-raise around it.
* **Durability** — ``apply_wal_record(record)`` and
  ``seal_recovery(max_ts)`` let ``recover_from(wal)`` (inherited)
  rebuild the engine from the shared log; the timestamp floor re-seeds
  above everything durable so no timestamp is ever reused.
* **Observability** — ``stats`` (an ``OracleStats``), ``commit_table``,
  and ``level`` tell sessions, checkers, and benches what happened.
* **Routing hints** — ``naive_read_only`` declares whether read-only
  requests with read sets are free (the frontend fast-path) or must
  reach the engine (SSI's rw-antidependency tracking).

Three engines ship against the contract:
:class:`~repro.core.status_oracle.StatusOracle` (the paper's lock-free
SI/WSI oracle, the reference implementation),
:class:`~repro.percolator.PercolatorEngine` (lock-column 2PC with
batched prewrite/finalize and crash-orphan lock cleanup), and
:class:`~repro.ssi.SSIEngine` (Cahill SSI with a bulk per-batch
rw-antidependency pass).  :func:`~repro.core.engine.make_engine`
(``REPRO_ENGINE``) selects one by name; benchmark E23 races all three
through this very frontend.

The hot path: where a commit decision's time goes
=================================================

§6.3 claims the critical section is microseconds-cheap; in Python the
interpreter, not the conflict logic, sets that cost.  A per-request
``commit()`` call pays, per decision: the method-dispatch wrapper, a
closed-check, the ``rows_to_check`` policy hook, a per-row ``lastCommit``
probe loop, ``tso.next()``, the ``_install`` hook, a commit-table call,
four-plus stats increments, a WAL ``append``, and a ``CommitResult``
allocation.  The batch-decide engine
(:meth:`repro.core.status_oracle.StatusOracle.decide_batch`, rewired
into :meth:`OracleFrontend.flush`) amortizes all of it per flush: state
is locally bound once per batch, the no-conflict common case collapses
to one C-speed ``keys().isdisjoint`` sweep per request, write sets
install via one ``dict.update(dict.fromkeys(...))``, stats are tallied
in locals and written back once, and the whole batch persists as a
single pre-assembled group-commit record.  Benchmark E17 measures the
batching win over the unbatched oracle (>= 3x at batch 32); benchmark
E18 isolates the in-critical-section win of ``decide_batch`` over the
per-request flush loop (>= 1.5x at batch 32, typically ~2x).  The
partitioned engine additionally decides the whole flush — single- and
cross-partition requests alike — with one bulk check round and one bulk
install round per involved partition (the cross-partition batch
protocol), the per-RPC amortization a distributed deployment of §6.3
footnote 6 needs.

Executor choice: who drives the partition rounds
================================================

The partitioned backend's protocol rounds run through a pluggable
:class:`~repro.core.executor.PartitionExecutor`
(``PartitionedOracle(executor=...)``; ``REPRO_EXECUTOR`` sets the
default).  Pick by where the round time goes:

* ``serial`` (default) — rounds run inline on the coordinator.  Right
  whenever rounds are pure Python dict scans: the GIL serializes those
  anyway, so a thread pool would add handoff cost and win nothing.
* ``parallel`` — rounds fan out over a thread pool and join at the
  merge barrier (each partition shard has its own lock).  Right when a
  round *releases the GIL* — a real per-partition RPC to a remote
  commit-table shard, or any C-level wait — because then the flush pays
  roughly one round-trip per *phase* instead of one per partition.
  Benchmark E21 measures exactly this with an injected per-round
  latency (``PartitionedOracle(round_latency=...)``): >= 1.5x at 4
  partitions on cross-heavy workloads, typically ~3x.

Either way decisions are identical — the equivalence suite pins
parallel ≡ serial exactly — and per-flush observability rides
``FlushedBatch.protocol_rounds`` / ``FrontendStats``: executor
wall-clock per phase plus the max rounds any one partition drove (<= 2
under the protocol), so overlap is measured, not inferred.
``OracleFrontend.close()`` propagates executor shutdown to an owned
executor, so no worker threads dangle after a deployment tears down.

Sharding-policy selection: where a row lives
============================================

Row placement is a :class:`~repro.core.sharding.ShardingPolicy`
(``PartitionedOracle(sharding=...)``), chosen by workload shape:

* :class:`~repro.core.sharding.HashSharding` — uniform spread, zero
  locality assumptions; the default.  Multi-row footprints go mostly
  cross-partition, which the batch protocol amortizes but cannot
  eliminate.
* :class:`~repro.core.sharding.RangeSharding` — contiguous key bands;
  right when co-accessed keys are *nearby* (range scans, clustered
  schemas).  Watch for hot bands under skew.
* :class:`~repro.core.sharding.DirectorySharding` — explicit group →
  partition affinity; right when transactions stay inside known key
  groups (per-user, per-tenant rows).  Converts cross traffic into
  aligned traffic outright: E21's group-local leg drives
  ``cross_partition_fraction()`` to ~0.

Placement is policy, the protocol rounds are mechanism, and the two
never interact — any policy composes with any executor.

The *begin* direction of the hot loop is amortized the same way:
``OracleFrontend(begin_lease=n)`` leases a contiguous block of ``n``
start timestamps from the backend (one critical-section entry, durably
reserved through Appendix A's reservation protocol *before* any begin is
served) and serves ``begin()`` from the block with two attribute touches
— plus ``begin_many()`` for sessions opening transactions in bulk, and
per-*session* leases (``ClientSession(begin_lease=n)``) that shard the
frontend's single local block for thread-per-session deployments.  A
WAL-owning frontend also *adopts* the reservation stream of a backend
TSO that persists nothing itself (the partitioned oracle's shared TSO),
so the no-reuse guarantee holds for every bundled deployment shape.
Benchmark E20 measures it (leased begin >= 1.5x per-call at lease 32,
typically ~2.5x).  Lease sizing is a two-sided trade-off:

* a frontend crash (or close) loses the unserved remainder of its block
  — a permanent *timestamp gap*, which is harmless for correctness
  (recovery resumes strictly above the persisted reservation mark; reuse
  is impossible) but wastes up to ``n - 1`` timestamps per crash;
* a lease-served begin carries the snapshot of its *refill* time, so
  under heavy write contention a large lease can slightly raise abort
  rates (the transaction looks older than a per-call begin would) —
  exactly the staleness-vs-throughput dial Omid-lineage deployments
  tune.  The equivalence suite pins that when begins precede the
  decided commits, decisions are identical at every lease size.

High availability: the replicated serving tier
==============================================

Appendix A's failure story — "another fresh instance of the status
oracle could still recreate the memory state from the write-ahead log
and continue servicing the commit requests" — is lifted to *this* layer
by :class:`ReplicatedFrontend` (:mod:`repro.server.ha`): N candidate
:class:`~repro.server.ha.FrontendHost`\\ s behind a ZooKeeper leader
election, sharing one replicated WAL.  Three design decisions carry it:

* **Settlement moves from flush to durability.**  A single frontend may
  equate "decided" with "acknowledged" — nothing else can take over —
  but a replicated tier must not acknowledge a decision the next leader
  might not recover.  :class:`~repro.server.ha.HAFuture` therefore
  resolves from the WAL-sync listener (the decision is on a ledger
  quorum), at the cost of one WAL sync of latency.  Decision *errors*
  still settle at flush — they are permanent and never reach the WAL.
* **Warm standbys make takeover O(delta).**  Every standby host tails
  the shared WAL (:class:`~repro.wal.bookkeeper.WALTail`), applying
  records as they become durable; at promotion only the un-polled
  suffix is replayed, then
  :meth:`~repro.core.status_oracle.StatusOracle.seal_recovery` re-seeds
  the timestamp oracle above everything durable.  Benchmark E22
  measures warm vs cold takeover (>= 5x at >= 10k records; in practice
  the gap grows with history length, since the delta does not).
* **In-flight requests survive, exactly once.**  A request whose
  decision never became durable — in the crashed leader's open batch,
  or flushed but un-synced — is resubmitted against the new leader with
  its **original start timestamp** under a bounded-exponential
  :class:`RetryPolicy`; a request whose decision *did* sync settled
  already and left the retry set, so nothing is ever decided twice.
  Crashing a leader mid-lease also gaps (never reuses) the begin-lease
  block, same as a plain frontend crash.  The hypothesis failover
  property pins history equivalence: when begins precede decisions, a
  crashed-and-retried run decides every request identically to an
  uncrashed one.

Admission control rides the same tier: ``max_queue_depth`` bounds the
decisions in flight (pending + flushed-but-not-yet-durable); beyond it,
submissions fail fast with :class:`~repro.core.errors.Overloaded` and
:class:`ClientSession`'s retry policy backs off-and-resubmits.  E22's
overload leg shows 2x-capacity offered load sustaining the 1x
throughput with the queue bounded — shedding, not collapse.

How equivalence is tested
=========================

``tests/server/test_equivalence_properties.py`` drives random workloads
(hypothesis) through a frontend and replays the *same* requests, in the
order the frontend decided them, against an unbatched reference oracle —
for SI, WSI, and the bounded (Tmax) oracle — asserting equal decisions,
commit timestamps, ``lastCommit`` state and stats; a second family of
properties calls ``decide_batch`` directly (mid-batch conflict and
client aborts, read-only requests, all four oracle kinds, WAL-replay
equivalence against the sequential per-record log).  The stress tests
add timestamp-uniqueness and per-batch monotonicity invariants, and the
recovery tests crash the frontend mid-batch to check that WAL replay
restores exactly the durable prefix.  The begin-lease legs assert that
leased-begin histories match per-call-begin histories (same decisions,
strictly increasing start timestamps) and that no timestamp is ever
reissued across ``recover_from`` — including a crash mid-lease, where
the unserved remainder becomes a gap, never reuse.  Benchmarks E17/E18
(``benchmarks/test_e17_group_commit.py``, ``test_e18_batch_decide.py``)
measure the point of it all: the batched frontend sustains multiples of
the unbatched oracle's wall-clock ops/sec, and the batch-decide engine
multiplies the per-request flush loop again.
"""

from repro.server.frontend import (
    CLIENT_ABORT,
    DEFAULT_FLUSH_INTERVAL,
    DEFAULT_MAX_BATCH,
    CommitFuture,
    FlushedBatch,
    FrontendStats,
    FutureArena,
    OracleFrontend,
)
from repro.server.ha import (
    FrontendHost,
    HAFuture,
    ReplicatedFrontend,
    ReplicatedOracleFacade,
)
from repro.server.retry import RetryPolicy, call_with_retry
from repro.server.session import ClientSession

__all__ = [
    "OracleFrontend",
    "ClientSession",
    "CommitFuture",
    "FlushedBatch",
    "FrontendStats",
    "FutureArena",
    "ReplicatedFrontend",
    "ReplicatedOracleFacade",
    "FrontendHost",
    "HAFuture",
    "RetryPolicy",
    "call_with_retry",
    "CLIENT_ABORT",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_FLUSH_INTERVAL",
]
