"""Differential SI-vs-WSI behaviour on identical workloads.

The paper's comparative claims, asserted statistically at test scale:
comparable commit rates on mixed workloads, WSI's slight extra abort
rate when reads chase fresh writes, and the asymmetry of what each
level forbids (H4 vs H6 in the live system).
"""

import pytest

from repro.bench import run_interleaved
from repro.core import create_system
from repro.workload import WorkloadGenerator, mixed_workload


def run_level(level: str, distribution: str, keyspace: int, n: int, seed: int):
    system = create_system(level)
    wl = mixed_workload(distribution=distribution, keyspace=keyspace, seed=seed)
    result = run_interleaved(system.manager, wl.batch(n), concurrency=16, seed=seed + 1)
    return system, result


class TestComparableConcurrency:
    """§6.5's bottom line: 'snapshot isolation and write-snapshot
    isolation offer a comparable level of concurrency'."""

    @pytest.mark.parametrize("distribution", ["uniform", "zipfian"])
    def test_commit_counts_within_ten_percent(self, distribution):
        keyspace = 100_000 if distribution == "uniform" else 2_000
        _, si = run_level("si", distribution, keyspace, 2000, seed=90)
        _, wsi = run_level("wsi", distribution, keyspace, 2000, seed=90)
        assert wsi.committed > 0.9 * si.committed

    def test_uniform_large_keyspace_no_aborts_either_level(self):
        for level in ("si", "wsi"):
            _, result = run_level(level, "uniform", 1_000_000, 1000, seed=91)
            assert result.aborted == 0


class TestLatestSkewGap:
    """Fig. 10's mechanism at harness scale: recency-chasing reads give
    WSI a slightly higher abort rate than SI."""

    def test_wsi_abort_rate_at_least_si(self):
        gaps = []
        for seed in (92, 93, 94):
            _, si = run_level("si", "zipfianLatest", 3_000, 2500, seed=seed)
            _, wsi = run_level("wsi", "zipfianLatest", 3_000, 2500, seed=seed)
            gaps.append(wsi.abort_rate - si.abort_rate)
        # on average over seeds, WSI pays the (slight) serializability tax
        assert sum(gaps) / len(gaps) > -0.01
        assert all(gap < 0.10 for gap in gaps)  # and it stays slight


class TestForbiddenSetAsymmetry:
    """§4.3: each level admits executions the other aborts (H4 vs H6)."""

    def test_h4_live(self):
        # blind write: WSI commits both, SI aborts the blind writer.
        outcomes = {}
        for level in ("si", "wsi"):
            system = create_system(level)
            t1 = system.manager.begin()
            t2 = system.manager.begin()
            t1.read("x")
            t2.write("x", "blind")
            t1.write("x", "t1")
            t1.commit()
            try:
                t2.commit()
                outcomes[level] = "commit"
            except Exception:
                outcomes[level] = "abort"
        assert outcomes == {"si": "abort", "wsi": "commit"}

    def test_h6_live(self):
        # t2 commits inside t1's lifetime, writing what t1 read; t1
        # writes elsewhere.  SI commits both; WSI aborts t1.
        outcomes = {}
        for level in ("si", "wsi"):
            system = create_system(level)
            t1 = system.manager.begin()
            t2 = system.manager.begin()
            t1.read("x")
            t2.read("z")
            t2.write("x", "t2")
            t1.write("y", "t1")
            t2.commit()
            try:
                t1.commit()
                outcomes[level] = "commit"
            except Exception:
                outcomes[level] = "abort"
        assert outcomes == {"si": "commit", "wsi": "abort"}


class TestOracleWorkSymmetry:
    """§5: the two algorithms do the same *kind* of work — rows checked
    and rows updated differ only in which set feeds the check."""

    def test_rows_updated_identical(self):
        # With identical workloads and (near-)identical commit sets, the
        # write-set installs should be close.
        sys_si, si = run_level("si", "uniform", 1_000_000, 800, seed=95)
        sys_wsi, wsi = run_level("wsi", "uniform", 1_000_000, 800, seed=95)
        assert si.aborted == wsi.aborted == 0
        assert sys_si.oracle.stats.rows_updated == sys_wsi.oracle.stats.rows_updated

    def test_si_checks_writes_wsi_checks_reads(self):
        sys_si, _ = run_level("si", "uniform", 1_000_000, 800, seed=96)
        sys_wsi, _ = run_level("wsi", "uniform", 1_000_000, 800, seed=96)
        # mixed workload: complex txns have ~equal reads and writes, but
        # read-only txns contribute zero to both checks (empty-set fast
        # path), so SI's checked rows ≈ writes of complex txns and WSI's
        # ≈ reads of complex txns — both nonzero, same order of magnitude.
        si_checked = sys_si.oracle.stats.rows_checked
        wsi_checked = sys_wsi.oracle.stats.rows_checked
        assert si_checked > 0 and wsi_checked > 0
        assert 0.5 < wsi_checked / si_checked < 2.0
