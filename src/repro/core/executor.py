"""Pluggable partition executors: who drives a flush's protocol rounds.

The cross-partition batch protocol (:mod:`repro.core.partitioned`)
decides a whole group-commit flush with one bulk *validation* round and
one bulk *install* round per involved partition.  In a distributed
deployment each round is one RPC to one partition server, and nothing in
the protocol orders rounds on *different* partitions: phase 1 only reads
each partition's ``lastCommit`` (installs happen in phase 3, after the
coordinator's merge barrier), and phase 3 only writes each partition's
own staged share.  The seed coordinator nevertheless drove every round
inline, serially — partition count bought memory sharding but zero round
overlap.

A :class:`PartitionExecutor` makes that policy pluggable.  The
partitioned oracle hands it a list of independent zero-argument *round
closures* (one per involved partition, each taking that shard's own
lock) and consumes the results in task order:

* :class:`SerialExecutor` — the default: runs the rounds inline in
  partition order, exactly as the pre-executor coordinator did.  Zero
  threads, zero overhead beyond one method call per phase.
* :class:`ParallelExecutor` — fans the rounds out over a lazily-created
  :class:`concurrent.futures.ThreadPoolExecutor` and joins at the
  phase barrier.  Round work that *releases the GIL* — a real
  commit-table RPC, or the injected ``time.sleep`` latency benchmark
  E21 uses to model one — overlaps across partitions, so a flush costs
  roughly one round-trip per *phase* instead of one per partition.
  Pure-Python dict scans do **not** overlap under the GIL; the executor
  choice never changes decisions either way (the hypothesis suite pins
  parallel ≡ serial exactly), so ``serial`` remains the right default
  for in-process deployments.

Error contract: a round closure that raises aborts the phase — the first
failing task's exception (in task order) propagates after the join.
Under :class:`ParallelExecutor` later rounds may still have run; the
protocol's rounds are written to tolerate that (phase 1 is read-only,
phase 3 rounds touch disjoint shards).

Selection: pass ``executor="serial"`` / ``"parallel"`` (or an instance)
to :class:`~repro.core.partitioned.PartitionedOracle`.  When omitted,
the ``REPRO_EXECUTOR`` environment variable picks the default — the
hook ``make check`` uses to run the whole fast suite over the threaded
path.  An oracle that *built* its executor owns it and shuts it down on
``close()``; a passed-in instance stays the caller's to shut down.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Union

__all__ = [
    "EXECUTOR_ENV_VAR",
    "PartitionExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
]

#: Environment variable naming the default executor ("serial"/"parallel")
#: for oracles constructed without an explicit ``executor=``.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

RoundTask = Callable[[], Any]


class PartitionExecutor:
    """How a flush's independent per-partition rounds are driven.

    Implementations must return one result per task, in task order, and
    propagate the first (task-order) exception after the phase completes
    or is abandoned.  ``run`` is called once per protocol phase per
    flush, from the coordinator thread only.
    """

    #: short tag used in stats tables and factory specs.
    name = "base"

    def run(self, tasks: Sequence[RoundTask]) -> List[Any]:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any worker resources (idempotent; no-op by default)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialExecutor(PartitionExecutor):
    """Inline rounds in partition order — the pre-executor coordinator,
    byte-identical in behaviour and state evolution."""

    name = "serial"

    def run(self, tasks: Sequence[RoundTask]) -> List[Any]:
        return [task() for task in tasks]


class ParallelExecutor(PartitionExecutor):
    """Thread-pool rounds joined at the phase barrier.

    The pool is created lazily on the first multi-round phase (a
    single-task phase runs inline — no handoff cost) and sized by
    ``max_workers`` (the partitioned oracle passes its partition count).
    ``shutdown()`` joins the workers; the executor can be reused only
    before shutdown.
    """

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._shutdown = False

    @property
    def pool_started(self) -> bool:
        """Whether worker threads exist yet (the pool is lazy)."""
        return self._pool is not None

    def run(self, tasks: Sequence[RoundTask]) -> List[Any]:
        # Fail fast even for phases the pool wouldn't touch: a shut-down
        # executor that kept serving single-round flushes would turn
        # misuse into a data-dependent intermittent error.
        if self._shutdown:
            raise RuntimeError("ParallelExecutor is shut down")
        if len(tasks) <= 1:
            # One round cannot overlap with anything: skip the handoff.
            return [task() for task in tasks]
        pool = self._pool
        if pool is None:
            pool = self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-partition",
            )
        futures = [pool.submit(task) for task in tasks]
        # result() re-raises a failed round's exception; iterating in
        # task order keeps the error contract of SerialExecutor (first
        # failing task wins) while still joining every future.
        results: List[Any] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def shutdown(self) -> None:
        self._shutdown = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


ExecutorSpec = Union[None, str, PartitionExecutor]


def make_executor(
    spec: ExecutorSpec = None, max_workers: Optional[int] = None
) -> PartitionExecutor:
    """Resolve an executor spec to an instance.

    ``None`` consults ``REPRO_EXECUTOR`` (defaulting to serial), a string
    names a kind, and an instance passes through unchanged — callers that
    need to distinguish owned from borrowed executors should test for a
    :class:`PartitionExecutor` instance *before* calling this.
    """
    if isinstance(spec, PartitionExecutor):
        return spec
    if spec is None:
        spec = os.environ.get(EXECUTOR_ENV_VAR) or SerialExecutor.name
    kind = spec.strip().lower()
    if kind == SerialExecutor.name:
        return SerialExecutor()
    if kind == ParallelExecutor.name:
        return ParallelExecutor(max_workers=max_workers)
    raise ValueError(
        f"unknown partition executor {spec!r}; choose 'serial' or 'parallel'"
    )
