"""E24 — array-backed lastCommit vs dict on a warmed, scan-heavy workload.

Not a paper figure: this isolates the conflict-*check* cost inside the
critical section §6.3 bounds.  E18 amortized the per-request overhead
around the check; E24 attacks the check itself.  On a warmed keyspace
the dict backend's ``isdisjoint`` prefilter always fails and every
checked row degrades to an interpreted dict probe; the array backend
(``REPRO_LASTCOMMIT=array``) interns rows to dense ids once and turns
the whole scan into two vectorized gathers plus one ``max`` (the int
lane — see ``repro.core.keyspace``).

The workload is deliberately low-conflict (keyspace 2^18, 256-row read
sets, 2-row write sets, fresh starts per batch): a suspected conflict
always re-verifies through the scalar rescan, so high abort rates make
both backends pay the same interpreted loop and mask the effect being
measured.  Tiny smoke sizes keep this exact shape and only shrink the
request count.

Acceptance: the array backend sustains >= 2x the dict backend's
batch-decide throughput at batch size 128 (WSI, warmed keyspace, median
of paired runs — E17's protocol).  A second table sweeps batch sizes,
and a footprint leg measures real bytes/entry against the documented
~32 B/entry dict estimate — honestly: the array backend buys CPU with
*more* memory, not less.

Set ``REPRO_BENCH_SMOKE=1`` (the ``make bench-smoke`` target) for a
tiny-sized sanity run with correspondingly relaxed bars.
"""

import os

import pytest

from repro.bench import format_table
from repro.bench.snapshot import record
from repro.bench.frontend_bench import (
    E24_KEYSPACE,
    bench_lastcommit,
    make_scan_specs,
    measure_lastcommit_footprints,
    median_speedup,
    paired_lastcommit_speedups,
    sweep_lastcommit_batches,
)
from repro.core.status_oracle import BYTES_PER_LASTCOMMIT_ENTRY

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NUM_REQUESTS = 512 if SMOKE else 2_560
PAIRS = 2 if SMOKE else 5
REPEATS = 1 if SMOKE else 2
#: tiny smoke runs are noisy; the full run must clear the real bar.
SPEEDUP_BAR = 1.5 if SMOKE else 2.0
BATCH_SIZES = (8, 32, 128) if SMOKE else (8, 32, 128, 512)
FOOTPRINT_ENTRIES = 20_000 if SMOKE else 100_000


@pytest.mark.figure("e24")
def test_e24_array_backend_speedup(benchmark, print_header):
    # The ≥2x claim is about the vectorized int lane; without numpy the
    # store runs its scalar fallback (correct, but no speedup to assert).
    pytest.importorskip("numpy")
    ratios = benchmark.pedantic(
        lambda: paired_lastcommit_speedups(
            level="wsi",
            batch_size=128,
            pairs=PAIRS,
            num_requests=NUM_REQUESTS,
        ),
        rounds=1,
        iterations=1,
    )
    print_header("E24 — array vs dict lastCommit, warmed scan-heavy decide")
    print(
        f"  shape: keyspace {E24_KEYSPACE}, 256 checked rows/request, "
        f"batch 128, {NUM_REQUESTS} requests"
    )
    print("paired WSI speedups at batch 128 (array vs dict backend):")
    print("  " + "  ".join(f"{r:.2f}x" for r in ratios))
    print(
        f"  median: {median_speedup(ratios):.2f}x "
        f"(acceptance bar: {SPEEDUP_BAR}x)"
    )

    # Acceptance: array backend >= 2x dict at batch 128 (WSI, warmed
    # keyspace), median of paired runs.
    assert median_speedup(ratios) >= SPEEDUP_BAR
    record("e24", median_speedup=median_speedup(ratios), bar=SPEEDUP_BAR)


@pytest.mark.figure("e24")
def test_e24_batch_size_sweep(print_header):
    print_header("E24b — batch size sweep, both backends")
    results = sweep_lastcommit_batches(
        "wsi",
        batch_sizes=BATCH_SIZES,
        num_requests=NUM_REQUESTS,
        repeats=REPEATS,
    )
    print(
        format_table(
            ["level", "backend", "batch", "ops/s", "us/op", "commits", "aborts"],
            [r.as_row() for r in results],
            title=(
                f"warmed keyspace {E24_KEYSPACE}, 256-row read sets, "
                f"{NUM_REQUESTS} commit requests"
            ),
        )
    )
    # The representation must never change what is decided: at every
    # batch size the (dict, array) pair agrees on every decision.
    for dict_res, array_res in zip(results[::2], results[1::2]):
        assert dict_res.batch_size == array_res.batch_size
        assert array_res.commits == dict_res.commits
        assert array_res.aborts == dict_res.aborts


@pytest.mark.figure("e24")
def test_e24_decisions_identical_across_backends(print_header):
    """Zero-tolerance leg at the acceptance shape: dict and array runs
    of the identical warmed workload produce identical decision counts
    (the hypothesis suite pins full state; this pins it at benchmark
    scale)."""
    print_header("E24c — decision equality, dict vs array backend")
    specs = make_scan_specs(NUM_REQUESTS)
    dict_res = bench_lastcommit("wsi", specs, "dict", batch_size=128, repeats=1)
    array_res = bench_lastcommit("wsi", specs, "array", batch_size=128, repeats=1)
    assert array_res.commits == dict_res.commits
    assert array_res.aborts == dict_res.aborts
    print(
        f"  wsi: {dict_res.commits} commits / {dict_res.aborts} aborts "
        f"on both backends"
    )


@pytest.mark.figure("e24")
def test_e24_memory_footprint(print_header):
    """Measured bytes/entry vs the documented ~32 B/entry dict estimate
    (Appendix A's amortized slot cost, which excludes the key and value
    objects the measurement here includes).  The array backend trades
    memory *up* for scan speed — it keeps the dict backend's key->id map
    plus the timestamp array, reverse table and int lane — so the
    honest assertion is array > dict, not the reverse."""
    print_header("E24d — lastCommit memory footprint (measured)")
    fp = measure_lastcommit_footprints(num_entries=FOOTPRINT_ENTRIES)
    print(
        format_table(
            ["backend", "entries", "bytes/entry"],
            [
                ("dict (measured)", fp["entries"],
                 f"{fp['dict_bytes_per_entry']:.1f}"),
                ("array (measured)", fp["entries"],
                 f"{fp['array_bytes_per_entry']:.1f}"),
                ("dict (Appendix A estimate)", "-",
                 f"{BYTES_PER_LASTCOMMIT_ENTRY:.1f}"),
            ],
            title="int-keyed entries, sys.getsizeof over every reachable piece",
        )
    )
    # The estimate is an amortized lower bound on the real dict cost.
    assert fp["dict_bytes_per_entry"] >= BYTES_PER_LASTCOMMIT_ENTRY
    # Representation honesty: the array backend costs MORE memory per
    # entry than the dict it replaces (within 8x — a regression guard).
    assert (
        fp["dict_bytes_per_entry"]
        < fp["array_bytes_per_entry"]
        < 8 * fp["dict_bytes_per_entry"]
    )
    record(
        "e24_footprint",
        dict_bytes_per_entry=round(fp["dict_bytes_per_entry"], 1),
        array_bytes_per_entry=round(fp["array_bytes_per_entry"], 1),
        estimate=BYTES_PER_LASTCOMMIT_ENTRY,
    )
