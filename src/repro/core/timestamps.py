"""Timestamp oracle: the centralized source of transaction timestamps.

In both the lock-based and lock-free designs of the paper (Section 2) every
transaction obtains its start and commit timestamps from a single
*timestamp oracle* so that timestamps double as a global commit order.

The paper's Appendix A notes the key efficiency trick: although assigned
timestamps must be durable (a restarted oracle must never hand out a
timestamp twice), the oracle *reserves* a large batch of timestamps with a
single write-ahead-log record and then serves that batch from memory, so
the per-timestamp persistence cost is amortized to almost nothing ("the
timestamp oracle could reserve thousands of timestamps per each write into
the write-ahead log").  ``TimestampOracle`` models exactly that protocol.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.core.errors import OracleClosed, RecoveryError

# The paper says "thousands of timestamps" are reserved per WAL write; Omid
# used batches in the tens of thousands.  The exact value only affects how
# often the (simulated) WAL is touched.
DEFAULT_RESERVATION_BATCH = 10_000


class TimestampOracle:
    """Monotonic timestamp allocator with batched durability.

    Args:
        reservation_batch: how many timestamps are reserved per WAL record.
        wal_append: optional callback invoked with the new reservation
            high-water mark whenever a batch is reserved.  In the full
            system this is a :class:`repro.wal.BookKeeperWAL` append; unit
            tests may pass a list-appender; ``None`` keeps the oracle purely
            in-memory.
        first_timestamp: the first timestamp that will be handed out.

    The oracle is deliberately simple: ``next()`` returns a strictly
    increasing integer.  All concurrency control in this repository runs
    the oracle inside a single-threaded critical section, mirroring the
    paper's centralized status oracle.
    """

    def __init__(
        self,
        reservation_batch: int = DEFAULT_RESERVATION_BATCH,
        wal_append: Optional[Callable[[int], None]] = None,
        first_timestamp: int = 1,
    ) -> None:
        if reservation_batch < 1:
            raise ValueError("reservation_batch must be >= 1")
        if first_timestamp < 0:
            raise ValueError("first_timestamp must be >= 0")
        self._batch = reservation_batch
        self._wal_append = wal_append
        self._next = first_timestamp
        self._reserved_until = first_timestamp - 1  # nothing reserved yet
        self._closed = False
        self._wal_writes = 0
        self._issued = 0
        self._leases = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def next(self) -> int:
        """Return the next timestamp, reserving a new batch if needed."""
        if self._closed:
            raise OracleClosed("timestamp oracle is closed")
        if self._next > self._reserved_until:
            self._reserve()
        ts = self._next
        self._next += 1
        self._issued += 1
        return ts

    def lease(self, n: int) -> Tuple[int, int]:
        """Hand out a contiguous block of ``n`` timestamps as ``(lo, hi)``.

        The begin-lease fast path: a frontend leases a block and then
        serves ``begin()`` from it with no oracle round-trip per
        transaction.  The block rides the exact reservation protocol of
        :meth:`next` — the reservation high-water mark covering ``hi``
        is durable *before* the block is returned, so a leaseholder that
        crashes mid-lease merely loses the unserved remainder: gaps are
        harmless, reuse is not (recovery resumes strictly above the
        persisted mark, see :meth:`recover`).
        """
        if self._closed:
            raise OracleClosed("timestamp oracle is closed")
        if n < 1:
            raise ValueError("lease size must be >= 1")
        lo = self._next
        hi = lo + n - 1
        if hi > self._reserved_until:
            self._reserve(min_high=hi)
        self._next = hi + 1
        self._issued += n
        self._leases += 1
        return lo, hi

    def peek(self) -> int:
        """Return the timestamp ``next()`` would hand out, without advancing."""
        return self._next

    def _reserve(self, min_high: Optional[int] = None) -> None:
        new_high = self._next + self._batch - 1
        if min_high is not None and min_high > new_high:
            # A lease larger than the reservation batch is still one WAL
            # record: the mark simply jumps to cover the whole block.
            new_high = min_high
        if self._wal_append is not None:
            # Persist the *high-water mark* before serving any timestamp
            # from the batch; recovery resumes from above it.
            self._wal_append(new_high)
        self._wal_writes += 1
        self._reserved_until = new_high

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        persisted_high_water: int,
        reservation_batch: int = DEFAULT_RESERVATION_BATCH,
        wal_append: Optional[Callable[[int], None]] = None,
    ) -> "TimestampOracle":
        """Rebuild an oracle after a crash.

        The restarted oracle must never reissue a timestamp, so it resumes
        strictly above the last persisted reservation high-water mark, even
        though some of those reserved timestamps were never handed out
        (gaps are harmless; reuse is not).
        """
        if persisted_high_water < 0:
            raise RecoveryError(
                f"invalid persisted high-water mark {persisted_high_water}"
            )
        return cls(
            reservation_batch=reservation_batch,
            wal_append=wal_append,
            first_timestamp=persisted_high_water + 1,
        )

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def issued_count(self) -> int:
        """How many timestamps have been handed out."""
        return self._issued

    @property
    def lease_count(self) -> int:
        """How many timestamp blocks were leased out."""
        return self._leases

    @property
    def persists_reservations(self) -> bool:
        """Whether reservation high-water marks reach a durable sink."""
        return self._wal_append is not None

    @property
    def reservation_sink(self) -> Optional[Callable[[int], None]]:
        """The durable sink reservation marks are written to (``None``
        when nothing persists them) — what a recovering host passes to a
        replacement oracle to keep the durability chain unbroken."""
        return self._wal_append

    def attach_wal(self, wal_append: Callable[[int], None]) -> None:
        """Start persisting reservation marks through ``wal_append``.

        For a TSO created without a durability hook (the partitioned
        oracle's shared TSO, or an explicitly-passed bare oracle) whose
        host later gains a WAL — e.g. a group-commit frontend adopting
        the begin path.  The *current* high-water mark is persisted
        immediately, so everything already reserved or leased is covered
        before another timestamp is served; without that, a crash could
        reissue begins handed out pre-attach.
        """
        self._wal_append = wal_append
        mark = self.reserved_high_water
        if mark:
            wal_append(mark)
            self._wal_writes += 1

    @property
    def reserved_high_water(self) -> int:
        """The largest timestamp any reservation ever covered.

        This is the durable no-reuse promise: every timestamp up to this
        mark may have been issued (directly or through a lease), so a
        recovered oracle must resume strictly above it — *not* above the
        in-memory cursor, which can sit below the mark mid-reservation.
        """
        issued_high = self._next - 1
        if self._reserved_until > issued_high:
            return self._reserved_until
        return issued_high

    @property
    def wal_write_count(self) -> int:
        """How many reservation records were written (amortization metric)."""
        return self._wal_writes

    @property
    def reservation_batch(self) -> int:
        return self._batch

    def close(self) -> None:
        """Stop serving timestamps (simulates oracle shutdown)."""
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimestampOracle(next={self._next}, "
            f"reserved_until={self._reserved_until}, issued={self._issued})"
        )
