"""E23 — three-protocol shootout: every engine, batched vs per-request.

Not a paper figure: §6 benchmarks the lock-free status oracle alone.
E23 extends the E18 methodology across the whole engine family behind
:func:`~repro.core.engine.make_engine` — the centralized oracle
(write-snapshot isolation), the Percolator-style lock/write-column
two-phase commit, and Cahill-style SSI — to show the *serving-stack*
claim of the refactor: batching the decision loop is a property of the
``CommitEngine`` interface, not of one protocol.

Each pair runs the identical frontend over the identical pre-drawn
specs with identical one-group-WAL-record-per-flush durability; only
the decision loop differs (bulk ``_decide_batch`` pass vs one
sequential ``commit()`` per item).  Acceptance: every engine's batched
flush sustains >= 1.5x its per-request flush at batch size 32 (median
of paired runs, the E17–E21 protocol).

A second table prices the protocols against each other on two workload
shapes at batch scale:

* **YCSB-style uniform** (§6.1's setup) — unstructured footprints over
  a flat keyspace, conflicts rare and memoryless;
* **TPC-C-like** (:mod:`repro.workload.tpcc`) — structured OLTP
  footprints where hot warehouse/district header rows are co-accessed
  with cold detail rows, so contention concentrates instead of
  scattering.

The cross-protocol throughput ordering is reported, not asserted — the
oracle's single dict check is expected to beat Percolator's per-row
lock/write-column discipline and SSI's rw-edge bookkeeping; what E23
pins is that *batching* pays for all three.

Set ``REPRO_BENCH_SMOKE=1`` (the ``make bench-smoke`` target) for a
tiny-sized sanity run with correspondingly relaxed bars.
"""

import os

import pytest

from repro.bench import format_table
from repro.bench.snapshot import record
from repro.bench.frontend_bench import (
    bench_engine,
    make_specs,
    median_speedup,
    paired_engine_speedups,
)
from repro.core.engine import ENGINE_KINDS
from repro.workload.tpcc import TPCCWorkload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NUM_REQUESTS = 4_000 if SMOKE else 30_000
PAIRS = 2 if SMOKE else 5
#: best-of-REPEATS per pair side: machine noise is one-sided, and on a
#: shared box a single co-scheduled burst can halve one side of a pair;
#: three runs per side keeps the medians clear of the bar.
REPEATS = 1 if SMOKE else 3
#: tiny smoke runs are noisy; the full run must clear the real bar.
SPEEDUP_BAR = 1.1 if SMOKE else 1.5
BATCH = 32


def _tpcc_specs(num_requests):
    """Pre-drawn TPC-C-like stream (request generation stays outside
    every timed region, as everywhere in the bench suite)."""
    return TPCCWorkload(warehouses=4, seed=7).batch(num_requests)


@pytest.mark.figure("e23")
def test_e23_per_engine_batch_speedup(benchmark, print_header):
    specs = make_specs(NUM_REQUESTS)
    ratios = benchmark.pedantic(
        lambda: {
            kind: paired_engine_speedups(
                kind, specs, batch_size=BATCH, pairs=PAIRS
            )
            for kind in ENGINE_KINDS
        },
        rounds=1,
        iterations=1,
    )
    print_header(
        "E23 — batched vs per-request flush, every commit engine "
        "(wall clock)"
    )
    medians = {kind: median_speedup(ratios[kind]) for kind in ENGINE_KINDS}
    print(
        format_table(
            ["engine", "paired ratios", "median", "bar"],
            [
                (
                    kind,
                    "  ".join(f"{r:.2f}x" for r in ratios[kind]),
                    f"{medians[kind]:.2f}x",
                    f"{SPEEDUP_BAR}x",
                )
                for kind in ENGINE_KINDS
            ],
            title=(
                f"uniform complex workload, {NUM_REQUESTS} commit "
                f"requests, batch {BATCH}"
            ),
        )
    )
    # Acceptance: batching pays >= 1.5x for *every* protocol behind the
    # CommitEngine interface, not just the centralized oracle.
    for kind in ENGINE_KINDS:
        assert medians[kind] >= SPEEDUP_BAR, (
            f"{kind}: median {medians[kind]:.2f}x < bar {SPEEDUP_BAR}x "
            f"(pairs: {ratios[kind]})"
        )
    record(
        "e23",
        bar=SPEEDUP_BAR,
        batch_size=BATCH,
        **{f"{kind}_median_speedup": medians[kind] for kind in ENGINE_KINDS},
    )


@pytest.mark.figure("e23")
def test_e23_three_protocol_comparison(print_header):
    """Cross-protocol throughput at batch scale on both workload
    shapes, plus the zero-tolerance leg: each engine's batched flush
    decides exactly what its per-request flush decides."""
    print_header(
        "E23b — three protocols x two workload shapes (batched frontend)"
    )
    workloads = (
        ("ycsb-uniform", make_specs(NUM_REQUESTS)),
        ("tpcc-like", _tpcc_specs(NUM_REQUESTS)),
    )
    rows = []
    abort_rates = {}
    for wname, specs in workloads:
        for kind in ENGINE_KINDS:
            batched = bench_engine(
                kind, specs, batch_size=BATCH, repeats=REPEATS
            )
            per_request = bench_engine(
                kind, specs, batch_size=BATCH, repeats=1, per_request=True
            )
            # Batching changes wall clock, never decisions.
            assert batched.commits == per_request.commits, (wname, kind)
            assert batched.aborts == per_request.aborts, (wname, kind)
            abort_rates[(wname, kind)] = batched.aborts / len(specs)
            rows.append(
                (
                    wname,
                    kind,
                    f"{batched.ops_per_sec:,.0f}",
                    f"{batched.us_per_op:.2f}",
                    batched.commits,
                    batched.aborts,
                    f"{100 * abort_rates[(wname, kind)]:.2f}%",
                )
            )
    print(
        format_table(
            ["workload", "engine", "ops/s", "us/op", "commits", "aborts",
             "abort rate"],
            rows,
            title=f"{NUM_REQUESTS} commit requests per cell, batch {BATCH}",
        )
    )
    # Structured TPC-C contention concentrates on the district headers:
    # every protocol must show *more* conflict there than on the flat
    # uniform keyspace (that is the point of running both shapes).
    for kind in ENGINE_KINDS:
        assert (
            abort_rates[("tpcc-like", kind)]
            > abort_rates[("ycsb-uniform", kind)]
        ), f"{kind}: TPC-C headers did not concentrate contention"
    record(
        "e23",
        num_requests=NUM_REQUESTS,
        **{
            f"{wname.replace('-', '_')}_{kind}_abort_rate":
                abort_rates[(wname, kind)]
            for wname, _ in workloads
            for kind in ENGINE_KINDS
        },
    )
