"""The paper's central claims about H1-H7, verified mechanically.

This is experiment E8 in test form: every cell of the
serializable / SI-allowed / WSI-allowed matrix the paper argues in
§3-§4 must come out of our checkers.
"""

import pytest

from repro.history import (
    ALL_HISTORIES,
    H1,
    H2,
    H3,
    H4,
    H5,
    H6,
    H7,
    PAPER_CLAIMS,
    allowed_under_si,
    allowed_under_wsi,
    classification,
    equivalent,
    find_lost_updates,
    find_write_skew,
    is_serializable,
)


@pytest.mark.parametrize("name", sorted(ALL_HISTORIES))
def test_full_classification_matches_paper(name):
    got = classification(ALL_HISTORIES[name])
    assert got == PAPER_CLAIMS[name], f"{name}: {got} != paper {PAPER_CLAIMS[name]}"


class TestH1:
    """§3.1: SI allows a non-serializable read-write crossover."""

    def test_not_serializable(self):
        assert not is_serializable(H1)

    def test_si_allows_it(self):
        assert allowed_under_si(H1).allowed

    def test_wsi_prevents_it(self):
        result = allowed_under_wsi(H1)
        assert not result.allowed
        # txn1 commits during txn2's lifetime and wrote y which txn2 read.
        assert result.first_rejected == 2
        assert result.conflict_row == "y"
        assert result.conflicting_with == 1


class TestH2WriteSkew:
    """§3.1: the write-skew anomaly."""

    def test_detector_finds_write_skew(self):
        witnesses = find_write_skew(H2)
        assert len(witnesses) == 1
        assert set(witnesses[0].transactions) == {1, 2}

    def test_constraint_violated_under_si(self):
        # x + y > 0, initially x = y = 1; each txn decrements one of them.
        from repro.history import check_constraint_violation

        def apply_write(txn, item, snapshot):
            return snapshot[item] - 1

        holds = check_constraint_violation(
            H2,
            initial={"x": 1, "y": 1},
            apply_write=apply_write,
            constraint=lambda final: final["x"] + final["y"] > 0,
        )
        assert not holds  # the paper: database ends at x = y = 0

    def test_wsi_prevents_the_skew(self):
        assert not allowed_under_wsi(H2).allowed


class TestH3LostUpdate:
    """§3.2: lost update is caught by both levels."""

    def test_detector_finds_lost_update(self):
        witnesses = find_lost_updates(H3)
        assert len(witnesses) == 1
        assert witnesses[0].item == "x"

    def test_both_levels_prevent(self):
        assert not allowed_under_si(H3).allowed
        assert not allowed_under_wsi(H3).allowed


class TestH4BlindWrite:
    """§3.2: a blind write is NOT a lost update; SI aborts it anyway."""

    def test_no_lost_update_in_h4(self):
        assert find_lost_updates(H4) == []

    def test_serializable_but_si_prevents(self):
        assert is_serializable(H4)
        assert not allowed_under_si(H4).allowed  # SI's unnecessary abort

    def test_wsi_allows(self):
        assert allowed_under_wsi(H4).allowed

    def test_equivalent_to_h5(self):
        # "the history is equivalent to the following serial history"
        assert equivalent(H4, H5)
        assert H5.is_serial()


class TestH6WsiUnnecessaryAbort:
    """§4.3: WSI also unnecessarily prevents some serializable histories."""

    def test_serializable(self):
        assert is_serializable(H6)

    def test_si_allows_wsi_prevents(self):
        assert allowed_under_si(H6).allowed
        result = allowed_under_wsi(H6)
        assert not result.allowed
        assert result.first_rejected == 1
        assert result.conflict_row == "x"

    def test_equivalent_to_h7(self):
        assert equivalent(H6, H7)
        assert H7.is_serial()


class TestNeitherDominates:
    """§4.3: neither level's allowed set contains the other's (H4 vs H6)."""

    def test_wsi_allows_something_si_rejects(self):
        assert allowed_under_wsi(H4).allowed and not allowed_under_si(H4).allowed

    def test_si_allows_something_wsi_rejects(self):
        assert allowed_under_si(H6).allowed and not allowed_under_wsi(H6).allowed
