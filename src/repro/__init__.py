"""repro — reproduction of "A Critique of Snapshot Isolation" (EuroSys'12).

The paper introduces **write-snapshot isolation** (WSI): an MVCC isolation
level that detects read-write conflicts instead of snapshot isolation's
write-write conflicts, and thereby provides serializability at comparable
cost.  Its reference implementation became Apache Omid.

Quick start::

    from repro import create_system

    system = create_system("wsi")
    txn = system.manager.begin()
    txn.write("account:1", 100)
    txn.commit()

Subpackages:

* :mod:`repro.core` — isolation levels, status oracle, transactions.
* :mod:`repro.mvcc` — multi-version store, snapshot reads, regions.
* :mod:`repro.hbase` — region-sharded cluster simulator.
* :mod:`repro.percolator` — lock-based SI baseline (§2.1).
* :mod:`repro.wal` — BookKeeper-style batching write-ahead log.
* :mod:`repro.history` — history algebra, serializability & anomaly checks.
* :mod:`repro.workload` — YCSB-style workload generators (§6.1).
* :mod:`repro.sim` — discrete-event cluster simulation (§6 testbed).
* :mod:`repro.bench` — measurement harness used by benchmarks/.
* :mod:`repro.server` — group-commit oracle frontend (batched conflict
  detection, async client sessions, §6.3/Appendix A amortization).
"""

from repro.core import (
    IsolationLevel,
    Transaction,
    TransactionManager,
    create_system,
)

__version__ = "1.0.0"

__all__ = [
    "create_system",
    "IsolationLevel",
    "TransactionManager",
    "Transaction",
    "__version__",
]
