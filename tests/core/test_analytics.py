"""Unit tests for the §5.2 analytical-traffic extension."""

import pytest

from repro.core.analytics import (
    AnalyticalCommitRequest,
    AnalyticalOracle,
    RangeReadSet,
    RowRange,
)
from repro.core.status_oracle import CommitRequest


def oltp_commit(oracle, writes=(), reads=()):
    ts = oracle.begin()
    return ts, oracle.commit(
        CommitRequest(ts, write_set=frozenset(writes), read_set=frozenset(reads))
    )


class TestRowRange:
    def test_contains(self):
        r = RowRange(10, 20)
        assert r.contains(10) and r.contains(19)
        assert not r.contains(20) and not r.contains(9)

    def test_overlaps(self):
        assert RowRange(0, 10).overlaps(RowRange(5, 15))
        assert not RowRange(0, 10).overlaps(RowRange(10, 20))  # half-open

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RowRange(5, 5)

    def test_width(self):
        assert RowRange(3, 10).width == 7


class TestRangeReadSet:
    def test_coalesces_overlaps(self):
        rs = RangeReadSet()
        rs.add(RowRange(0, 10))
        rs.add(RowRange(5, 15))
        assert rs.range_count == 1
        assert rs.ranges() == [RowRange(0, 15)]

    def test_coalesces_adjacency(self):
        rs = RangeReadSet()
        rs.add(RowRange(0, 10))
        rs.add(RowRange(10, 20))
        assert rs.ranges() == [RowRange(0, 20)]

    def test_disjoint_kept_separate(self):
        rs = RangeReadSet([RowRange(0, 5), RowRange(10, 15)])
        assert rs.range_count == 2
        assert rs.covered_rows == 10

    def test_swallow_inner_ranges(self):
        rs = RangeReadSet([RowRange(2, 4), RowRange(6, 8), RowRange(0, 10)])
        assert rs.ranges() == [RowRange(0, 10)]

    def test_add_row(self):
        rs = RangeReadSet()
        for row in (5, 6, 7, 20):
            rs.add_row(row)
        assert rs.ranges() == [RowRange(5, 8), RowRange(20, 21)]

    def test_contains(self):
        rs = RangeReadSet([RowRange(0, 5), RowRange(10, 15)])
        assert rs.contains(3) and rs.contains(14)
        assert not rs.contains(7)

    def test_compactness_of_full_scan(self):
        # §5.2: a full-table scan is one range, not a million row ids.
        rs = RangeReadSet()
        for row in range(1000):
            rs.add_row(row)
        assert rs.range_count == 1

    def test_bool_and_str(self):
        assert not RangeReadSet()
        rs = RangeReadSet([RowRange(1, 2)])
        assert rs
        assert "[1, 2)" in str(rs)


class TestAnalyticalOracle:
    def test_range_conflict_detected(self):
        oracle = AnalyticalOracle()
        scan_ts = oracle.begin()
        oltp_commit(oracle, writes={500})  # OLTP writes inside the scanned range
        result = oracle.commit_analytical(
            AnalyticalCommitRequest(scan_ts, (RowRange(0, 1000),))
        )
        assert not result.committed
        assert oracle.stats_analytical_aborts == 1

    def test_no_conflict_outside_range(self):
        oracle = AnalyticalOracle()
        scan_ts = oracle.begin()
        oltp_commit(oracle, writes={5000})
        result = oracle.commit_analytical(
            AnalyticalCommitRequest(scan_ts, (RowRange(0, 1000),))
        )
        assert result.committed

    def test_pre_snapshot_write_is_fine(self):
        oracle = AnalyticalOracle()
        oltp_commit(oracle, writes={500})  # commits BEFORE the scan starts
        scan_ts = oracle.begin()
        result = oracle.commit_analytical(
            AnalyticalCommitRequest(scan_ts, (RowRange(0, 1000),))
        )
        assert result.committed

    def test_over_approximation_only_adds_aborts(self):
        # The range covers rows never actually read: a write there still
        # aborts the scan (false positive), but a precise WSI check with
        # the true row set would also never *miss* a conflict the range
        # check catches inside the true set.
        oracle = AnalyticalOracle()
        scan_ts = oracle.begin()
        oltp_commit(oracle, writes={999})  # row in range but "unread"
        result = oracle.commit_analytical(
            AnalyticalCommitRequest(scan_ts, (RowRange(0, 1000),))
        )
        assert not result.committed  # sound, possibly unnecessary

    def test_analytical_writes_update_lastcommit(self):
        oracle = AnalyticalOracle()
        old_oltp = oracle.begin()  # old snapshot, still running
        scan_ts = oracle.begin()
        result = oracle.commit_analytical(
            AnalyticalCommitRequest(scan_ts, (), write_set=frozenset({42}))
        )
        assert result.committed
        assert oracle.last_commit(42) == result.commit_ts
        # ...and OLTP transactions conflict with analytical writes normally.
        check = oracle.commit(
            CommitRequest(old_oltp, write_set=frozenset({1}),
                          read_set=frozenset({42}))
        )
        assert not check.committed

    def test_skip_check_mode_always_commits(self):
        # §5.2: statistics not read by OLTP -> commit can be skipped.
        oracle = AnalyticalOracle()
        scan_ts = oracle.begin()
        oltp_commit(oracle, writes={500})  # would conflict with a check
        result = oracle.commit_analytical(
            AnalyticalCommitRequest(
                scan_ts, (RowRange(0, 1000),), skip_check=True
            )
        )
        assert result.committed
        assert oracle.stats_skipped_checks == 1

    def test_skip_check_does_not_pollute_lastcommit(self):
        oracle = AnalyticalOracle()
        scan_ts = oracle.begin()
        oracle.commit_analytical(
            AnalyticalCommitRequest(
                scan_ts, (), write_set=frozenset({7}), skip_check=True
            )
        )
        # sandboxed: OLTP conflict state untouched
        assert oracle.last_commit(7) is None

    def test_oltp_path_unchanged(self):
        # The AnalyticalOracle is still a plain WSI oracle for OLTP.
        oracle = AnalyticalOracle()
        t1, t2 = oracle.begin(), oracle.begin()
        assert oracle.commit(
            CommitRequest(t1, write_set=frozenset({"x"}))
        ).committed
        assert not oracle.commit(
            CommitRequest(t2, write_set=frozenset({"y"}),
                          read_set=frozenset({"x"}))
        ).committed

    def test_range_check_cost_scales_with_writes_not_range(self):
        # A huge range over an empty lastCommit costs nothing.
        oracle = AnalyticalOracle()
        scan_ts = oracle.begin()
        result = oracle.commit_analytical(
            AnalyticalCommitRequest(scan_ts, (RowRange(0, 10 ** 9),))
        )
        assert result.committed
