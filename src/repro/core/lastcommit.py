"""Pluggable ``lastCommit`` conflict-detection stores.

The status oracle's hot state is one logical table: row key -> commit
timestamp of the last transaction that wrote the row (``lastCommit`` in
the paper's Algorithms 1-3).  Two representations back it:

``dict`` (the default)
    A plain dict keyed by row — simple, insertion-ordered, and fast for
    point probes.  ``BoundedStatusOracle`` uses an ``OrderedDict`` for
    its LRU eviction.  ~32 B/entry was the Appendix-A planning figure;
    benchmark E24's footprint leg measures the real number (see
    ROADMAP.md).

``array`` (:class:`ArrayLastCommit`)
    Keys are interned to dense int ids (:class:`~repro.core.keyspace.
    KeyInterner`), timestamps live in a flat ``array('q')`` indexed by
    id, and 0 is the *absent* sentinel (commit timestamps are always
    >= 1; recovery already treats 0 as "never written").  The win is
    in the batch decide loop: one C-level id gather
    (``itemgetter(*rows)``) plus one C-level timestamp gather plus one
    ``max(...) > start_ts`` compare replaces N interpreted dict-probe
    iterations per request — and an optional numpy path vectorises the
    compare for large row sets.  Benchmark E24 pins the >= 2x batch-128
    speedup; the hypothesis equivalence suites pin array == dict
    decisions bit-for-bit.

Both stores speak the ``MutableMapping`` protocol, so every consumer
that treats ``_last_commit`` as a mapping — the generic decide path,
recovery, analytics, the equivalence tests' ``dict(...)`` comparisons —
works on either backend unchanged.  The extra array-only surface
(:meth:`ArrayLastCommit.install`, :meth:`ArrayLastCommit.scan_conflict`,
:meth:`ArrayLastCommit.bulk_reset`) is what the vectorised decide loop
binds.

Backend selection mirrors the ``REPRO_ENGINE`` idiom
(:mod:`repro.core.engine`): ``make_lastcommit()`` resolves the
``REPRO_LASTCOMMIT`` environment variable (``dict`` | ``array``), and
``make_oracle(..., lastcommit=...)`` threads an explicit choice
through, per shard, for partitioned deployments.
"""

from __future__ import annotations

import os
from array import array
from collections import OrderedDict
from collections.abc import Mapping, MutableMapping
from operator import itemgetter
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple, Union

from .keyspace import KeyInterner

try:  # numpy is optional: the itemgetter path is the mandatory fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = [
    "LASTCOMMIT_ENV",
    "NUMPY_MIN_ROWS",
    "LastCommitStore",
    "ArrayLastCommit",
    "BoundedArrayLastCommit",
    "default_lastcommit_kind",
    "make_lastcommit",
    "np_peak",
]

#: Environment variable selecting the default backend (``dict``/``array``).
LASTCOMMIT_ENV = "REPRO_LASTCOMMIT"

#: Row-set size at which the numpy gather+max beats N itemgetter hops.
#: Below it the fixed cost of building the index array and the
#: ``frombuffer`` view dominates; typical read sets (<= ~16 rows) stay
#: on the pure-python path even when numpy is installed.
NUMPY_MIN_ROWS = 32


def _np_peak(ts: array, kids) -> int:
    """Max timestamp over slot ids ``kids``, vectorised.

    The ``frombuffer`` view is zero-copy and *transient*: it is created
    and dropped inside this call because a live view pins the buffer
    and the next ``array`` grow would raise ``BufferError``.
    """
    return int(_np.frombuffer(ts, dtype=_np.int64)[list(kids)].max())


#: Vectorised gather+max, or ``None`` when numpy is unavailable — the
#: decide loops bind this once and fall back to ``itemgetter`` chains.
np_peak = _np_peak if _np is not None else None


class LastCommitStore(MutableMapping):
    """Interface contract for pluggable ``lastCommit`` backends.

    A backend is any ``MutableMapping`` from row key to positive commit
    timestamp whose equality, iteration and ``dict(...)`` conversions
    match the plain-dict backend.  Array-style backends additionally
    expose the bulk hooks the vectorised decide loop binds:

    * :meth:`install` — intern + store a whole write set at one
      timestamp (one call per committed transaction);
    * :meth:`scan_conflict` — side-effect-free first-conflict scan with
      the dict backend's exact row order and rows-examined count;
    * :meth:`bulk_reset` — epoch/watermark reset without rebuilding the
      interner.

    The plain ``dict`` default does not subclass this ABC — the decide
    loop type-switches on the concrete class, and everything else goes
    through the shared mapping protocol.
    """

    __slots__ = ()

    #: Factory kind string this backend answers to.
    kind = "abstract"

    def install(self, keys: Iterable[Hashable], commit_ts: int) -> None:
        raise NotImplementedError

    def scan_conflict(
        self, rows: Iterable[Hashable], start_ts: int
    ) -> Tuple[Optional[Hashable], int]:
        raise NotImplementedError

    def bulk_reset(self, watermark: Optional[int] = None) -> None:
        raise NotImplementedError


class ArrayLastCommit(LastCommitStore):
    """Flat ``array('q')`` of commit timestamps indexed by interned slot.

    Zero-valued slots are absent (commit timestamps are >= 1), and slot
    0 — which the interner never assigns — stays permanently 0 so the
    vectorised check can route "unseen" lookups there without masking.
    The array grows monotonically with the interner — keys deleted from
    the *mapping* keep their slot, so re-installs never re-intern and
    ids stay stable for the store's lifetime (and across processes, per
    the interner's contract).
    """

    __slots__ = ("_interner", "_ts", "_live")

    kind = "array"

    def __init__(self, interner: Optional[KeyInterner] = None) -> None:
        self._interner = interner if interner is not None else KeyInterner()
        #: commit timestamp per slot; 0 == absent.  Grown (never shrunk)
        #: to the interner's slot capacity on demand.
        self._ts: array = array("q", bytes(8 * self._interner.slot_capacity))
        #: live (non-zero) entry count: the mapping's len().
        self._live = 0

    # -- growth ----------------------------------------------------------

    def _grow(self) -> array:
        """Extend the slot array to the interner's current capacity.

        numpy views are never cached across calls precisely because of
        this method: a live ``frombuffer`` view pins the buffer and
        ``array.extend`` would raise ``BufferError``.
        """
        ts = self._ts
        short = self._interner.slot_capacity - len(ts)
        if short > 0:
            ts.frombytes(bytes(8 * short))
        return ts

    # -- mapping protocol ------------------------------------------------

    def __getitem__(self, key: Hashable) -> int:
        kid = self._interner._ids.get(key)
        if kid is not None and kid < len(self._ts):
            ts = self._ts[kid]
            if ts:
                return ts
        raise KeyError(key)

    def get(self, key: Hashable, default=None):
        kid = self._interner._ids.get(key)
        if kid is not None and kid < len(self._ts):
            ts = self._ts[kid]
            if ts:
                return ts
        return default

    def __setitem__(self, key: Hashable, commit_ts: int) -> None:
        if commit_ts <= 0:
            raise ValueError(
                f"ArrayLastCommit timestamps must be positive (0 is the "
                f"absent sentinel); got {commit_ts!r} for {key!r}"
            )
        kid = self._interner.intern(key)
        ts = self._ts
        if kid >= len(ts):
            ts = self._grow()
        if ts[kid] == 0:
            self._live += 1
            self._record_insert(kid)
        ts[kid] = commit_ts

    def __delitem__(self, key: Hashable) -> None:
        kid = self._interner._ids.get(key)
        if kid is None or kid >= len(self._ts) or self._ts[kid] == 0:
            raise KeyError(key)
        self._ts[kid] = 0
        self._live -= 1
        self._record_delete(kid)

    def __iter__(self) -> Iterator[Hashable]:
        # Id (= deterministic intern) order; callers needing LRU order
        # use BoundedArrayLastCommit.
        keys = self._interner._keys
        ts = self._ts
        for kid in range(len(ts)):
            if ts[kid]:
                yield keys[kid]

    def __len__(self) -> int:
        return self._live

    def __contains__(self, key: Hashable) -> bool:
        kid = self._interner._ids.get(key)
        return kid is not None and kid < len(self._ts) and self._ts[kid] != 0

    def __eq__(self, other: object) -> bool:
        # Mapping-value equality against *any* mapping (dict included),
        # so backend-crossed comparisons in tests behave like dict==dict.
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    # MutableMapping sets __hash__ = None; keep it that way.
    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({dict(self)!r})"

    # -- LRU-order hooks (no-ops here; BoundedArrayLastCommit overrides) --

    def _record_insert(self, kid: int) -> None:
        pass

    def _record_delete(self, kid: int) -> None:
        pass

    # -- bulk hooks the vectorised decide loop binds ----------------------

    def install(self, keys: Iterable[Hashable], commit_ts: int) -> None:
        """Intern + store a whole write set at ``commit_ts``.

        One ``intern_many`` (deterministic id order for unseen keys),
        one grow, one store sweep — the per-commit install cost the
        batch loop pays instead of ``len(ws)`` dict stores.
        """
        if commit_ts <= 0:
            raise ValueError(
                f"ArrayLastCommit timestamps must be positive (0 is the "
                f"absent sentinel); got {commit_ts!r}"
            )
        kids = self._interner.intern_many(keys)
        ts = self._grow()
        fresh = 0
        for kid in kids:
            if ts[kid] == 0:
                fresh += 1
                self._record_insert(kid)
            ts[kid] = commit_ts
        self._live += fresh

    def scan_conflict(
        self, rows, start_ts: int
    ) -> Tuple[Optional[Hashable], int]:
        """First conflicting row and rows-examined count, dict-identically.

        Three regimes, fastest first:

        * **int lane** (numpy present, >= :data:`NUMPY_MIN_ROWS` rows,
          every interned key an exact int): one ``fromiter`` over the
          row set, one vectorised slot gather from the interner's int
          table (0 routes to the reserved always-0 slot), one
          vectorised timestamp gather + ``max`` — zero per-row Python
          work.  The gathered max can only over-report (see
          :mod:`repro.core.keyspace` on checked-key aliasing), so a
          value above ``start_ts`` is a *suspicion*, not a verdict.
        * **itemgetter chain**: one C-level id gather + one C-level
          timestamp gather + one ``max`` — no per-row bytecode, but
          still a dict probe per row inside the C call.
        * **scalar probe**: the dict backend's faithful early-stop scan,
          used as the rescan for any suspected conflict and as the
          fallback when a row was never interned — so the reported
          conflict row and the examined count match the dict backend's
          scan exactly in every case.
        """
        rows = tuple(rows) if not isinstance(rows, (tuple, frozenset)) else rows
        n = len(rows)
        if n == 0:
            return None, 0
        interner = self._interner
        ids_map = interner._ids
        ts = self._ts
        peak = -1  # -1: gather impossible, go scalar
        try:
            if n == 1:
                row = next(iter(rows))
                kid = ids_map[row]
                if kid < len(ts) and ts[kid] > start_ts:
                    return row, 1
                return None, 1
            if _np is not None and n >= NUMPY_MIN_ROWS and interner._int_lane:
                try:
                    keys_np = _np.fromiter(rows, _np.int64, n)
                except (TypeError, ValueError, OverflowError):
                    keys_np = None
                if keys_np is not None:
                    table = interner._int_table
                    if len(table) and int(keys_np.max()) < len(table):
                        kids_np = _np.frombuffer(table, dtype=_np.int64)[keys_np]
                        peak = int(
                            _np.frombuffer(ts, dtype=_np.int64)[kids_np].max()
                        )
            if peak < 0:
                kids = itemgetter(*rows)(ids_map)
                peak = max(itemgetter(*kids)(ts))
        except (KeyError, IndexError):
            # Some row was never interned (or its slot predates the
            # last grow): no gather possible, probe row by row.
            peak = -1
        if 0 <= peak <= start_ts:
            return None, n
        ids_get = ids_map.get
        examined = 0
        for row in rows:
            examined += 1
            kid = ids_get(row)
            if kid is not None and kid < len(ts) and ts[kid] > start_ts:
                return row, examined
        return None, examined

    def bulk_reset(self, watermark: Optional[int] = None) -> None:
        """Epoch reset: drop all entries, or those at/below ``watermark``.

        The interner (and therefore every id) survives — the point of
        an epoch flip is to reuse the keyspace without re-interning.
        """
        ts = self._ts
        if watermark is None:
            self._ts = array("q", bytes(8 * len(ts)))
            self._live = 0
            self._order_clear()
            return
        live = self._live
        for kid in range(len(ts)):
            stamp = ts[kid]
            if stamp and stamp <= watermark:
                ts[kid] = 0
                live -= 1
                self._record_delete(kid)
        self._live = live

    def clear(self) -> None:
        self.bulk_reset()

    def _order_clear(self) -> None:
        pass

    # -- introspection ----------------------------------------------------

    @property
    def interner(self) -> KeyInterner:
        return self._interner

    def slot_count(self) -> int:
        """Allocated slots (interned keys), live or not."""
        return len(self._ts)


class BoundedArrayLastCommit(ArrayLastCommit):
    """LRU-ordered array store backing ``BoundedStatusOracle``.

    Adds the ``OrderedDict`` surface the bounded decide loop uses —
    insertion-ordered iteration, ``pop(row)``, ``popitem(last=False)``
    — on top of the flat timestamp array.  Order lives in an
    insertion-ordered ``dict`` of ids; evicted keys keep their interner
    slot (the array never shrinks), so a bounded store's footprint is
    bounded in *live entries* while the slot array tracks total keys
    ever seen — the documented trade-off for id stability.
    """

    __slots__ = ("_order",)

    def __init__(self, interner: Optional[KeyInterner] = None) -> None:
        super().__init__(interner)
        #: id -> None, in LRU order (dict preserves insertion order).
        self._order: Dict[int, None] = {}

    def _record_insert(self, kid: int) -> None:
        self._order[kid] = None

    def _record_delete(self, kid: int) -> None:
        del self._order[kid]

    def _order_clear(self) -> None:
        self._order.clear()

    def __iter__(self) -> Iterator[Hashable]:
        keys = self._interner._keys
        for kid in self._order:
            yield keys[kid]

    def __len__(self) -> int:
        return len(self._order)

    def popitem(self, last: bool = True) -> Tuple[Hashable, int]:
        """(key, ts) from the LRU (``last=False``) or MRU end."""
        order = self._order
        if not order:
            raise KeyError("popitem(): store is empty")
        kid = next(reversed(order)) if last else next(iter(order))
        key = self._interner._keys[kid]
        ts = self._ts[kid]
        del order[kid]
        self._ts[kid] = 0
        self._live -= 1
        return key, ts


def default_lastcommit_kind() -> str:
    """Backend selected by ``REPRO_LASTCOMMIT`` (``dict`` when unset)."""
    return os.environ.get(LASTCOMMIT_ENV, "dict").strip().lower() or "dict"


def make_lastcommit(
    kind: Union[str, MutableMapping, None] = None,
    *,
    bounded: bool = False,
    interner: Optional[KeyInterner] = None,
):
    """Build a ``lastCommit`` store.

    ``kind`` is a backend name (``"dict"`` | ``"array"``), an existing
    store instance (returned as-is, for tests injecting a pre-seeded
    store), or ``None`` to resolve ``REPRO_LASTCOMMIT``.  ``bounded``
    selects the LRU-ordered variant each backend provides
    (``OrderedDict`` / :class:`BoundedArrayLastCommit`).
    """
    if kind is None:
        kind = default_lastcommit_kind()
    if not isinstance(kind, str):
        return kind
    name = kind.strip().lower()
    if name == "dict":
        return OrderedDict() if bounded else {}
    if name == "array":
        cls = BoundedArrayLastCommit if bounded else ArrayLastCommit
        return cls(interner)
    raise ValueError(
        f"unknown lastcommit backend {kind!r} (expected 'dict' or 'array'; "
        f"set {LASTCOMMIT_ENV} or pass lastcommit= explicitly)"
    )
