#!/usr/bin/env python3
"""Quickstart: the transactional API in five minutes.

Builds a write-snapshot-isolation system, runs transactions through the
client API, shows a conflict abort, and uses the retry loop — the core
surface a downstream application uses.

Run:  python examples/quickstart.py
"""

from repro import create_system
from repro.core.errors import ConflictAbort


def main() -> None:
    # One call wires the full stack: MVCC store, timestamp oracle,
    # status oracle (Algorithm 2), transaction manager, commit table.
    system = create_system("wsi")
    manager = system.manager

    # --- basic writes and snapshot reads -----------------------------
    txn = manager.begin()
    txn.write("user:1:name", "ada")
    txn.write("user:1:balance", 100)
    txn.commit()
    print(f"committed txn [{txn.start_ts}, {txn.commit_ts}]")

    reader = manager.begin()
    print("read back:", reader.read("user:1:name"), reader.read("user:1:balance"))
    reader.commit()

    # --- snapshots are stable ----------------------------------------
    old_reader = manager.begin()
    balance_before = old_reader.read("user:1:balance")

    updater = manager.begin()
    updater.write("user:1:balance", 42)
    updater.commit()

    # old_reader's snapshot predates the update: it still sees 100.
    assert old_reader.read("user:1:balance") == balance_before == 100
    print("snapshot stability: old reader still sees", balance_before)

    # --- read-write conflicts abort (that's what buys serializability)
    t1 = manager.begin()
    t2 = manager.begin()
    t2.read("user:1:balance")          # t2 reads...
    t2.write("user:1:audit", "check")
    t1.write("user:1:balance", 0)      # ...t1 overwrites what t2 read
    t1.commit()
    try:
        t2.commit()
    except ConflictAbort as exc:
        print("conflict detected as expected:", exc)

    # --- the retry loop handles aborts for you ------------------------
    def transfer(txn, amount=10):
        balance = txn.read("user:1:balance", default=0)
        txn.write("user:1:balance", balance - amount)
        txn.write("user:2:balance", txn.read("user:2:balance", default=0) + amount)

    manager.run(transfer)
    check = manager.begin()
    print(
        "after transfer:",
        check.read("user:1:balance"),
        "/",
        check.read("user:2:balance"),
    )

    # --- context managers commit on success, abort on exception -------
    with manager.begin() as txn:
        txn.write("user:2:name", "grace")
    print("context-managed commit at ts", txn.commit_ts)

    print("\noracle stats:", system.oracle.stats)


if __name__ == "__main__":
    main()
