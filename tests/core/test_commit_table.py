"""Unit tests for the commit table and its client replicas."""

import pytest

from repro.core.commit_table import ClientCommitView, CommitTable


class TestCommitTable:
    def test_commit_lookup(self):
        table = CommitTable()
        table.record_commit(5, 9)
        assert table.commit_timestamp(5) == 9
        assert table.is_committed(5)
        assert not table.is_aborted(5)

    def test_unknown_txn(self):
        table = CommitTable()
        assert table.commit_timestamp(7) is None
        assert not table.is_committed(7)
        assert not table.is_aborted(7)

    def test_abort_lookup(self):
        table = CommitTable()
        table.record_abort(5)
        assert table.is_aborted(5)
        assert table.commit_timestamp(5) is None

    def test_commit_after_abort_rejected(self):
        table = CommitTable()
        table.record_abort(5)
        with pytest.raises(ValueError):
            table.record_commit(5, 9)

    def test_abort_after_commit_rejected(self):
        table = CommitTable()
        table.record_commit(5, 9)
        with pytest.raises(ValueError):
            table.record_abort(5)

    def test_commit_ts_must_exceed_start(self):
        table = CommitTable()
        with pytest.raises(ValueError):
            table.record_commit(5, 5)
        with pytest.raises(ValueError):
            table.record_commit(5, 3)

    def test_counts(self):
        table = CommitTable()
        table.record_commit(1, 2)
        table.record_commit(3, 4)
        table.record_abort(5)
        assert table.commit_count == 2
        assert table.abort_count == 1


class TestReplication:
    def test_attached_view_follows_updates(self):
        table = CommitTable()
        view = ClientCommitView(table)
        table.record_commit(1, 2)
        table.record_abort(3)
        assert view.commit_timestamp(1) == 2
        assert view.is_aborted(3)

    def test_late_join_bootstraps_existing_state(self):
        table = CommitTable()
        table.record_commit(1, 2)
        table.record_abort(3)
        view = ClientCommitView(table)
        assert view.commit_timestamp(1) == 2
        assert view.is_aborted(3)
        assert view.size == 2

    def test_multiple_replicas(self):
        table = CommitTable()
        views = [ClientCommitView(table) for _ in range(3)]
        table.record_commit(10, 11)
        assert all(v.commit_timestamp(10) == 11 for v in views)

    def test_detached_view_fed_manually(self):
        view = ClientCommitView()
        view.apply("commit", 1, 2)
        view.apply("abort", 3, None)
        assert view.commit_timestamp(1) == 2
        assert view.is_aborted(3)

    def test_detached_view_models_replication_lag(self):
        # A lagging replica simply doesn't know about a commit yet:
        # the reader will skip that version (safe under SI/WSI).
        table = CommitTable()
        lagging = ClientCommitView()
        table.record_commit(1, 2)
        assert lagging.commit_timestamp(1) is None

    def test_unknown_record_kind_rejected(self):
        view = ClientCommitView()
        with pytest.raises(ValueError):
            view.apply("merge", 1, 2)
