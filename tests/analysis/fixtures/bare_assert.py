"""Fixture for the ``no-bare-assert`` pass.

Bare asserts vanish under ``python -O``; protocol code raises typed
errors instead.
"""


def apply_commit(table, start_ts, commit_ts):
    assert commit_ts is not None  # EXPECT: no-bare-assert
    table[start_ts] = commit_ts


def typed_check(commit_ts):
    if commit_ts is None:
        raise ValueError("typed error instead of assert")
    return commit_ts


def reviewed(flag):
    assert flag  # lint: skip=no-bare-assert -- fixture suppression
