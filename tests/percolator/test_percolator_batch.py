"""PercolatorEngine's batched flush vs crash-orphaned locks (§2.1).

The scenario the paper's critique of locking designs leads with: a
client dies between prewrite and finalize, and its locks linger until
someone resolves them.  The engine must resolve such orphans *inline*
during a batched flush — rolling the crashed transaction back (primary
intact, holder known dead) or forward (primary's write record exists) —
so every blocked future settles with a real decision in the same flush
instead of stalling or spuriously aborting forever.
"""

from __future__ import annotations

import pytest

from repro.core.status_oracle import CommitRequest
from repro.percolator.engine import PercolatorEngine
from repro.server import OracleFrontend


def req(start, writes=(), reads=()):
    return CommitRequest(
        start_ts=start, write_set=frozenset(writes), read_set=frozenset(reads)
    )


def crash_mid_prewrite(engine, rows, values=None):
    """An interactive client prewrites ``rows`` then dies, leaving its
    locks (primary included) in the store."""
    txn = engine.manager.begin()
    for i, row in enumerate(rows):
        txn.write(row, (values or {}).get(row, f"v{i}"))
    primary = sorted(rows, key=repr)[0]
    txn.prewrite(primary)
    for row in rows:
        assert engine.store.lock_of(row) is not None
    txn.crash()
    return txn


class TestCrashOrphanedLocks:
    def test_batched_flush_rolls_back_orphans_and_commits(self):
        engine = PercolatorEngine()
        frontend = OracleFrontend(engine, max_batch=4)
        crashed = crash_mid_prewrite(engine, ["a", "b"])

        future = frontend.submit_commit(req(frontend.begin(), writes=["a", "b"]))
        assert not future.done
        frontend.flush()

        # The orphaned locks were resolved (rolled back: the primary
        # never got its write record), the blocked request committed.
        result = future.result()
        assert result.committed
        assert engine.lock_cleanups == 2
        assert not engine.store._locks
        assert engine.store.lock_of("a") is None
        # The crashed txn's buffered versions are gone too.
        assert engine.store.write_record_for_start("a", crashed.start_ts) is None

    def test_batched_flush_rolls_forward_finished_holder(self):
        """Holder crashed *after* finalizing its primary: the engine
        must roll the secondary forward, then the requester loses the
        ww check against the newly-visible commit."""
        engine = PercolatorEngine()
        txn = engine.manager.begin()
        txn.write("p", 1)
        txn.write("s", 2)
        txn.prewrite("p")
        frontend = OracleFrontend(engine, max_batch=2)
        # The requester's snapshot predates the holder's commit point...
        requester_start = frontend.begin()
        # ... then the holder finalizes its primary only and dies.
        commit_ts = txn.finalize("p", rows=["p"])
        assert engine.store.lock_of("s") is not None

        future = frontend.submit_commit(req(requester_start, writes=["s"]))
        frontend.flush()

        result = future.result()
        assert not result.committed
        assert result.reason == "ww-conflict"
        assert result.conflict_row == "s"
        # Roll-forward installed the secondary's write record.
        record = engine.store.write_record_for_start("s", txn.start_ts)
        assert record is not None and record.commit_ts == commit_ts
        assert engine.lock_cleanups == 1
        assert not engine.store._locks

    def test_live_holder_still_aborts_the_requester(self):
        """ABORT_SELF policy: a lock whose holder is alive and active is
        *not* an orphan — the batched requester aborts with lock-held."""
        engine = PercolatorEngine()
        txn = engine.manager.begin()
        txn.write("row", 1)
        txn.prewrite("row")  # alive, between prewrite and finalize

        frontend = OracleFrontend(engine, max_batch=2)
        future = frontend.submit_commit(req(frontend.begin(), writes=["row"]))
        frontend.flush()

        result = future.result()
        assert not result.committed
        assert result.reason == "lock-held"
        assert result.conflict_row == "row"
        assert engine.lock_cleanups == 0
        # The live holder's lock survived the flush and it can finalize.
        assert engine.store.lock_of("row") is not None
        assert txn.finalize("row") > txn.start_ts

    def test_orphans_resolve_mid_batch_for_every_blocked_mate(self):
        """Several requests in one flush each hit a different orphan:
        all futures settle, all orphans are cleaned, later batch-mates
        still conflict with earlier ones on shared rows."""
        engine = PercolatorEngine()
        frontend = OracleFrontend(engine, max_batch=8)
        for rows in (["a"], ["b"], ["c", "d"]):
            crash_mid_prewrite(engine, rows)

        futures = [
            frontend.submit_commit(req(frontend.begin(), writes=["a"])),
            frontend.submit_commit(req(frontend.begin(), writes=["b", "c"])),
            frontend.submit_commit(req(frontend.begin(), writes=["b"])),  # mate loser
        ]
        frontend.flush()

        results = [f.result() for f in futures]
        assert [r.committed for r in results] == [True, True, False]
        assert results[2].reason == "ww-conflict"
        assert engine.lock_cleanups == 3  # a, b, c — nobody touched d
        # Resolution is lazy, exactly Percolator's: the untouched
        # orphan lock on d lingers until some request runs into it.
        assert set(engine.store._locks) == {"d"}

    def test_sequential_path_resolves_orphans_identically(self):
        """The batched resolution is not a special power: the
        sequential commit() path cleans the same orphan the same way
        (the equivalence suite relies on this)."""
        engine = PercolatorEngine()
        crash_mid_prewrite(engine, ["x"])
        result = engine.commit(req(engine.begin(), writes=["x"]))
        assert result.committed
        assert engine.lock_cleanups == 1
        assert not engine.store._locks
