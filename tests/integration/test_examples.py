"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; these tests keep them honest
as the library evolves.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv=None, monkeypatch=None):
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    if monkeypatch is not None and argv is not None:
        monkeypatch.setattr(sys, "argv", [str(path)] + argv)
    return runpy.run_path(str(path), run_name="__main__")


class TestExamplesRun:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "conflict detected as expected" in out
        assert "oracle stats" in out

    def test_bank_write_skew(self, capsys):
        run_example("bank_write_skew.py")
        out = capsys.readouterr().out
        assert "VIOLATED" in out  # SI loses money
        assert "constraint OK" in out  # WSI does not

    def test_history_explorer_default(self, capsys, monkeypatch):
        run_example("history_explorer.py", argv=[], monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        for name in ("H1", "H4", "H7"):
            assert f"\n{name}:" in out

    def test_history_explorer_custom_history(self, capsys, monkeypatch):
        run_example(
            "history_explorer.py",
            argv=["r1[x] w2[x] c2 c1"],
            monkeypatch=monkeypatch,
        )
        out = capsys.readouterr().out
        assert "serializable" in out

    def test_percolator_outage(self, capsys):
        run_example("percolator_outage.py")
        out = capsys.readouterr().out
        assert "CRASHED" in out
        assert "lock-free" in out.lower() or "Lock-free" in out

    def test_group_commit(self, capsys):
        run_example("group_commit.py")
        out = capsys.readouterr().out
        assert "1 group-commit WAL record" in out
        assert "shadow unbatched oracle agrees on every decision" in out
        assert "exactly the durable prefix" in out

    def test_oracle_failover(self, capsys):
        run_example("oracle_failover.py")
        out = capsys.readouterr().out
        assert "conflict state survived the failover" in out
        assert "total failovers: 2" in out

    def test_ycsb_cluster_single_point(self, capsys):
        # import the example as a module and drive one cheap data point
        # instead of its full main() (which runs three distributions).
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "ycsb_cluster_example", EXAMPLES_DIR / "ycsb_cluster.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.run("uniform", [10], measure=1.5)
        out = capsys.readouterr().out
        assert "uniform distribution" in out
        assert "WSI TPS" in out
