# Developer entry points.  PYTHONPATH=src is the repo's import contract
# (see ROADMAP.md "Tier-1 verify").

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: lint test test-fast bench bench-smoke check profile

## Invariant lint: the five AST passes in repro.analysis (builtin-hash
## routing, decision-path determinism, guarded-by lock discipline,
## future settlement discipline, bare asserts) over the whole src tree.
## A clean tree is a hard gate: first leg of `make check` and of CI.
lint:
	PYTHONPATH=src python -m repro.analysis

## Full tier-1 suite: unit + property + integration + figure benchmarks.
test:
	$(PYTEST) -x -q

## Fast inner loop: skips the @slow tests (the ~90 s figure benchmarks
## in benchmarks/ and the heavy stress sweeps).
test-fast:
	$(PYTEST) -m "not slow" -q

## Figure benchmarks only, with their printed tables/charts.  Full
## runs also record() their headline ratios — to BENCH_full.json by
## default (uncommitted, see .gitignore: full-run numbers are
## hardware-bound; BENCH_smoke.json stays the committed drift guard).
bench:
	rm -f BENCH_full.json
	REPRO_BENCH_SNAPSHOT=$${REPRO_BENCH_SNAPSHOT:-BENCH_full.json} $(PYTEST) benchmarks -q -s

## Fast perf sanity check: the E17-E24 hot-path/HA bars at tiny sizes
## (REPRO_BENCH_SMOKE relaxes the bars accordingly).  Writes the
## headline ratios per experiment to BENCH_smoke.json (the snapshot is
## committed, so behaviour drifts show up as a diff).  Runs in a few
## seconds; `make test-fast` still skips the benchmarks directory
## entirely (its conftest marks every figure benchmark @slow).
bench-smoke:
	rm -f BENCH_smoke.json
	REPRO_BENCH_SMOKE=1 REPRO_BENCH_SNAPSHOT=BENCH_smoke.json $(PYTEST) \
		benchmarks/test_e17_group_commit.py::test_e17_group_commit_speedup \
		benchmarks/test_e18_batch_decide.py::test_e18_batch_decide_speedup \
		benchmarks/test_e19_cross_partition_batch.py::test_e19_cross_partition_batch_speedup \
		benchmarks/test_e20_begin_lease.py::test_e20_begin_lease_speedup \
		benchmarks/test_e21_parallel_partitions.py::test_e21_parallel_executor_speedup \
		benchmarks/test_e22_failover.py \
		benchmarks/test_e23_engine_shootout.py \
		benchmarks/test_e24_array_lastcommit.py::test_e24_array_backend_speedup \
		benchmarks/test_e24_array_lastcommit.py::test_e24_memory_footprint \
		-q -s

## The fast suite twice under two different hash salts: routing (shard
## and block placement) must be identical regardless of PYTHONHASHSEED,
## so any decision or stat that silently depended on builtin str/bytes
## hashing fails one of the two runs.  Then the same two salted runs
## again with REPRO_EXECUTOR=parallel, which makes every partitioned
## oracle built without an explicit executor= fan its protocol rounds
## over a thread pool — the threaded path must stay green under both
## salts (executor choice is performance policy, never semantics).
## The begin/recover no-reuse pins and the HA failover pins (warm
## takeover, crash-mid-batch retry, no timestamp reuse across leaders)
## ride in every salted run; the explicit last pair keeps them covered
## even if the fast-suite marker set ever changes.
## Finally the REPRO_ENGINE axis: the serving-stack suites (engines,
## server, sim, coord) once per non-default commit protocol, so the
## batched/HA/sim layers stay protocol-agnostic — every entry point
## that defaults engine=None resolves through the variable.  Tests
## that assert oracle-specific semantics (last_commit probes, WSI
## conflict outcomes) pin engine="oracle" and ride along unchanged.
## The REPRO_LASTCOMMIT=array leg runs the whole fast suite with every
## oracle built without an explicit lastcommit= re-backed onto the
## interned-array store (repro.core.lastcommit) — representation is
## performance policy, never semantics, so the suite must stay green
## verbatim (the hypothesis pins in test_equivalence_properties.py
## additionally require bit-identical decisions and replay).
check:
	$(MAKE) lint
	PYTHONHASHSEED=0 $(PYTEST) -m "not slow" -q
	PYTHONHASHSEED=31337 $(PYTEST) -m "not slow" -q
	REPRO_LASTCOMMIT=array PYTHONHASHSEED=0 $(PYTEST) -m "not slow" -q
	REPRO_EXECUTOR=parallel PYTHONHASHSEED=0 $(PYTEST) -m "not slow" -q
	REPRO_EXECUTOR=parallel PYTHONHASHSEED=31337 $(PYTEST) -m "not slow" -q
	REPRO_ENGINE=percolator PYTHONHASHSEED=0 $(PYTEST) -m "not slow" -q \
		tests/engines tests/server tests/sim tests/coord
	REPRO_ENGINE=ssi PYTHONHASHSEED=0 $(PYTEST) -m "not slow" -q \
		tests/engines tests/server tests/sim tests/coord
	PYTHONHASHSEED=0 $(PYTEST) -q \
		tests/core/test_timestamps.py tests/server/test_frontend_recovery.py \
		tests/coord/test_failover.py tests/server/test_ha.py
	PYTHONHASHSEED=31337 $(PYTEST) -q \
		tests/core/test_timestamps.py tests/server/test_frontend_recovery.py \
		tests/coord/test_failover.py tests/server/test_ha.py

## cProfile the batch-decide frontend microbench and print the top-20
## functions by cumulative time (where the critical section spends it),
## then the E24-shaped batch-128 attribution of the array lastCommit
## backend: cumulative time per phase (intern / gather / compare /
## install) plus the measured bytes/entry of both backends.
profile:
	PYTHONPATH=src python -m repro.bench.frontend_bench --profile
	PYTHONPATH=src python -m repro.bench.frontend_bench --profile-e24
