#!/usr/bin/env python3
"""Status-oracle failover: Appendix A's recovery story, end to end.

The status oracle is a single server — "a single point of failure" —
which the deployment tolerates by (i) persisting every commit/abort into
a replicated BookKeeper write-ahead log and (ii) running standby
instances behind a ZooKeeper leader election.  When the active oracle
dies, the next candidate wins the election, replays the WAL, and keeps
serving with all pre-failure conflict state intact.

Run:  python examples/oracle_failover.py
"""

from repro.coord import OracleReplicaSet
from repro.core.status_oracle import CommitRequest


def main() -> None:
    replica_set = OracleReplicaSet(num_hosts=3, level="wsi")
    print(f"replica set up: 3 hosts, host {replica_set.active_host().host_id} "
          "elected leader")

    # Normal traffic.
    long_running = replica_set.begin()  # an old snapshot we'll test later
    for i in range(100):
        ts = replica_set.begin()
        replica_set.commit(
            CommitRequest(ts, write_set=frozenset({f"row{i % 10}"}))
        )
    replica_set.wal.flush()
    print("100 transactions committed and persisted "
          f"(flushes: {replica_set.wal.flush_count})")

    # The leader dies.
    victim = replica_set.kill_active()
    new_leader = replica_set.active_host()
    print(f"\nhost {victim.host_id} CRASHED -> host {new_leader.host_id} "
          f"elected, replayed {new_leader.recovered_records} WAL records")

    # The recovered oracle still detects conflicts that predate the crash:
    # `long_running` started before all 100 commits, so its read of row0
    # conflicts with writes committed during its lifetime.
    result = replica_set.commit(
        CommitRequest(
            long_running,
            write_set=frozenset({"output"}),
            read_set=frozenset({"row0"}),
        )
    )
    print(f"pre-crash transaction after failover: "
          f"{'committed (BUG!)' if result.committed else f'aborted ({result.reason})'} "
          "- conflict state survived the failover")

    # And fresh traffic flows normally, with timestamps that never collide.
    ts = replica_set.begin()
    result = replica_set.commit(CommitRequest(ts, write_set=frozenset({"new"})))
    print(f"fresh transaction: committed at ts {result.commit_ts} "
          f"(all timestamps > pre-crash ones: reservation marks are durable)")

    replica_set.kill_active()
    print(f"\nsecond failover -> host {replica_set.active_host().host_id}; "
          f"total failovers: {replica_set.failovers}")


if __name__ == "__main__":
    main()
