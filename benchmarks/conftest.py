"""Shared configuration for the figure-regeneration benchmarks.

Every benchmark in this directory regenerates one table or figure from
the paper's evaluation (§6) — see DESIGN.md's experiment index.  Each
prints its measured series next to the paper's anchors and asserts the
qualitative *shape* (who wins, where the knee falls, how curves order);
absolute TPS values are simulator-calibrated, not hardware-faithful.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as regenerating a paper figure"
    )


@pytest.fixture(scope="session")
def print_header():
    def _print(title: str) -> None:
        print()
        print("=" * 78)
        print(title)
        print("=" * 78)

    return _print
