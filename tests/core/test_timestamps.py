"""Unit tests for the timestamp oracle: allocation, leases, recovery.

The recovery classes double as the no-reuse regression pins for the
begin/recover path (ISSUE 4): a restarted oracle must resume strictly
above the *persisted reservation high-water mark* — never the in-memory
cursor, which sits below the mark mid-reservation and mid-lease.
"""

import pytest

from repro.core.errors import OracleClosed, RecoveryError
from repro.core.status_oracle import CommitRequest, make_oracle
from repro.core.timestamps import TimestampOracle
from repro.wal.bookkeeper import BookKeeperWAL


class TestAllocation:
    def test_timestamps_start_at_one(self):
        tso = TimestampOracle()
        assert tso.next() == 1

    def test_timestamps_strictly_increase(self):
        tso = TimestampOracle()
        previous = 0
        for _ in range(1000):
            ts = tso.next()
            assert ts > previous
            previous = ts

    def test_timestamps_are_consecutive(self):
        tso = TimestampOracle()
        values = [tso.next() for _ in range(50)]
        assert values == list(range(1, 51))

    def test_peek_does_not_advance(self):
        tso = TimestampOracle()
        assert tso.peek() == 1
        assert tso.peek() == 1
        assert tso.next() == 1
        assert tso.peek() == 2

    def test_custom_first_timestamp(self):
        tso = TimestampOracle(first_timestamp=100)
        assert tso.next() == 100

    def test_issued_count(self):
        tso = TimestampOracle()
        for _ in range(7):
            tso.next()
        assert tso.issued_count == 7


class TestBatchedDurability:
    def test_one_wal_write_per_batch(self):
        writes = []
        tso = TimestampOracle(reservation_batch=10, wal_append=writes.append)
        for _ in range(10):
            tso.next()
        assert len(writes) == 1
        tso.next()  # 11th timestamp needs a second batch
        assert len(writes) == 2

    def test_wal_records_are_high_water_marks(self):
        writes = []
        tso = TimestampOracle(reservation_batch=5, wal_append=writes.append)
        for _ in range(12):
            tso.next()
        assert writes == [5, 10, 15]

    def test_amortization_metric(self):
        tso = TimestampOracle(reservation_batch=1000)
        for _ in range(5000):
            tso.next()
        assert tso.wal_write_count == 5

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            TimestampOracle(reservation_batch=0)


class TestLease:
    def test_lease_returns_contiguous_block(self):
        tso = TimestampOracle()
        assert tso.lease(10) == (1, 10)
        assert tso.lease(5) == (11, 15)

    def test_lease_and_next_never_overlap(self):
        tso = TimestampOracle()
        seen = set()
        for _ in range(5):
            seen.add(tso.next())
            lo, hi = tso.lease(7)
            block = set(range(lo, hi + 1))
            assert not (block & seen)
            seen |= block
        assert len(seen) == 5 * 8

    def test_lease_is_reserved_before_return(self):
        # The durability contract: the WAL record covering the block is
        # written before lease() returns, so a leaseholder crash can
        # only leave gaps.
        writes = []
        tso = TimestampOracle(reservation_batch=10, wal_append=writes.append)
        lo, hi = tso.lease(8)
        assert writes and writes[-1] >= hi

    def test_lease_larger_than_reservation_batch_is_one_record(self):
        writes = []
        tso = TimestampOracle(reservation_batch=10, wal_append=writes.append)
        lo, hi = tso.lease(35)
        assert (lo, hi) == (1, 35)
        assert writes == [35]  # the mark jumps to cover the whole block

    def test_lease_within_existing_reservation_writes_nothing(self):
        writes = []
        tso = TimestampOracle(reservation_batch=100, wal_append=writes.append)
        tso.next()  # reserves through 100
        assert len(writes) == 1
        tso.lease(50)
        assert len(writes) == 1  # fully covered by the standing reservation

    def test_lease_counters(self):
        tso = TimestampOracle()
        tso.lease(10)
        tso.lease(3)
        assert tso.issued_count == 13
        assert tso.lease_count == 2

    def test_invalid_lease_size_rejected(self):
        tso = TimestampOracle()
        with pytest.raises(ValueError):
            tso.lease(0)

    def test_closed_oracle_rejects_lease(self):
        tso = TimestampOracle()
        tso.close()
        with pytest.raises(OracleClosed):
            tso.lease(4)


class TestReservedHighWater:
    def test_fresh_oracle_has_zero_mark(self):
        assert TimestampOracle().reserved_high_water == 0

    def test_mark_tracks_reservation_not_cursor(self):
        tso = TimestampOracle(reservation_batch=50)
        tso.next()  # cursor at 2, reservation through 50
        assert tso.peek() - 1 == 1
        assert tso.reserved_high_water == 50

    def test_mark_covers_leases(self):
        tso = TimestampOracle(reservation_batch=10)
        _, hi = tso.lease(32)
        assert tso.reserved_high_water >= hi


class TestRecovery:
    def test_recovery_resumes_above_high_water(self):
        writes = []
        tso = TimestampOracle(reservation_batch=10, wal_append=writes.append)
        for _ in range(3):
            tso.next()  # issued 1..3, reserved through 10
        recovered = TimestampOracle.recover(writes[-1])
        assert recovered.next() == 11

    def test_recovery_never_reissues(self):
        writes = []
        tso = TimestampOracle(reservation_batch=7, wal_append=writes.append)
        issued = [tso.next() for _ in range(20)]
        recovered = TimestampOracle.recover(writes[-1])
        fresh = [recovered.next() for _ in range(20)]
        assert not set(issued) & set(fresh)

    def test_recovery_rejects_negative_mark(self):
        with pytest.raises(RecoveryError):
            TimestampOracle.recover(-1)

    def test_recovered_oracle_keeps_allocating(self):
        recovered = TimestampOracle.recover(42, reservation_batch=3)
        values = [recovered.next() for _ in range(10)]
        assert values == list(range(43, 53))


class TestLifecycle:
    def test_closed_oracle_rejects_requests(self):
        tso = TimestampOracle()
        tso.close()
        with pytest.raises(OracleClosed):
            tso.next()

    def test_close_is_idempotent(self):
        tso = TimestampOracle()
        tso.close()
        tso.close()


class TestRecoverFromHighWater:
    """Regression pins for the ``recover_from`` re-seed bug: the TSO
    floor was ``peek() - 1`` (the in-memory cursor), which sits *below*
    the persisted reservation high-water mark mid-reservation — so a
    recovered oracle could reissue reserved (and possibly
    pre-crash-issued) timestamps.  The floor must be the mark."""

    def test_recover_from_resumes_above_own_reservation_mark(self):
        # A live oracle adopts a peer's WAL (the failover pattern).  Its
        # own TSO persisted a reservation through 100 but only issued 5
        # timestamps; the peer's WAL tops out far below the mark.
        # Re-seeding from the cursor would re-serve 6..100 — timestamps
        # the reservation promised away (a begin lease may hold them).
        reservations = []
        tso = TimestampOracle(reservation_batch=100, wal_append=reservations.append)
        oracle = make_oracle("si", timestamp_oracle=tso)
        issued = [oracle.begin() for _ in range(5)]
        assert reservations[-1] == 100

        peer_wal = BookKeeperWAL()
        # The peer's TSO is passed explicitly so its reservations do NOT
        # land in peer_wal: replay alone cannot cover the mark.
        peer = make_oracle("si", timestamp_oracle=TimestampOracle(), wal=peer_wal)
        assert peer.commit(
            CommitRequest(peer.begin(), write_set=frozenset({"x"}))
        ).committed
        peer_wal.flush()

        oracle.recover_from(peer_wal)
        assert oracle.begin() > 100
        assert oracle.begin() not in issued

    def test_crash_mid_reservation_never_reissues(self):
        # Crash with the reservation only partially served: the fresh
        # instance replays the ts-reserve record and resumes above it.
        wal = BookKeeperWAL()
        oracle = make_oracle("si", wal=wal)
        issued = {oracle.begin() for _ in range(7)}
        result = oracle.commit(
            CommitRequest(max(issued), write_set=frozenset({"a"}))
        )
        issued.add(result.commit_ts)
        wal.flush()

        fresh = make_oracle("si")
        fresh.recover_from(wal)
        fresh_mark = fresh.timestamp_oracle.peek()
        assert fresh_mark > oracle.timestamp_oracle.reserved_high_water
        for _ in range(50):
            assert fresh.begin() not in issued

    def test_crash_mid_lease_never_reissues(self):
        # A begin lease taken but only partially served counts exactly
        # like a partially-served reservation: recovery resumes above
        # the whole block, reissuing nothing the leaseholder might have
        # handed out pre-crash.
        wal = BookKeeperWAL()
        oracle = make_oracle("wsi", wal=wal)
        lo, hi = oracle.lease(32)
        served = {lo, lo + 1, lo + 2}  # the leaseholder got this far
        result = oracle.commit(
            CommitRequest(lo, write_set=frozenset({"k"}))
        )
        served.add(result.commit_ts)
        wal.flush()

        fresh = make_oracle("wsi")
        fresh.recover_from(wal)
        first = fresh.begin()
        assert first > hi  # strictly above the lease block
        assert first > result.commit_ts
        assert first not in served

    def test_recover_from_preserves_adopted_reservation_sink(self):
        # A WAL-less oracle whose TSO durability was adopted elsewhere
        # (a group-commit frontend's WAL, via attach_wal) must keep that
        # sink across a warm recover_from — severing it would leave
        # post-failover begin leases with no durable reservation at all.
        sink = []
        tso = TimestampOracle(reservation_batch=10)
        oracle = make_oracle("wsi", timestamp_oracle=tso)
        tso.attach_wal(sink.append)
        oracle.begin()
        assert sink  # the adopted sink is live

        oracle.recover_from(BookKeeperWAL())  # warm failover adoption
        assert oracle.timestamp_oracle.persists_reservations
        before = len(sink)
        _, hi = oracle.lease(32)
        assert len(sink) > before
        assert sink[-1] >= hi  # the new block is durable in the old sink

    def test_recover_from_on_warm_instance_is_monotonic(self):
        # recover_from must never move a warm instance's cursor backward
        # even when the WAL is empty of timestamp evidence.
        wal = BookKeeperWAL()
        oracle = make_oracle("si", timestamp_oracle=TimestampOracle())
        before = [oracle.begin() for _ in range(3)]
        oracle.recover_from(wal)
        assert oracle.begin() > max(before)
