"""Cahill SSI as a frontend-ready :class:`~repro.core.engine.CommitEngine`.

:class:`~repro.ssi.cahill.SerializableSIOracle` already implements the
whole :class:`~repro.core.engine.CommitEngine` surface (it is a
:class:`~repro.core.status_oracle.StatusOracle` subclass, and it
supplies its own bulk ``_decide_batch`` with the per-flush
rw-antidependency index).  What it cannot control from inside the class
are two *routing* decisions the serving stack makes from class
attributes — and both defaults are wrong for SSI behind a batched
frontend:

* **Read-only transactions with read sets must reach the engine.**
  The frontend's read-only fast path settles an empty-write-set request
  without consulting the backend.  Under SI/WSI that is exactly §4.1
  condition 3; under SSI a reader is an rw-edge *source* — its read set
  creates ``T → C`` edges that can complete a dangerous structure, it
  can itself be aborted (``ssi-pivot-neighbour``), and committing it
  consumes a commit timestamp and retains a footprint.  Setting
  ``naive_read_only = True`` tells the frontend to exempt only
  *empty-footprint* requests (Cahill's safe read-only optimization) and
  route every reader with a read set through ``decide_batch``.
* **Begins must be observed, so the begin-lease fast path is off.**
  The prune horizon is the oldest *active* start timestamp; a frontend
  serving begins out of a leased block would create transactions the
  oracle never saw, letting it prune footprints those transactions are
  still concurrent with.  Masking ``lease`` with ``None`` degrades the
  frontend to per-call :meth:`begin`, which registers every start.

``make_engine("ssi")`` builds this class, so the whole serving stack —
:class:`~repro.server.frontend.OracleFrontend`,
:class:`~repro.server.ha.ReplicatedFrontend`,
:class:`~repro.sim.frontend_sim.GroupCommitSim`, the bench harness —
runs Cahill SSI unchanged.
"""

from __future__ import annotations

from repro.ssi.cahill import SerializableSIOracle


class SSIEngine(SerializableSIOracle):
    """SerializableSIOracle with frontend routing set for correctness."""

    #: Begin leases would hide begins from the prune horizon; mask the
    #: inherited ``lease`` so the frontend degrades to per-call begins.
    lease = None

    def __init__(self, *args, **kwargs) -> None:
        # Readers with read sets are rw-edge sources: the frontend must
        # not fast-path them past the engine.  (Inside the oracle the
        # flag changes nothing — SSI's own commit path never consults
        # it — it only drives the frontend's routing decision.)
        kwargs.setdefault("naive_read_only", True)
        super().__init__(*args, **kwargs)
