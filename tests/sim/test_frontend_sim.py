"""Tests for the engine-driven group-commit simulation."""

import pytest

from repro.sim.frontend_sim import GroupCommitSim, sweep_group_commit


def small_sim(**kwargs):
    defaults = dict(
        level="wsi",
        batch_size=32,
        num_clients=2,
        outstanding_per_client=20,
        warmup=0.05,
        measure=0.15,
        seed=7,
    )
    defaults.update(kwargs)
    return GroupCommitSim(**defaults)


class TestEngineDrivenFlush:
    def test_heavy_load_flushes_by_count(self):
        result = small_sim().run()
        assert result.flushes_by_count > 0
        assert result.avg_batch == pytest.approx(32, abs=5)
        assert result.throughput_tps > 0

    def test_light_load_flushes_by_timer(self):
        # 2 outstanding transactions can never fill a 128-batch: only the
        # engine-scheduled 5 ms interval trigger can flush.
        result = small_sim(
            batch_size=128, num_clients=1, outstanding_per_client=2
        ).run()
        assert result.flushes_by_count == 0
        assert result.flushes_by_timer > 0
        # latency is dominated by the flush interval wait
        assert 2.0 < result.avg_latency_ms < 15.0

    def test_all_acks_wait_for_batch_durability(self):
        sim = small_sim()
        result = sim.run()
        # every measured latency includes at least the WAL write leg
        assert result.commits + result.aborts == len(sim._latencies)
        assert min(sim._latencies) > 0

    def test_deterministic_under_seed(self):
        a = small_sim(seed=42).run()
        b = small_sim(seed=42).run()
        assert a == b


class TestBatchingThroughput:
    def test_batching_beats_unbatched_in_simulated_time(self):
        results = sweep_group_commit(
            "wsi",
            batch_sizes=[1, 32],
            num_clients=4,
            outstanding_per_client=25,
            measure=0.25,
        )
        unbatched, batched = results
        assert batched.throughput_tps > 1.5 * unbatched.throughput_tps

    def test_decisions_match_oracle_counters(self):
        sim = small_sim(warmup=0.0)
        result = sim.run()
        stats = sim.oracle.stats
        # counters include the final (possibly unmeasured) in-flight
        # requests; measured outcomes can never exceed them
        assert result.commits <= stats.commits
        assert result.aborts <= stats.aborts
        assert sim.frontend.stats.avg_batch_size() > 1
