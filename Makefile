# Developer entry points.  PYTHONPATH=src is the repo's import contract
# (see ROADMAP.md "Tier-1 verify").

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test test-fast bench

## Full tier-1 suite: unit + property + integration + figure benchmarks.
test:
	$(PYTEST) -x -q

## Fast inner loop: skips the @slow tests (the ~90 s figure benchmarks
## in benchmarks/ and the heavy stress sweeps).
test-fast:
	$(PYTEST) -m "not slow" -q

## Figure benchmarks only, with their printed tables/charts.
bench:
	$(PYTEST) benchmarks -q -s
