"""Status-oracle stress simulation (Figure 5).

Reproduces §6.3's setup: "Each client allows for 100 outstanding
transactions with the execution time of zero, which means that the
clients keep the pipe on the status oracle full.  We exponentially
increase the number of clients from 1 to 26 and plot the average latency
vs. the average throughput."

The oracle's conflict detection runs in a critical section (capacity-1
resource); a commit is acknowledged only after its WAL batch is flushed
(1 KB / 5 ms group commit).  The *real* SI/WSI commit algorithms decide
conflicts — the simulation only supplies time.  Two effects the paper
reports emerge directly:

* closed-loop saturation: throughput caps at the critical-section rate
  while latency grows as outstanding/throughput (Little's law) — the
  hockey stick of Fig. 5;
* WSI saturates earlier than SI (92K vs 104K TPS) because its critical
  section touches twice the memory items (§6.3), which the latency
  model's per-row costs encode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.core.status_oracle import StatusOracle, make_oracle
from repro.sim.engine import Engine, Resource
from repro.sim.latency import LatencyModel, paper_latency_model
from repro.workload.generator import WorkloadGenerator, complex_workload

#: §6.3: each client keeps 100 transactions outstanding.
OUTSTANDING_PER_CLIENT = 100
#: Appendix A: ~32 records fill the 1 KB batch (32 B per record).
RECORDS_PER_BATCH = 32


@dataclass
class OracleBenchResult:
    """Measured behaviour of the oracle under one client count."""

    level: str
    num_clients: int
    throughput_tps: float
    avg_latency_ms: float
    p99_latency_ms: float
    abort_rate: float
    commits: int
    aborts: int
    oracle_utilization: float

    def as_row(self) -> str:
        return (
            f"{self.level:>4} clients={self.num_clients:>3} "
            f"tput={self.throughput_tps:>9.0f} TPS "
            f"lat={self.avg_latency_ms:>7.2f} ms "
            f"p99={self.p99_latency_ms:>7.2f} ms "
            f"aborts={100 * self.abort_rate:>5.2f} %"
        )


class OracleBenchSim:
    """Closed-loop clients hammering one status oracle."""

    def __init__(
        self,
        level: str = "wsi",
        num_clients: int = 1,
        outstanding_per_client: int = OUTSTANDING_PER_CLIENT,
        keyspace: int = 20_000_000,
        latency: Optional[LatencyModel] = None,
        seed: int = 42,
        warmup: float = 0.1,
        measure: float = 0.5,
    ) -> None:
        self.level = level
        self.num_clients = num_clients
        self.outstanding = outstanding_per_client
        self.latency = latency or paper_latency_model(seed=seed)
        self.warmup = warmup
        self.measure = measure
        self.engine = Engine()
        self.oracle: StatusOracle = make_oracle(level)
        self.critical_section = Resource(self.engine, capacity=1, name="oracle-cs")
        self.workload: WorkloadGenerator = complex_workload(
            distribution="uniform", keyspace=keyspace, seed=seed
        )
        # WAL group commit: pending ack events released at flush time.
        self._wal_pending: List = []
        self._wal_timer_armed = False
        # measurement
        self._latencies: List[float] = []
        self._commits = 0
        self._aborts = 0

    # ------------------------------------------------------------------
    # WAL group commit
    # ------------------------------------------------------------------
    def _wal_submit(self):
        """Returns an event that fires when this record becomes durable."""
        ack = self.engine.event()
        self._wal_pending.append(ack)
        if len(self._wal_pending) >= RECORDS_PER_BATCH:
            self._flush_wal()
        elif not self._wal_timer_armed:
            self._wal_timer_armed = True
            self.engine.call_in(self.latency.wal_flush_interval, self._timer_flush)
        return ack

    def _timer_flush(self) -> None:
        self._wal_timer_armed = False
        if self._wal_pending:
            self._flush_wal()

    def _flush_wal(self) -> None:
        batch, self._wal_pending = self._wal_pending, []
        write_time = self.latency.sample(self.latency.wal_write)

        def complete() -> None:
            for ack in batch:
                ack.succeed()

        self.engine.call_in(write_time, complete)

    # ------------------------------------------------------------------
    # client process
    # ------------------------------------------------------------------
    def _client_stream(self):
        """One outstanding-transaction slot: loop forever."""
        engine = self.engine
        lat = self.latency
        while True:
            started = engine.now
            # start timestamp (cheap, amortized persistence)
            yield engine.timeout(lat.sample_start_timestamp())
            start_ts = self.oracle.begin()
            spec = self.workload.next_transaction()
            request = spec.commit_request(start_ts)
            # critical section: the conflict check itself
            yield self.critical_section.acquire()
            if self.level == "si":
                service = lat.oracle_service_si(len(request.write_set))
            else:
                service = lat.oracle_service_wsi(
                    len(request.read_set), len(request.write_set)
                )
            yield engine.timeout(lat.sample(service))
            result = self.oracle.commit(request)
            self.critical_section.release()
            # durability: ack after the group-commit flush (commits and
            # aborts are both persisted, Appendix A)
            if request.write_set or request.read_set:
                yield self._wal_submit()
            if engine.now >= self.warmup:
                self._latencies.append(engine.now - started)
                if result.committed:
                    self._commits += 1
                else:
                    self._aborts += 1

    # ------------------------------------------------------------------
    def run(self) -> OracleBenchResult:
        for _ in range(self.num_clients * self.outstanding):
            self.engine.process(self._client_stream())
        horizon = self.warmup + self.measure
        self.engine.run(until=horizon)
        total = self._commits + self._aborts
        elapsed = self.measure
        lat_ms = [1000 * x for x in self._latencies]
        lat_ms.sort()
        avg = sum(lat_ms) / len(lat_ms) if lat_ms else 0.0
        p99 = lat_ms[int(0.99 * (len(lat_ms) - 1))] if lat_ms else 0.0
        return OracleBenchResult(
            level=self.level,
            num_clients=self.num_clients,
            throughput_tps=total / elapsed if elapsed > 0 else 0.0,
            avg_latency_ms=avg,
            p99_latency_ms=p99,
            abort_rate=self._aborts / total if total else 0.0,
            commits=self._commits,
            aborts=self._aborts,
            oracle_utilization=self.critical_section.utilization(),
        )


def sweep_clients(
    level: str,
    client_counts: Optional[List[int]] = None,
    seed: int = 42,
    measure: float = 0.4,
    keyspace: int = 20_000_000,
) -> List[OracleBenchResult]:
    """Figure 5's sweep: exponentially growing client counts, 1 -> 26."""
    counts = client_counts or [1, 2, 4, 8, 16, 26]
    results = []
    for n in counts:
        sim = OracleBenchSim(
            level=level,
            num_clients=n,
            seed=seed,
            measure=measure,
            keyspace=keyspace,
        )
        results.append(sim.run())
    return results
