"""Async client sessions over the group-commit frontend.

A :class:`ClientSession` is one logical client: it begins transactions
against the frontend, submits their commit/abort requests, and receives
:class:`~repro.server.frontend.CommitFuture` handles that resolve when
the enclosing batch flushes.  A session may keep any number of
transactions in flight — the paper's oracle stress setup runs 100
outstanding transactions per client (§6.3) — and tallies its own
commit/abort outcomes via future callbacks, which the stress tests
reconcile against the backend's :class:`~repro.core.status_oracle.OracleStats`.

A session may also hold its **own begin lease**
(``ClientSession(begin_lease=n)``): a private block of start timestamps
refilled through one :meth:`~repro.server.frontend.OracleFrontend.begin_many`
call per ``n`` begins.  This shards the frontend's single local lease
block for thread-per-session deployments — each session touches only its
own block on ``begin()``, instead of every session contending on the
frontend's one cursor pair — at the usual lease cost: the unserved
remainder of a dropped session becomes a permanent timestamp gap (never
reuse; the block was durably reserved), and a lease-served begin carries
the snapshot of its refill time.  The default (``begin_lease=1``) keeps
per-call semantics exactly.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional

from repro.core.errors import InvalidTransactionState, OracleClosed, Overloaded
from repro.core.status_oracle import CommitRequest
from repro.server.frontend import CommitFuture, OracleFrontend
from repro.server.retry import RetryPolicy

_session_ids = itertools.count(1)


class ClientSession:
    """One logical client multiplexed onto an :class:`OracleFrontend`.

    Args:
        frontend: the serving tier to multiplex onto (an
            :class:`OracleFrontend` or anything duck-typing its client
            surface, e.g. :class:`~repro.server.ha.ReplicatedFrontend`).
        name: label for diagnostics; auto-generated when omitted.
        begin_lease: private begin-lease block size (module docstring).
        retry_policy: how to respond when admission control sheds a
            submit with :class:`~repro.core.errors.Overloaded` — back
            off per the policy and resubmit, re-raising once the policy
            is spent.  ``None`` (default) propagates the rejection
            immediately.
        sleep: callable receiving each backoff delay in seconds; the
            deployment decides what a delay means (advance the manual
            clock and tick the frontend so it drains, or time out in
            the simulator).  Without it retries are immediate.
    """

    def __init__(
        self,
        frontend: OracleFrontend,
        name: Optional[str] = None,
        begin_lease: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        sleep: Optional[callable] = None,
    ) -> None:
        if begin_lease < 1:
            raise ValueError("begin_lease must be >= 1")
        self._frontend = frontend
        self._retry_policy = retry_policy
        self._sleep = sleep
        self.name = name or f"session-{next(_session_ids)}"
        self._open: set = set()
        self._last_begun: Optional[int] = None
        # Per-session begin lease: a reversed block served oldest-first
        # from the tail, refilled via one frontend.begin_many(n) per n
        # begins (the module docstring covers the trade-offs).
        self._begin_lease = begin_lease
        self._lease: List[int] = []
        # per-session outcome tallies, updated by future callbacks
        self.submitted = 0
        self.commits = 0
        self.aborts = 0
        self.read_only_commits = 0
        self.errors = 0
        #: Overloaded rejections absorbed by the retry policy (each one
        #: cost a backoff; rejections that exhausted the policy re-raise
        #: and are not counted here).
        self.overload_retries = 0
        #: Injected-time seconds this session spent backing off.
        self.backoff_seconds = 0.0

    # ------------------------------------------------------------------
    # transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self) -> int:
        """Open a transaction; multiple may be in flight concurrently.

        With ``begin_lease=n`` the common case is one ``list.pop`` off
        the session's private block; one ``frontend.begin_many(n)``
        refill pays for the next ``n`` begins.
        """
        # A closed frontend must refuse begins even while this session
        # still holds leased timestamps (the frontend empties its *own*
        # lease on close for exactly this guarantee); the remainder
        # stays droppable via release_lease.
        if self._frontend.closed:
            raise OracleClosed(f"{self.name}: oracle frontend is closed")
        lease = self._lease
        if lease:
            start_ts = lease.pop()
        elif self._begin_lease == 1:
            start_ts = self._frontend.begin()
        else:
            block = self._frontend.begin_many(self._begin_lease)
            start_ts = block[0]
            block.reverse()
            block.pop()
            self._lease = block
        self._open.add(start_ts)
        self._last_begun = start_ts
        return start_ts

    def begin_many(self, n: int) -> List[int]:
        """Open ``n`` transactions in one frontend call.

        The batched begin surface for clients that keep many
        transactions in flight (the paper's stress setup runs 100 per
        client, §6.3): one ``frontend.begin_many`` round-trip instead of
        ``n`` begins.  All ``n`` are open concurrently; the last one is
        the default target for :meth:`commit`/:meth:`abort`.  The
        session lease is drained first and the shortfall leased exactly
        (no over-refill), mirroring the frontend's own ``begin_many``.
        """
        if n < 1:
            raise ValueError("begin_many needs n >= 1")
        if self._frontend.closed:
            raise OracleClosed(f"{self.name}: oracle frontend is closed")
        lease = self._lease
        starts = [lease.pop() for _ in range(min(n, len(lease)))]
        short = n - len(starts)
        if short:
            starts.extend(self._frontend.begin_many(short))
        self._open.update(starts)
        self._last_begun = starts[-1]
        return starts

    def release_lease(self) -> int:
        """Drop the unserved remainder of the session's begin lease.

        Returns how many timestamps were dropped.  They become permanent
        gaps, never reuse — the block was durably reserved before it was
        served (the same crash semantics as the frontend's own lease).
        Call this when retiring a session whose frontend lives on.
        """
        dropped = len(self._lease)
        self._lease = []
        return dropped

    @property
    def lease_remaining(self) -> int:
        """Unserved timestamps left in the session's private lease."""
        return len(self._lease)

    def commit(
        self,
        write_set: Iterable = (),
        read_set: Iterable = (),
        start_ts: Optional[int] = None,
    ) -> CommitFuture:
        """Submit the commit request of an open transaction.

        Defaults to the most recently begun transaction; pass ``start_ts``
        to pick one of several in-flight transactions.
        """
        ts = self._resolve_open(start_ts)
        request = CommitRequest(
            ts, write_set=frozenset(write_set), read_set=frozenset(read_set)
        )
        future = self._submit(lambda: self._frontend.submit_commit(request))
        self._forget_open(ts)
        self.submitted += 1
        future.add_done_callback(self._tally)
        return future

    def abort(self, start_ts: Optional[int] = None) -> CommitFuture:
        """Submit a client-initiated abort for an open transaction."""
        ts = self._resolve_open(start_ts)
        future = self._submit(lambda: self._frontend.submit_abort(ts))
        self._forget_open(ts)
        self.submitted += 1
        future.add_done_callback(self._tally)
        return future

    def _submit(self, submit) -> CommitFuture:
        """Run one submit under the session's overload-retry policy.

        ``Overloaded`` is the only retryable error: the request was
        *shed*, not decided, so resubmitting cannot double-decide it.
        The transaction stays open throughout (``_forget_open`` runs
        only after a submit is accepted), so a rejection that exhausts
        the policy leaves it retryable elsewhere.
        """
        policy = self._retry_policy
        if policy is None:
            return submit()
        attempt = 1
        while True:
            try:
                return submit()
            except Overloaded:
                if attempt >= policy.max_attempts:
                    raise
                delay = policy.delay_for(attempt)
                self.overload_retries += 1
                self.backoff_seconds += delay
                if self._sleep is not None:
                    self._sleep(delay)
                attempt += 1

    def _resolve_open(self, start_ts: Optional[int]) -> int:
        """Validate (without removing) the transaction to act on."""
        ts = start_ts if start_ts is not None else self._last_begun
        if ts is None or ts not in self._open:
            raise InvalidTransactionState(
                f"{self.name}: transaction {ts} is not open in this session"
            )
        return ts

    def _forget_open(self, ts: int) -> None:
        """Close out a transaction *after* its request was accepted.

        Deliberately separate from :meth:`_resolve_open`: if ``submit_*``
        raises (e.g. the frontend closed), the transaction must stay
        open in the session rather than vanish untracked — the caller
        can retry or abort it elsewhere.
        """
        self._open.discard(ts)
        if ts == self._last_begun:
            self._last_begun = None

    def _tally(self, future: CommitFuture) -> None:
        outcome = future.outcome()
        if outcome == "error":
            # a decision that raised is neither a commit nor an abort —
            # the backend recorded nothing for it
            self.errors += 1
        elif outcome == "aborted":
            self.aborts += 1
        else:
            self.commits += 1
            if outcome == "read-only":
                self.read_only_commits += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def open_count(self) -> int:
        return len(self._open)

    @property
    def decided(self) -> int:
        return self.commits + self.aborts + self.errors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClientSession({self.name!r}, open={len(self._open)}, "
            f"commits={self.commits}, aborts={self.aborts})"
        )
