"""E8 — the §3-§4 history matrix: H1-H7 classification.

Regenerates the paper's claims about which histories are serializable
and which each isolation level admits — the analytical backbone of the
paper, as a table.
"""

import pytest

from repro.bench import format_table
from repro.history import ALL_HISTORIES, PAPER_CLAIMS, classification


def classify_all():
    return {name: classification(h) for name, h in ALL_HISTORIES.items()}


@pytest.mark.figure("histories")
def test_e8_history_admissibility_matrix(benchmark, print_header):
    results = benchmark.pedantic(classify_all, rounds=1, iterations=1)
    print_header("E8 — Histories H1-H7: serializability & admissibility matrix")
    rows = []
    for name in sorted(ALL_HISTORIES):
        got = results[name]
        want = PAPER_CLAIMS[name]
        rows.append(
            (
                name,
                str(ALL_HISTORIES[name]),
                "yes" if got["serializable"] else "no",
                "allow" if got["si"] else "abort",
                "allow" if got["wsi"] else "abort",
                "OK" if got == want else "MISMATCH",
            )
        )
    print(
        format_table(
            ["id", "history", "serializable", "SI", "WSI", "vs paper"],
            rows,
        )
    )
    assert all(results[name] == PAPER_CLAIMS[name] for name in ALL_HISTORIES)
