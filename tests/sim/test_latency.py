"""Unit tests for the latency model (§6.2 calibration)."""

import pytest

from repro.sim.latency import MS, US, LatencyModel, paper_latency_model


class TestPaperConstants:
    def test_microbenchmark_values(self):
        model = paper_latency_model()
        assert model.start_timestamp == pytest.approx(0.17 * MS)
        assert model.read_cold == pytest.approx(38.8 * MS)
        assert model.write == pytest.approx(1.13 * MS)
        assert model.commit_wal == pytest.approx(4.1 * MS)

    def test_wal_batching_constants(self):
        model = paper_latency_model()
        assert model.wal_flush_interval == pytest.approx(5 * MS)


class TestSampling:
    def test_deterministic_when_jitter_zero(self):
        model = LatencyModel(jitter=0.0, seed=1)
        assert model.sample(0.01) == 0.01
        assert model.sample(0.01) == 0.01

    def test_zero_mean_is_zero(self):
        model = LatencyModel(seed=1)
        assert model.sample(0.0) == 0.0

    def test_jittered_mean_converges(self):
        model = LatencyModel(jitter=1.0, seed=2)
        samples = [model.sample(0.010) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(0.010, rel=0.05)

    def test_samples_nonnegative(self):
        model = LatencyModel(jitter=0.5, seed=3)
        assert all(model.sample(0.001) >= 0 for _ in range(1000))

    def test_seeded_reproducibility(self):
        a = LatencyModel(seed=7)
        b = LatencyModel(seed=7)
        assert [a.sample(1) for _ in range(10)] == [b.sample(1) for _ in range(10)]


class TestDerivedSamplers:
    def test_read_hot_vs_cold(self):
        model = LatencyModel(jitter=0.0)
        assert model.sample_read(cache_hit=True) == model.read_hot
        assert model.sample_read(cache_hit=False) == model.read_cold
        assert model.read_hot < model.read_cold

    def test_oracle_service_wsi_exceeds_si(self):
        # §6.3: WSI's critical section loads twice the memory items.
        model = LatencyModel()
        rows = 5
        si = model.oracle_service_si(rows)
        wsi = model.oracle_service_wsi(rows, rows)
        assert wsi > si

    def test_oracle_service_scales_with_rows(self):
        model = LatencyModel()
        assert model.oracle_service_si(10) > model.oracle_service_si(1)
        assert model.oracle_service_wsi(10, 10) > model.oracle_service_wsi(1, 1)

    def test_fig5_saturation_rates(self):
        # The calibrated service times must put SI saturation near 104K
        # TPS and WSI near 92K at the complex workload's ~5r/5w rows.
        model = LatencyModel()
        si_rate = 1.0 / model.oracle_service_si(5)
        wsi_rate = 1.0 / model.oracle_service_wsi(5, 5)
        assert 95_000 < si_rate < 115_000
        assert 85_000 < wsi_rate < 100_000
