"""Benchmark support: execution harness and reporting helpers.

Public surface:

* :func:`run_interleaved` / :func:`run_sequential` — execute workload
  specs against a real transaction manager with logical concurrency.
* :class:`HarnessResult` — commit/abort accounting.
* :func:`format_table`, :class:`PaperAnchor`, shape predicates
  (:func:`saturates`, :func:`knee_index`, :func:`within_factor`) — used
  by every figure benchmark.
"""

from repro.bench.frontend_bench import (
    FrontendBenchResult,
    bench_batched,
    bench_partition_aligned,
    bench_unbatched,
    median_speedup,
    paired_decide_speedups,
    paired_speedups,
    profile_frontend,
    speedup,
    sweep_batch_partitions,
    sweep_batch_sizes,
)
from repro.bench.harness import HarnessResult, run_interleaved, run_sequential
from repro.bench.plots import AsciiChart, abort_rate_chart, latency_throughput_chart
from repro.bench.reporting import (
    PaperAnchor,
    format_table,
    knee_index,
    monotonic_increasing,
    saturates,
    within_factor,
)

__all__ = [
    "run_interleaved",
    "run_sequential",
    "HarnessResult",
    "FrontendBenchResult",
    "bench_unbatched",
    "bench_batched",
    "paired_speedups",
    "paired_decide_speedups",
    "median_speedup",
    "speedup",
    "sweep_batch_sizes",
    "sweep_batch_partitions",
    "bench_partition_aligned",
    "profile_frontend",
    "AsciiChart",
    "latency_throughput_chart",
    "abort_rate_chart",
    "PaperAnchor",
    "format_table",
    "saturates",
    "knee_index",
    "monotonic_increasing",
    "within_factor",
]
