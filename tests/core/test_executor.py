"""The pluggable partition executor: ordering, overlap, lifecycle.

The executor is performance policy, never semantics (the hypothesis
suite in ``tests/server`` pins parallel ≡ serial decisions exactly);
these tests pin the executor contract itself — results in task order,
first-task-order error propagation, real thread overlap, lazy pool
creation, and the no-dangling-threads lifecycle rules (an owned executor
is shut down by ``PartitionedOracle.close()`` and propagated through
``OracleFrontend.close()``; a passed-in instance stays the caller's).
"""

import threading
import time

import pytest

from repro.core.executor import (
    EXECUTOR_ENV_VAR,
    ParallelExecutor,
    PartitionExecutor,
    SerialExecutor,
    make_executor,
)
from repro.core.partitioned import PartitionedOracle
from repro.core.status_oracle import CommitRequest
from repro.server import OracleFrontend


class TestSerialExecutor:
    def test_runs_in_order_and_returns_results(self):
        order = []

        def task(i):
            return lambda: (order.append(i), i)[1]

        results = SerialExecutor().run([task(i) for i in range(5)])
        assert results == [0, 1, 2, 3, 4]
        assert order == [0, 1, 2, 3, 4]

    def test_error_propagates_and_stops(self):
        ran = []

        def ok(i):
            return lambda: ran.append(i)

        def boom():
            raise RuntimeError("round failed")

        with pytest.raises(RuntimeError, match="round failed"):
            SerialExecutor().run([ok(0), boom, ok(2)])
        assert ran == [0]  # serial stops at the failing round


class TestParallelExecutor:
    def test_results_in_task_order(self):
        executor = ParallelExecutor(max_workers=4)
        try:
            # Later tasks finish first (reverse sleeps); results must
            # still come back in task order.
            def task(i):
                def run():
                    time.sleep(0.002 * (4 - i))
                    return i

                return run

            assert executor.run([task(i) for i in range(4)]) == [0, 1, 2, 3]
        finally:
            executor.shutdown()

    def test_rounds_really_overlap(self):
        # A barrier only releases if both tasks run concurrently; a
        # serial executor would deadlock here (hence the timeout guard).
        executor = ParallelExecutor(max_workers=2)
        barrier = threading.Barrier(2, timeout=5)
        try:
            assert executor.run([barrier.wait, barrier.wait]) in (
                [0, 1],
                [1, 0],
            )
        finally:
            executor.shutdown()

    def test_first_task_order_error_wins(self):
        executor = ParallelExecutor(max_workers=4)

        def fail(msg, delay):
            def run():
                time.sleep(delay)
                raise ValueError(msg)

            return run

        try:
            # The later-positioned task fails *first* in time; the
            # task-order first failure must still be the one raised.
            with pytest.raises(ValueError, match="first-in-order"):
                executor.run(
                    [fail("first-in-order", 0.01), fail("first-in-time", 0.0)]
                )
        finally:
            executor.shutdown()

    def test_pool_is_lazy_and_single_task_runs_inline(self):
        executor = ParallelExecutor()
        assert not executor.pool_started
        assert executor.run([lambda: 7]) == [7]
        assert not executor.pool_started  # one round: no handoff
        assert executor.run([lambda: 1, lambda: 2]) == [1, 2]
        assert executor.pool_started
        executor.shutdown()
        assert not executor.pool_started

    def test_shutdown_is_idempotent_and_blocks_reuse(self):
        executor = ParallelExecutor()
        executor.run([lambda: 1, lambda: 2])
        executor.shutdown()
        executor.shutdown()
        with pytest.raises(RuntimeError):
            executor.run([lambda: 1, lambda: 2])
        # fail fast for single-round (and empty) phases too — otherwise
        # misuse only surfaces on flushes that touch 2+ partitions
        with pytest.raises(RuntimeError):
            executor.run([lambda: 1])
        with pytest.raises(RuntimeError):
            executor.run([])


class TestMakeExecutor:
    def test_specs(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("parallel"), ParallelExecutor)
        instance = SerialExecutor()
        assert make_executor(instance) is instance
        with pytest.raises(ValueError, match="unknown partition executor"):
            make_executor("fibers")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        assert isinstance(make_executor(None), SerialExecutor)
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "parallel")
        assert isinstance(make_executor(None), ParallelExecutor)


def drive_one_batch(oracle):
    requests = [
        CommitRequest(oracle.begin(), write_set=frozenset({i, i + 1}))
        for i in range(6)
    ]
    return oracle.decide_batch(requests)


class TestExecutorLifecycle:
    def test_owned_executor_shut_down_on_close(self):
        oracle = PartitionedOracle(
            level="si", num_partitions=4, executor="parallel"
        )
        drive_one_batch(oracle)
        parallel = oracle.executor
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.pool_started
        oracle.close()
        assert not parallel.pool_started  # workers joined
        # the swapped-in serial executor keeps shutdown idempotent
        assert isinstance(oracle.executor, SerialExecutor)

    def test_shutdown_executor_keeps_oracle_usable(self):
        oracle = PartitionedOracle(
            level="si", num_partitions=4, executor="parallel"
        )
        before = drive_one_batch(oracle)
        oracle.shutdown_executor()
        after = drive_one_batch(oracle)
        assert [r.committed for r in before] == [r.committed for r in after]
        oracle.close()

    def test_passed_in_instance_stays_callers(self):
        executor = ParallelExecutor(max_workers=2)
        oracle = PartitionedOracle(
            level="si", num_partitions=4, executor=executor
        )
        drive_one_batch(oracle)
        oracle.close()
        # the caller's executor was not shut down
        assert executor.run([lambda: 1, lambda: 2]) == [1, 2]
        executor.shutdown()

    def test_frontend_close_propagates_shutdown(self):
        oracle = PartitionedOracle(
            level="si", num_partitions=4, executor="parallel"
        )
        frontend = OracleFrontend(oracle, max_batch=4)
        for i in range(8):
            frontend.submit_commit_nowait(
                CommitRequest(frontend.begin(), write_set=frozenset({i, i + 1}))
            )
        frontend.flush()
        parallel = oracle.executor
        assert parallel.pool_started
        frontend.close()
        assert not parallel.pool_started
        # the backend oracle stays open (the frontend is a layer, not
        # the owner) and keeps deciding — now over serial rounds
        assert drive_one_batch(oracle)
        oracle.close()

    def test_env_default_builds_owned_executor(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "parallel")
        oracle = PartitionedOracle(level="wsi", num_partitions=3)
        assert isinstance(oracle.executor, ParallelExecutor)
        drive_one_batch(oracle)
        oracle.close()
        assert isinstance(oracle.executor, SerialExecutor)


class TestRoundOccupancyStats:
    def test_flush_reports_occupancy_and_phase_walls(self):
        oracle = PartitionedOracle(level="si", num_partitions=4)
        frontend = OracleFrontend(oracle, max_batch=8)
        batches = []
        frontend.on_flush(batches.append)
        # every footprint spans two partitions -> both phases touch
        # several partitions, but no partition drives more than 2 rounds
        for i in range(8):
            frontend.submit_commit_nowait(
                CommitRequest(frontend.begin(), write_set=frozenset({i, i + 1}))
            )
        frontend.flush()
        (cell,) = batches
        rounds = cell.protocol_rounds
        assert rounds is not None
        assert 1 <= rounds.max_partition_rounds <= 2
        assert rounds.validate_wall >= 0.0
        assert rounds.install_wall >= 0.0
        stats = frontend.stats
        assert stats.max_partition_rounds_seen == rounds.max_partition_rounds
        assert stats.partition_validate_seconds == rounds.validate_wall
        assert stats.partition_install_seconds == rounds.install_wall
        frontend.close()

    def test_injected_round_latency_shows_in_phase_walls(self):
        delay = 0.002
        # pinned serial: under a parallel executor (e.g. the make-check
        # REPRO_EXECUTOR=parallel runs) rounds overlap and the phase
        # wall legitimately undercuts the per-round sum
        oracle = PartitionedOracle(
            level="si", num_partitions=2, round_latency=delay,
            executor="serial",
        )
        results = drive_one_batch(oracle)
        assert len(results) == 6  # overlapping footprints: some abort
        rounds = oracle.last_flush_rounds
        # serial executor: every round sleeps the injected latency
        assert rounds.validate_wall >= delay * rounds.check_rounds
        assert rounds.install_wall >= delay * rounds.install_rounds
        oracle.close()
