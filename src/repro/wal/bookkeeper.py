"""Batching write-ahead log in front of the replicated ledgers.

Appendix A gives the exact batching policy the status oracle uses:

* BookKeeper sustains ~20,000 writes/s of 1028-byte entries;
* multiple oracle records are batched into one ledger entry;
* a batch is flushed when **1 KB of data has accumulated** or **5 ms have
  elapsed since the last trigger**, whichever comes first;
* with a batching factor of 10 this persists the commit records of
  ~200K TPS.

:class:`BookKeeperWAL` reproduces that policy.  Time is injected via a
clock callable so the discrete-event simulator (and the unit tests) can
drive the 5 ms trigger deterministically; in standalone use the default
clock is a simple manual counter advanced by :meth:`advance_time`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.analysis.racecheck import active_checker, make_lock
from repro.wal.ledger import Ledger, LedgerManager

# Appendix A constants.
DEFAULT_BATCH_SIZE_BYTES = 1024  # flush after 1 KB accumulated
DEFAULT_BATCH_TIMEOUT = 0.005  # or 5 ms since last trigger
ENTRY_SIZE_BYTES = 1028  # BookKeeper's benchmarked entry size
BOOKKEEPER_MAX_WRITES_PER_SEC = 20_000

#: Record kind written by the group-commit frontend: one record carries the
#: decisions of a whole commit batch (see :mod:`repro.server`).  Payload is
#: ``(commits, aborts)`` where ``commits`` is a sequence of
#: ``(start_ts, commit_ts, rows)`` triples and ``aborts`` a sequence of
#: aborted start timestamps.
GROUP_COMMIT_RECORD = "group-commit"

#: Appendix A sizing: each decision in a group record costs the same 32
#: bytes a standalone commit/abort record would.
GROUP_COMMIT_BYTES_PER_DECISION = 32


def group_commit_payload(commits, aborts) -> Tuple[Tuple, Tuple]:
    """Normalize a batch's decisions into the group-commit payload shape."""
    return (
        tuple((start_ts, commit_ts, tuple(rows)) for start_ts, commit_ts, rows in commits),
        tuple(aborts),
    )


@dataclass
class WALRecord:
    """One logical record: a commit/abort/reservation from the oracle."""

    kind: str  # "commit" | "abort" | "ts-reserve" | "group-commit" | "snapshot"
    payload: Any
    size: int


class BookKeeperWAL:
    """Write-ahead log with size- and time-triggered batching.

    Args:
        ledger_manager: bookie ensemble to persist into (a fresh
            3-bookie/2-quorum ensemble by default).
        batch_bytes: size trigger (paper: 1 KB).
        batch_timeout: time trigger in seconds (paper: 5 ms).
        clock: callable returning current time in seconds.  Defaults to an
            internal manual clock (see :meth:`advance_time`); pass the
            simulator's ``now`` for integrated runs.
        sync_callback: invoked with the list of records in each flushed
            batch *after* the batch is durable — this is how the oracle
            learns its commit acks can be released.
    """

    def __init__(
        self,
        ledger_manager: Optional[LedgerManager] = None,
        batch_bytes: int = DEFAULT_BATCH_SIZE_BYTES,
        batch_timeout: float = DEFAULT_BATCH_TIMEOUT,
        clock: Optional[Callable[[], float]] = None,
        sync_callback: Optional[Callable[[List[WALRecord]], None]] = None,
    ) -> None:
        if batch_bytes < 1:
            raise ValueError("batch_bytes must be >= 1")
        if batch_timeout <= 0:
            raise ValueError("batch_timeout must be > 0")
        self._manager = ledger_manager or LedgerManager()
        self._ledger: Ledger = self._manager.create_ledger()
        self._batch_bytes = batch_bytes
        self._batch_timeout = batch_timeout
        self._manual_time = 0.0
        self._clock = clock or (lambda: self._manual_time)
        self._sync_listeners: List[Callable[[List[WALRecord]], None]] = []
        if sync_callback is not None:
            self._sync_listeners.append(sync_callback)

        # The batch buffer is the WAL's one piece of mutable hot state;
        # every mutation happens under _wal_lock (ledger replication and
        # sync listeners run *outside* it — append() may flush inline on
        # the size trigger, so holding the lock across the ledger write
        # would self-deadlock and order the WAL lock under every
        # listener's own locks).
        self._wal_lock = make_lock("wal")
        self._rc = active_checker()
        if self._rc is not None:
            self._rc.register_state("wal.pending", "wal")
        self._pending: List[WALRecord] = []  # guarded-by: _wal_lock
        self._pending_bytes = 0
        self._last_trigger = self._clock()

        self.flush_count = 0
        self.record_count = 0
        self.flushed_record_count = 0
        self._batch_sizes: List[int] = []

    # ------------------------------------------------------------------
    # append path
    # ------------------------------------------------------------------
    def append(self, kind: str, payload: Any, size: int = 32) -> bool:
        """Queue a record; flush if the size trigger fires.

        Returns True if this append caused a flush (the record is durable
        on return), False if it is still buffered awaiting a trigger.
        """
        with self._wal_lock:
            if self._rc is not None:
                self._rc.access("wal.pending")
            self._pending.append(WALRecord(kind, payload, size))
            self._pending_bytes += size
            self.record_count += 1
            should_flush = self._pending_bytes >= self._batch_bytes
        if should_flush:
            self.flush()
            return True
        return False

    def append_group_commit(self, commits, aborts) -> bool:
        """Queue one group-commit record covering a whole decision batch.

        ``commits`` is an iterable of ``(start_ts, commit_ts, rows)``
        triples, ``aborts`` an iterable of aborted start timestamps.
        """
        return self.append_group_record(group_commit_payload(commits, aborts))

    def append_decisions(self, commits, aborts) -> Tuple[Tuple, Tuple]:
        """Queue a batch-decide engine's decision lists as one record.

        The hot-path entry point used by
        :meth:`repro.core.status_oracle.StatusOracle.decide_batch` and the
        group-commit frontend: ``commits`` / ``aborts`` are the engine's
        already-ordered payload lists (triples stay as built — the rows
        element is the request's own frozenset, no re-tupling per
        request).  They are frozen into the final payload exactly once,
        here.  Returns the normalized payload that was written, so the
        caller can expose it (e.g. ``FlushedBatch.committed_payload``).
        """
        payload = (tuple(commits), tuple(aborts))
        self.append_group_record(payload)
        return payload

    def append_group_record(self, payload: Tuple[Tuple, Tuple]) -> bool:
        """Queue an already-normalized group-commit payload.

        This is the single authority for the record's size: 32 B per
        decision (Appendix A), so a 32-decision batch fills exactly one
        1 KB ledger entry.
        """
        commits, aborts = payload
        return self.append(
            GROUP_COMMIT_RECORD,
            payload,
            size=(len(commits) + len(aborts)) * GROUP_COMMIT_BYTES_PER_DECISION,
        )

    def tick(self) -> bool:
        """Fire the time trigger if ``batch_timeout`` has elapsed.

        The caller (simulator loop or oracle service loop) invokes this
        periodically.  Returns True if a flush happened.
        """
        if not self._pending:
            self._last_trigger = self._clock()
            return False
        if self._clock() - self._last_trigger >= self._batch_timeout:
            self.flush()
            return True
        return False

    def flush(self) -> int:
        """Force the pending batch out; returns number of records flushed."""
        with self._wal_lock:
            if self._rc is not None:
                self._rc.access("wal.pending")
            if not self._pending:
                self._last_trigger = self._clock()
                return 0
            batch = self._pending
            self._pending = []
            self._pending_bytes = 0
            self._last_trigger = self._clock()
        self._ledger.append(batch, size=sum(r.size for r in batch))
        self.flush_count += 1
        self.flushed_record_count += len(batch)
        self._batch_sizes.append(len(batch))
        for listener in self._sync_listeners:
            listener(batch)
        return len(batch)

    def on_sync(self, listener: Callable[[List[WALRecord]], None]) -> None:
        """Register an additional durability listener.

        Every listener is invoked with the record batch *after* it is
        replicated to a ledger quorum — the point at which commit acks
        may be released.  The constructor's ``sync_callback`` is the
        first listener; a replicated serving tier registers another one
        to learn which in-flight requests became durable (and therefore
        must never be retried on a failover).
        """
        self._sync_listeners.append(listener)

    def drop_pending(self) -> int:
        """Discard the unflushed batch buffer (host crash).

        The batch buffer lives in the oracle host's memory; when that
        host dies, records that never reached a ledger are simply gone —
        they were never acknowledged, so losing them is correct.
        Returns the number of records dropped.
        """
        with self._wal_lock:
            if self._rc is not None:
                self._rc.access("wal.pending")
            dropped = len(self._pending)
            self._pending = []
            self._pending_bytes = 0
            self._last_trigger = self._clock()
        return dropped

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def replay(self) -> Iterator[WALRecord]:
        """Yield every durable record in order (crash recovery).

        Buffered-but-unflushed records are *not* replayed: they were never
        acknowledged, matching the durability contract.
        """
        for batch in self._ledger.replay():
            yield from batch

    def roll_ledger(self) -> None:
        """Close the current ledger and open a new one (log rotation)."""
        self.flush()
        self._ledger.close()
        self._ledger = self._manager.create_ledger()

    # ------------------------------------------------------------------
    # clock / metrics
    # ------------------------------------------------------------------
    def advance_time(self, dt: float) -> None:
        """Advance the internal manual clock (standalone mode only)."""
        self._manual_time += dt

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def ledger_manager(self) -> LedgerManager:
        return self._manager

    def batching_factor(self) -> float:
        """Average records per flushed batch (paper reports ~10)."""
        if not self._batch_sizes:
            return 0.0
        return sum(self._batch_sizes) / len(self._batch_sizes)

    def effective_tps_capacity(self) -> float:
        """Commit records/s this WAL can persist at the observed batching.

        BookKeeper does ~20K entry-writes/s; batching multiplies that by
        the records-per-batch factor (paper: factor 10 -> 200K TPS).
        """
        factor = self.batching_factor() or 1.0
        return BOOKKEEPER_MAX_WRITES_PER_SEC * factor


class WALTail:
    """An incremental cursor over a WAL's durable records.

    ``replay()`` always walks the full log — the right tool for a cold
    restart, the wrong one for a *warm standby* that wants to track the
    leader's writes as they happen.  A tail remembers how far into each
    ledger it has read and :meth:`poll` yields only the records that
    became durable since the last poll, across ledger rolls, in append
    order.  Appendix A's "another fresh instance ... could still
    recreate the memory state from the write-ahead log" then costs
    O(delta) at takeover instead of a full replay: the standby applies
    records continuously and only the un-polled suffix remains when the
    leader dies.

    Buffered-but-unflushed records are invisible to the tail, exactly as
    they are to ``replay()`` — they were never acknowledged, and a
    standby must never apply state the clients were never promised.
    """

    def __init__(self, wal: BookKeeperWAL) -> None:
        self._wal = wal
        # ledger_id -> how many acked entries we have consumed.
        self._consumed: dict = {}
        self.records_seen = 0
        self.polls = 0

    def poll(self) -> List[WALRecord]:
        """Return every record that became durable since the last poll."""
        self.polls += 1
        out: List[WALRecord] = []
        for ledger in sorted(
            self._wal.ledger_manager.ledgers(), key=lambda l: l.ledger_id
        ):
            done = self._consumed.get(ledger.ledger_id, 0)
            total = ledger.entry_count
            if done >= total:
                continue
            for entry_id in ledger._acked[done:total]:
                out.extend(ledger.read(entry_id).payload)
            self._consumed[ledger.ledger_id] = total
        self.records_seen += len(out)
        return out

    @property
    def lag(self) -> int:
        """Durable entries not yet polled (0 = fully caught up)."""
        return sum(
            ledger.entry_count - self._consumed.get(ledger.ledger_id, 0)
            for ledger in self._wal.ledger_manager.ledgers()
        )
