"""YCSB-style transactional workloads (paper §6.1).

Public surface:

* :class:`WorkloadGenerator`, :func:`complex_workload`,
  :func:`mixed_workload` — transaction-spec streams.
* :class:`TPCCWorkload` / :func:`tpcc` — TPC-C-shaped structured
  multi-row transactions (hot headers + cold detail rows).
* :class:`TransactionSpec` / :class:`OperationSpec` — pure descriptions.
* key distributions: :class:`UniformDistribution`,
  :class:`ZipfianDistribution` (+ scrambled), :class:`LatestDistribution`,
  :func:`make_distribution`.
"""

from repro.workload.distributions import (
    ZIPFIAN_THETA,
    KeyDistribution,
    LatestDistribution,
    ScrambledZipfianDistribution,
    UniformDistribution,
    ZipfianDistribution,
    fnv1a_64,
    make_distribution,
)
from repro.workload.ycsb import CORE_WORKLOADS, YCSBMix, YCSBWorkload, ycsb
from repro.workload.generator import (
    DEFAULT_KEYSPACE,
    DEFAULT_MAX_ROWS_PER_TXN,
    OperationSpec,
    TransactionSpec,
    WorkloadGenerator,
    complex_workload,
    mixed_workload,
)
from repro.workload.tpcc import TPCCWorkload, tpcc

__all__ = [
    "WorkloadGenerator",
    "TPCCWorkload",
    "tpcc",
    "YCSBWorkload",
    "YCSBMix",
    "CORE_WORKLOADS",
    "ycsb",
    "TransactionSpec",
    "OperationSpec",
    "complex_workload",
    "mixed_workload",
    "UniformDistribution",
    "ZipfianDistribution",
    "ScrambledZipfianDistribution",
    "LatestDistribution",
    "KeyDistribution",
    "make_distribution",
    "fnv1a_64",
    "ZIPFIAN_THETA",
    "DEFAULT_KEYSPACE",
    "DEFAULT_MAX_ROWS_PER_TXN",
]
