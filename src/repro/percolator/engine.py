"""Percolator as a :class:`~repro.core.engine.CommitEngine`.

The seed's :mod:`repro.percolator.percolator` is an *interactive* port
of Percolator's client-driven 2PC: every transaction is a
:class:`~repro.percolator.percolator.PercolatorTransaction` object that
prewrites and finalizes its own rows.  That surface cannot sit behind
the group-commit frontend, which speaks
:class:`~repro.core.status_oracle.CommitRequest` decisions.  This
module adds the missing decision tier:

:class:`PercolatorEngine`
    decides commit requests with Percolator's rules — first-committer-
    wins via the **write column** (a committed ``commit_ts`` newer than
    the requester's snapshot aborts it) and mutual exclusion via the
    **lock column** — against the *same*
    :class:`~repro.percolator.percolator.PercolatorStore` and
    :class:`~repro.percolator.percolator.PercolatorTransactionManager`
    machinery interactive clients use, so both populations coexist and
    conflict correctly.

Three design points:

* **The engine is a decision tier, not a data path.**  A
  ``CommitRequest`` carries row *names*, not values, so the engine
  writes only the lock and write columns; interactive transactions
  (which buffer values) still write data versions.  Conflict detection
  only ever consults the write/lock columns, so the two populations
  compose.
* **Group commit batches the 2PC itself.**  ``_decide_batch`` runs one
  bulk *prewrite* pass over the whole flush — every request's conflict
  checks, with batch-internal mutual exclusion tracked in a local
  pending-row set instead of the store's lock column — and then one
  bulk *finalize* pass that appends the write records.  Decisions,
  commit timestamps and stats are exactly
  the sequential outcome in batch order (``tests/engines`` pins the
  equivalence); a conflict with an earlier *batch-mate's* pending row
  reports the ``"ww-conflict"`` the sequential run would see (the mate
  would have finalized a newer write record already), never a spurious
  ``"lock-held"``.
* **Crash-orphaned locks resolve instead of stalling the flush.**  A
  lock whose holder crashed mid-prewrite (or already finalized /
  rolled back its primary) is resolved *inline* through the manager's
  primary-lock protocol — roll forward if the primary's write record
  exists, roll back if the primary is gone or the holder is known
  crashed — so the blocked request's future settles with a real
  decision in the same flush.  Only a *live* holder's lock aborts the
  requester (``"lock-held"``, Percolator's ABORT_SELF policy).
  ``lock_cleanups`` counts the orphans cleaned.
"""

from __future__ import annotations

from typing import Any, FrozenSet, List, Optional, Tuple

from repro.core.commit_table import CommitTable
from repro.core.engine import CommitEngine
from repro.core.errors import OracleClosed, RecoveryError
from repro.core.status_oracle import (
    CLIENT_ABORT,
    CommitRequest,
    CommitResult,
    OracleStats,
    RowKey,
)
from repro.core.timestamps import TimestampOracle
from repro.percolator.percolator import (
    Lock,
    PercolatorStore,
    PercolatorTransactionManager,
    WriteRecord,
)
from repro.wal.bookkeeper import GROUP_COMMIT_RECORD, BookKeeperWAL


class PercolatorEngine(CommitEngine):
    """Batch-capable commit decisions over Percolator's lock/write columns.

    Wraps (or creates) a
    :class:`~repro.percolator.percolator.PercolatorTransactionManager`
    and implements the full :class:`~repro.core.engine.CommitEngine`
    surface: sequential :meth:`commit`/:meth:`abort`, the
    ``_decide_batch`` group-commit loop, begin leases, WAL recovery
    hooks, and :class:`~repro.core.status_oracle.OracleStats`.
    """

    level = "percolator"

    def __init__(
        self,
        manager: Optional[PercolatorTransactionManager] = None,
        store: Optional[PercolatorStore] = None,
        timestamp_oracle: Optional[TimestampOracle] = None,
        wal: Optional[BookKeeperWAL] = None,
    ) -> None:
        self._wal = wal
        if manager is None:
            if timestamp_oracle is None:
                # Same no-reuse discipline as the status oracle: with a
                # WAL attached, timestamp reservations are persisted so
                # a recovered instance never reissues a start timestamp.
                wal_hook = self._log_ts_reservation if wal is not None else None
                timestamp_oracle = TimestampOracle(wal_append=wal_hook)
            manager = PercolatorTransactionManager(
                store=store, tso=timestamp_oracle
            )
        self._manager = manager
        self._store = manager.store
        self._tso = manager.tso
        self.commit_table = CommitTable()
        self.stats = OracleStats()
        #: crash-orphaned (or stale) locks resolved by this engine.
        self.lock_cleanups = 0
        self._closed = False

    # ------------------------------------------------------------------
    # timestamps
    # ------------------------------------------------------------------
    def begin(self) -> int:
        if self._closed:
            raise OracleClosed("percolator engine is closed")
        return self._tso.next()

    def lease(self, n: int) -> Tuple[int, int]:
        if self._closed:
            raise OracleClosed("percolator engine is closed")
        return self._tso.lease(n)

    @property
    def timestamp_oracle(self) -> TimestampOracle:
        return self._tso

    @property
    def manager(self) -> PercolatorTransactionManager:
        """The shared lock-resolution machinery (and interactive-client
        factory) this engine decides against."""
        return self._manager

    @property
    def store(self) -> PercolatorStore:
        return self._store

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    def rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        return request.write_set  # Percolator keeps SI's ww rule

    def _sorted_rows(self, request: CommitRequest) -> List[RowKey]:
        # Deterministic prewrite order (the interactive path sorts the
        # same way): makes the first-conflict row reproducible and keeps
        # the sequential and batched scans identical.
        return sorted(request.write_set, key=repr)

    def _resolve_if_stale(self, row: RowKey, lock: Lock) -> Optional[Lock]:
        """Run the primary-lock protocol on ``lock``; return the lock
        still standing (a live holder keeps its locks) or ``None``."""
        self._manager.resolve_lock(row, lock)
        remaining = self._store.lock_of(row)
        if remaining is None:
            self.lock_cleanups += 1
        return remaining

    # ------------------------------------------------------------------
    # the sequential reference path
    # ------------------------------------------------------------------
    def commit(self, request: CommitRequest) -> CommitResult:
        """Decide one commit request with Percolator's prewrite/finalize.

        Never raises for conflicts — an abort is a normal protocol
        outcome, same contract as the status oracle.
        """
        if self._closed:
            raise OracleClosed("percolator engine is closed")
        start = request.start_ts
        if request.is_read_only:
            # Percolator read-only transactions commit for free at their
            # snapshot (no lock, no write record, no commit timestamp).
            self.stats.commits += 1
            self.stats.read_only_commits += 1
            return CommitResult(True, start, commit_ts=None)

        store = self._store
        rows = self._sorted_rows(request)
        primary = rows[0]
        conflict: Optional[Tuple[str, RowKey]] = None
        acquired: List[RowKey] = []
        checked = 0
        for row in rows:
            checked += 1
            # Lock column first: resolving a finished/crashed holder may
            # roll its commit forward, which the write-column check below
            # must observe.
            lock = store.lock_of(row)
            if lock is not None:
                lock = self._resolve_if_stale(row, lock)
            if lock is not None:
                conflict = ("lock-held", row)
                break
            latest = store.latest_commit_ts(row)
            if latest is not None and latest > start:
                conflict = ("ww-conflict", row)
                break
            store.acquire_lock(
                row, Lock(start, primary, is_primary=row == primary)
            )
            acquired.append(row)
        self.stats.rows_checked += checked

        if conflict is not None:
            for row in acquired:
                store.release_lock(row, start)
            reason, crow = conflict
            self.stats.aborts += 1
            self.stats.conflict_aborts += 1
            self.commit_table.record_abort(start)
            self._log("abort", (start,))
            return CommitResult(False, start, reason=reason, conflict_row=crow)

        # Finalize: one commit timestamp, write records primary-first
        # (the commit point), release every lock.
        commit_ts = self._tso.next()
        for row in rows:
            store.add_write_record(row, WriteRecord(commit_ts, start))
            store.release_lock(row, start)
        self.stats.rows_updated += len(rows)
        self.commit_table.record_commit(start, commit_ts)
        self.stats.commits += 1
        self._log("commit", (start, commit_ts, tuple(rows)))
        return CommitResult(True, start, commit_ts=commit_ts)

    def abort(self, start_ts: int) -> None:
        if self._closed:
            raise OracleClosed("percolator engine is closed")
        self.commit_table.record_abort(start_ts)
        self.stats.aborts += 1
        self._log("abort", (start_ts,))

    # ------------------------------------------------------------------
    # the group-commit hot path
    # ------------------------------------------------------------------
    def _decide_batch(self, batch, payload_commits, payload_aborts, errors,
                      results=None):
        """Batched 2PC: bulk prewrite pass, then bulk finalize pass.

        Phase 1 walks the flush in submission order — per request:
        resolve stale locks, run the write-column check, and on success
        assign its commit timestamp and commit-table entry.  Batch-mates
        take no real locks (the flush is one critical section, and the
        sequential run releases each request's locks before the next
        begins, so the lock column's end state is identical); a conflict
        with an earlier mate's pending row is the sequential run's
        ww-conflict (the mate would already hold a newer write record)
        and is reported as such.  Phase 2 appends every decided commit's
        write records.  Observationally equivalent to
        :meth:`commit`/:meth:`abort` in batch order; per-request
        protocol misuse is isolated to ``errors`` exactly like the
        status-oracle loops.
        """
        if self._closed:
            raise OracleClosed("percolator engine is closed")
        store = self._store
        locks = store.lock_column
        lock_isdisjoint = locks.keys().isdisjoint
        lock_of = locks.get
        writes = store.write_column
        writes_get = writes.get
        ct = self.commit_table
        # Replicas subscribed to the commit table must see every decision,
        # so only bypass its record methods when nobody is listening.
        fast_ct = not ct._subscribers
        ct_commits = ct._commits
        ct_aborted = ct._aborted
        tso = self._tso
        nxt = tso._next
        reserved = tso._reserved_until
        pc_append = payload_commits.append
        pa_append = payload_aborts.append
        res_append = results.append if results is not None else None
        # Rows written by an earlier batch-mate whose prewrite succeeded.
        # Its write records are deferred to phase 2, so membership here
        # stands in for the newer write record the sequential scan would
        # see — always a ww-conflict, since the mate's Tc postdates every
        # start in the batch.  No real locks are taken for batch-mates at
        # all: the flush runs in one critical section, and the sequential
        # run releases each request's locks before the next begins, so
        # the store's lock column is observationally untouched either way.
        mate_rows = set()
        mate_isdisjoint = mate_rows.isdisjoint
        mate_update = mate_rows.update
        finalize: List[Tuple[int, int, List[RowKey]]] = []
        commits = conflict_aborts = client_aborts = ro_commits = issued = 0
        rows_checked = rows_updated = 0
        try:
            for item in batch:
                if item.__class__ is CommitRequest:
                    req, fut = item, None
                else:
                    if item.__class__ is tuple:
                        req, fut = item
                    else:
                        req, fut = item, None
                    if req.__class__ is not CommitRequest:
                        start = req  # client-initiated abort
                        try:
                            if fast_ct:
                                if start in ct_commits:
                                    raise ValueError(
                                        f"txn {start} already committed; "
                                        "cannot abort"
                                    )
                                ct_aborted.add(start)
                            else:
                                ct.record_abort(start)
                        except Exception as exc:
                            errors.append((start, exc))
                            if fut is not None:
                                fut._error = exc
                            if res_append is not None:
                                res_append(None)
                            continue
                        client_aborts += 1
                        pa_append(start)
                        if fut is not None:
                            fut._reason = CLIENT_ABORT
                        if res_append is not None:
                            res_append(
                                CommitResult(False, start, reason=CLIENT_ABORT)
                            )
                        continue
                start = req.start_ts
                ws = req.write_set
                if not ws:
                    ro_commits += 1
                    if fut is not None:
                        fut._committed = True
                    if res_append is not None:
                        res_append(CommitResult(True, start, commit_ts=None))
                    continue
                conflict = None
                if lock_isdisjoint(ws) and mate_isdisjoint(ws):
                    # Fast path (the common case under a large keyspace):
                    # no lock-column traffic anywhere in the write set, so
                    # only the side-effect-free write-column check remains.
                    # Clean scan: the checked count is len(ws) in any
                    # order.  On a conflict, redo the scan in prewrite
                    # (sorted) order to recover the exact sequential
                    # first-conflict row and checked count.
                    conflict_row = None
                    for row in ws:
                        recs = writes_get(row)
                        if recs is not None and recs[-1].commit_ts > start:
                            conflict_row = row
                            break
                    if conflict_row is None:
                        rows_checked += len(ws)
                    else:
                        for row in sorted(ws, key=repr):
                            rows_checked += 1
                            recs = writes_get(row)
                            if recs is not None and recs[-1].commit_ts > start:
                                conflict = ("ww-conflict", row)
                                break
                else:
                    # Slow path: a lock (external — batch-mates take
                    # none), or a mate's pending row, intersects the
                    # write set.  Faithful sequential scan in prewrite
                    # order, with stale-lock resolution side effects.
                    # A mate row can never still carry a lock: the mate
                    # only committed because that lock was resolved away.
                    for row in sorted(ws, key=repr):
                        rows_checked += 1
                        if row in mate_rows:
                            conflict = ("ww-conflict", row)
                            break
                        lock = lock_of(row)
                        if lock is not None:
                            lock = self._resolve_if_stale(row, lock)
                            if lock is not None:
                                conflict = ("lock-held", row)
                                break
                        recs = writes_get(row)
                        if recs is not None and recs[-1].commit_ts > start:
                            conflict = ("ww-conflict", row)
                            break
                if conflict is not None:
                    reason, crow = conflict
                    try:
                        if fast_ct:
                            if start in ct_commits:
                                raise ValueError(
                                    f"txn {start} already committed; "
                                    "cannot abort"
                                )
                            ct_aborted.add(start)
                        else:
                            ct.record_abort(start)
                    except Exception as exc:
                        errors.append((start, exc))
                        if fut is not None:
                            fut._error = exc
                        if res_append is not None:
                            res_append(None)
                        continue
                    conflict_aborts += 1
                    pa_append(start)
                    if fut is not None:
                        fut._reason = reason
                        fut._row = crow
                    if res_append is not None:
                        res_append(
                            CommitResult(
                                False, start, reason=reason, conflict_row=crow
                            )
                        )
                    continue
                # Prewrite succeeded: assign Tc now (inlined tso.next with
                # the same reservation protocol, same TSO order as the
                # sequential run) and defer the write column to phase 2.
                if nxt > reserved:
                    tso._next = nxt
                    tso._reserve()
                    reserved = tso._reserved_until
                cts = nxt
                nxt += 1
                issued += 1
                rows = sorted(ws, key=repr)
                rows_updated += len(rows)
                finalize.append((start, cts, rows))
                mate_update(ws)
                try:
                    if fast_ct:
                        if cts <= start:
                            raise ValueError(
                                f"commit_ts {cts} must exceed start_ts {start}"
                            )
                        if start in ct_aborted:
                            raise ValueError(
                                f"txn {start} already aborted; cannot commit"
                            )
                        ct_commits[start] = cts
                    else:
                        ct.record_commit(start, cts)
                except Exception as exc:
                    # Same partial effects as the sequential path, which
                    # writes its records and consumes Tc before the
                    # commit-table write raises.
                    errors.append((start, exc))
                    if fut is not None:
                        fut._error = exc
                    if res_append is not None:
                        res_append(None)
                    continue
                commits += 1
                pc_append((start, cts, rows))
                if fut is not None:
                    fut._committed = True
                    fut._commit_ts = cts
                if res_append is not None:
                    res_append(CommitResult(True, start, commit_ts=cts))
        finally:
            # Keep engine-visible state consistent even on a mid-batch
            # protocol error: timestamps consumed so far stay consumed.
            tso._next = nxt
            tso._issued += issued
            # Phase 2 — bulk finalize: append every decided commit's
            # write records (direct list appends — Tc strictly increases
            # across the finalize list, preserving the store's
            # commit-order invariant).  No batch locks exist to release.
            record = WriteRecord
            for start, cts, rows in finalize:
                for row in rows:
                    recs = writes_get(row)
                    if recs is None:
                        writes[row] = [record(cts, start)]
                    else:
                        recs.append(record(cts, start))
            st = self.stats
            st.commits += commits + ro_commits
            st.read_only_commits += ro_commits
            st.aborts += conflict_aborts + client_aborts
            st.conflict_aborts += conflict_aborts
            st.rows_checked += rows_checked
            st.rows_updated += rows_updated
        return (
            commits + ro_commits,
            conflict_aborts + client_aborts,
            rows_checked,
            rows_updated,
        )

    # ------------------------------------------------------------------
    # durability / recovery
    # ------------------------------------------------------------------
    def _log(self, kind: str, payload) -> None:
        if self._wal is not None:
            self._wal.append(kind, payload, size=32)

    def _log_ts_reservation(self, high_water: int) -> None:
        if self._wal is not None:
            self._wal.append("ts-reserve", high_water, size=8)
            self._wal.flush()

    def apply_wal_record(self, record) -> int:
        """Apply one durable record: rebuild the write column and the
        commit table (locks are volatile — a recovered engine starts
        lock-free, exactly like a restarted Percolator tablet server)."""
        kind = record.kind
        if kind == "commit":
            start_ts, commit_ts, rows = record.payload
            return self._apply_recovered_commit(start_ts, commit_ts, rows)
        if kind == "abort":
            (start_ts,) = record.payload
            return self._apply_recovered_abort(start_ts)
        if kind == GROUP_COMMIT_RECORD:
            max_ts = 0
            commits, aborts = record.payload
            for start_ts, commit_ts, rows in commits:
                max_ts = max(
                    max_ts, self._apply_recovered_commit(start_ts, commit_ts, rows)
                )
            for start_ts in aborts:
                max_ts = max(max_ts, self._apply_recovered_abort(start_ts))
            return max_ts
        if kind == "ts-reserve":
            return record.payload
        raise RecoveryError(f"unknown WAL record kind {record.kind!r}")

    def _apply_recovered_commit(self, start_ts: int, commit_ts: int, rows) -> int:
        self.commit_table.record_commit(start_ts, commit_ts)
        writes = self._store.write_column
        for row in rows:
            records = writes.setdefault(row, [])
            if not records or commit_ts > records[-1].commit_ts:
                records.append(WriteRecord(commit_ts, start_ts))
        return commit_ts

    def _apply_recovered_abort(self, start_ts: int) -> int:
        if not self.commit_table.is_aborted(start_ts):
            self.commit_table.record_abort(start_ts)
        return start_ts

    def seal_recovery(self, max_recovered_ts: int) -> None:
        """Re-seed the (shared) timestamp oracle above everything
        recovered — same no-reuse rule as the status oracle."""
        if self._wal is not None:
            wal_append = self._log_ts_reservation
        else:
            wal_append = self._tso.reservation_sink
        self._tso = TimestampOracle.recover(
            max(max_recovered_ts, self._tso.reserved_high_water),
            reservation_batch=self._tso.reservation_batch,
            wal_append=wal_append,
        )
        self._manager.tso = self._tso
