"""Simulated group-commit frontend: engine-driven flush timing.

Wires :class:`repro.server.OracleFrontend` into the discrete-event
engine: the frontend's flush-interval trigger is scheduled with
``engine.call_in`` (no polling), client sessions wait on commit futures
bridged to engine events, and every flushed batch occupies the oracle's
critical-section resource for the *batch* service time before its single
WAL write makes it durable — the two amortizations of §6.3/Appendix A,
in simulated time.

This is the timing companion to the wall-clock microbench in
:mod:`repro.bench.frontend_bench`: that one measures real CPU cost,
this one reproduces queueing behaviour (latency vs. batch size, timer
vs. count flushes under light vs. heavy load).

Two serving-tier failure modes can be injected (benchmark E22):

* **overload** — ``offered_tps`` switches the sim to an *open loop*
  (arrivals at a fixed rate, regardless of completions) and
  ``max_queue_depth`` bounds the frontend's queue; shed requests back
  off per a :class:`~repro.server.retry.RetryPolicy` and are dropped
  once it is spent.  Admission slots release at *durability*
  (:meth:`~repro.server.frontend.OracleFrontend.mark_durable`, wired to
  the batch's durable event), so the bound really caps decisions in
  flight, not just the open batch.
* **failover** — ``failover_at`` crashes the serving frontend at a sim
  time: its open batch fails (:meth:`~repro.server.frontend.OracleFrontend.fail_pending`
  — the satellite crash-path fix), the tier is down for
  ``failover_downtime`` seconds, then a fresh frontend over the same
  oracle state takes over; clients ride out the outage and resubmit
  crashed requests with their original start timestamps.  (State
  recovery itself — warm vs. cold — is :mod:`repro.server.ha`'s job
  and measured on the wall clock; the sim prices the *service* gap.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.engine import ENGINE_KINDS, default_engine_kind, make_engine
from repro.core.errors import OracleClosed, Overloaded
from repro.core.partitioned import PartitionedOracle
from repro.core.sharding import ShardingPolicy
from repro.server.frontend import FlushedBatch, FrontendStats, OracleFrontend
from repro.server.retry import RetryPolicy
from repro.sim.engine import Engine, Resource
from repro.sim.latency import LatencyModel, paper_latency_model
from repro.workload.generator import WorkloadGenerator, complex_workload


@dataclass
class GroupCommitSimResult:
    """Measured behaviour of the batched oracle for one configuration."""

    level: str
    batch_size: int
    num_clients: int
    throughput_tps: float
    avg_latency_ms: float
    p99_latency_ms: float
    abort_rate: float
    commits: int
    aborts: int
    avg_batch: float
    flushes_by_count: int
    flushes_by_timer: int
    oracle_utilization: float
    #: Open-loop arrival rate (0.0 = closed loop).
    offered_tps: float = 0.0
    #: Requests dropped after their overload-retry budget ran out.
    shed_requests: int = 0
    #: Overloaded rejections the frontends issued (>= backoffs).
    overload_rejections: int = 0
    #: Backoffs clients served before a successful (re)submit.
    overload_backoffs: int = 0
    #: Requests resubmitted after dying in a crashed leader's batch.
    crash_retries: int = 0
    failovers: int = 0
    #: High-water mark of decisions in flight across all frontends.
    max_inflight_seen: int = 0

    def as_row(self) -> str:
        return (
            f"{self.level:>4} batch={self.batch_size:>4} "
            f"tput={self.throughput_tps:>9.0f} TPS "
            f"lat={self.avg_latency_ms:>7.3f} ms "
            f"avg_batch={self.avg_batch:>6.1f} "
            f"timer/count={self.flushes_by_timer}/{self.flushes_by_count}"
        )


class GroupCommitSim:
    """Closed-loop clients submitting through an OracleFrontend.

    Args:
        engine: which :class:`~repro.core.engine.CommitEngine` decides
            commits — ``"oracle"`` (the paper's SI/WSI status oracle,
            the default), ``"percolator"``, or ``"ssi"``.  The sim
            drives whichever engine through the same frontend; batch
            service time is priced by what the engine's critical
            section loads per row (Percolator checks write sets only —
            SI pricing; SSI loads read and write sets — WSI pricing).
            Non-oracle engines are monolithic: combine with
            ``num_partitions`` and the constructor raises.
        batch_size: the frontend's count trigger (``max_batch``).
        flush_interval: the frontend's time trigger, fired by the engine.
        num_clients / outstanding_per_client: closed-loop population, as
            in the Fig. 5 setup (§6.3).
        per_request: drive the frontend's per-request decision path
            instead of the ``decide_batch`` engine (the E18 baseline) —
            simulated timing is identical (the latency model prices the
            batch, not the Python loop); this flag exists so queueing
            studies can pin that both paths decide the same things.
        begin_lease: the frontend's begin-lease size (benchmark E20's
            lever).  As with ``per_request``, simulated timing is
            identical at any lease size — the latency model prices
            batches and start-timestamp service, not the Python-level
            begin round-trip the lease removes (E20 measures that on
            the wall clock); the flag exists so queueing studies can
            pin that leased and per-call begin paths plumb decisions
            identically through the engine.
        num_partitions: ``0`` (default) runs the monolithic oracle; a
            positive count runs a
            :class:`~repro.core.partitioned.PartitionedOracle` backend,
            and each flush additionally occupies the critical section
            for its protocol-round cost
            (:meth:`~repro.sim.latency.LatencyModel.partition_round_cost`
            — zero unless the latency model prices
            ``partition_round``).
        executor: ``"serial"`` or ``"parallel"`` — how the modeled
            coordinator drives partition rounds.  This is a *pricing*
            choice: serial pays one ``partition_round`` per round,
            parallel one per phase (the overlap).  The backend itself
            always runs the serial executor — real threads have no
            place in a discrete-event simulation, and executor choice
            never changes decisions (the equivalence suite pins it).
        sharding: optional
            :class:`~repro.core.sharding.ShardingPolicy` for the
            partitioned backend (placement changes which rounds exist,
            which the round pricing then reflects).
        max_queue_depth: admission-control bound forwarded to the
            frontend (decisions in flight; ``Overloaded`` sheds the
            rest).  ``None`` queues without bound.
        offered_tps: switch to an *open loop*: requests arrive at this
            fixed rate whatever the completion rate (``num_clients`` /
            ``outstanding_per_client`` are then ignored).  The E22
            overload leg offers 2x the measured 1x capacity.
        failover_at: crash the serving frontend at this sim time (its
            open batch fails; crashed requests are retried against the
            successor); ``None`` disables.
        failover_downtime: service outage between crash and the
            successor frontend accepting traffic.
        retry_policy: client backoff for ``Overloaded`` rejections and
            crashed-request resubmission.
    """

    def __init__(
        self,
        level: str = "wsi",
        engine: Optional[str] = None,
        batch_size: int = 32,
        num_clients: int = 4,
        outstanding_per_client: int = 25,
        flush_interval: float = 0.005,
        keyspace: int = 20_000_000,
        latency: Optional[LatencyModel] = None,
        seed: int = 42,
        warmup: float = 0.1,
        measure: float = 0.5,
        per_request: bool = False,
        begin_lease: int = 1,
        num_partitions: int = 0,
        executor: str = "serial",
        sharding: Optional[ShardingPolicy] = None,
        max_queue_depth: Optional[int] = None,
        offered_tps: Optional[float] = None,
        failover_at: Optional[float] = None,
        failover_downtime: float = 0.002,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if executor not in ("serial", "parallel"):
            raise ValueError("executor must be 'serial' or 'parallel'")
        if offered_tps is not None and offered_tps <= 0:
            raise ValueError("offered_tps must be > 0 (or None)")
        if engine is None:
            engine = default_engine_kind()
        if engine not in ENGINE_KINDS:
            raise ValueError(
                f"engine must be one of {ENGINE_KINDS}, got {engine!r}"
            )
        if engine != "oracle" and num_partitions:
            raise ValueError(
                "the partitioned backend is oracle-only; "
                "non-oracle engines are monolithic"
            )
        self.level = level
        self.engine_kind = engine
        # What the engine's critical section loads per row: Percolator's
        # ww check reads write sets only (SI-shaped cost); SSI loads
        # read and write footprints (WSI-shaped cost).
        self._pricing_level = {"percolator": "si", "ssi": "wsi"}.get(
            engine, level
        )
        self.batch_size = batch_size
        self.num_clients = num_clients
        self.outstanding = outstanding_per_client
        self.latency = latency or paper_latency_model(seed=seed)
        self.warmup = warmup
        self.measure = measure
        self.engine = Engine()
        self.num_partitions = num_partitions
        self._parallel_rounds = executor == "parallel"
        self.max_queue_depth = max_queue_depth
        self.offered_tps = offered_tps
        self.failover_at = failover_at
        self.failover_downtime = failover_downtime
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=6, base_delay=0.001, multiplier=2.0, max_delay=0.016
        )
        if num_partitions:
            # executor pinned serial (not left to REPRO_EXECUTOR): the
            # sim prices overlap, it must never spawn real threads.
            self.oracle = PartitionedOracle(
                level=level,
                num_partitions=num_partitions,
                sharding=sharding,
                executor="serial",
            )
        else:
            self.oracle = make_engine(engine, level=level)
            self.level = self.oracle.level
        self._flush_interval = flush_interval
        self._per_request = per_request
        self._begin_lease = begin_lease
        #: Stats of frontends retired by a failover (aggregated into
        #: the result alongside the serving frontend's).
        self._retired_stats: List[FrontendStats] = []
        #: None during the failover outage window.
        self.frontend: Optional[OracleFrontend] = self._make_frontend()
        self.critical_section = Resource(self.engine, capacity=1, name="oracle-cs")
        self.workload: WorkloadGenerator = complex_workload(
            distribution="uniform", keyspace=keyspace, seed=seed
        )
        self._latencies: List[float] = []
        self._commits = 0
        self._aborts = 0
        self.failovers = 0
        self._shed = 0
        self._overload_backoffs = 0
        self._crash_retries = 0

    def _make_frontend(self) -> OracleFrontend:
        frontend = OracleFrontend(
            self.oracle,
            max_batch=self.batch_size,
            flush_interval=self._flush_interval,
            clock=lambda: self.engine.now,
            scheduler=self.engine.call_in,
            per_request=self._per_request,
            begin_lease=self._begin_lease,
            max_queue_depth=self.max_queue_depth,
        )
        # Bind the owner into the listener: a batch's durability must
        # release admission slots on the frontend that admitted it, even
        # if a failover replaced ``self.frontend`` in between.
        frontend.on_flush(
            lambda cell, owner=frontend: self._batch_flushed(cell, owner)
        )
        return frontend

    # ------------------------------------------------------------------
    # batch timing: one critical-section occupancy + one WAL write
    # ------------------------------------------------------------------
    def _batch_flushed(self, batch: FlushedBatch, owner: OracleFrontend) -> None:
        batch.durable_event = self.engine.event()
        self.engine.process(self._batch_timing(batch, owner))

    def _batch_timing(self, batch: FlushedBatch, owner: OracleFrontend):
        lat = self.latency
        service = lat.oracle_service_batch(
            self._pricing_level,
            batch.size,
            batch.rows_checked,
            batch.rows_updated,
        )
        rounds = batch.protocol_rounds
        if rounds is not None:
            # Partitioned flush: add the per-partition protocol-round
            # RPCs — serial coordinators pay every round, a parallel
            # executor one overlapped round per phase.
            service += lat.partition_round_cost(
                rounds.check_rounds,
                rounds.install_rounds,
                self._parallel_rounds,
            )
        yield self.critical_section.acquire()
        yield self.engine.timeout(lat.sample(service))
        self.critical_section.release()
        if batch.wal_written:
            yield self.engine.timeout(lat.sample(lat.wal_write))
        batch.durable_event.succeed()
        # In flight spans submit -> durable: only now do the batch's
        # admission slots free up (no-op when max_queue_depth is None).
        owner.mark_durable(batch)

    # ------------------------------------------------------------------
    # failure injection: leader crash + takeover
    # ------------------------------------------------------------------
    def _failover_process(self):
        yield self.engine.timeout(self.failover_at)
        frontend = self.frontend
        self.frontend = None
        # The open batch dies with the host: its futures resolve with
        # the crash error (never a permanent DecisionPending), and the
        # clients holding them resubmit with the same start timestamps.
        frontend.fail_pending(
            OracleClosed("simulated leader crash (failover_at)")
        )
        self._retired_stats.append(frontend.stats)
        self.failovers += 1
        yield self.engine.timeout(self.failover_downtime)
        self.frontend = self._make_frontend()

    # ------------------------------------------------------------------
    # client processes
    # ------------------------------------------------------------------
    def _transact(self, started: float):
        """Drive one transaction to a durable outcome; yields engine
        events.  Generator-returns the resolved future, or None if the
        request was shed (open loop only: the overload-retry budget ran
        out before a submit was accepted)."""
        engine = self.engine
        policy = self.retry_policy
        open_loop = self.offered_tps is not None
        attempt = 1
        request = None
        while True:
            frontend = self.frontend
            if frontend is None or frontend.closed:
                # Failover outage: ride it out, then retry.  A begun-
                # but-unsubmitted timestamp is abandoned as a gap (the
                # lease was durably reserved; reuse is impossible).
                yield engine.timeout(policy.base_delay)
                continue
            if request is None:
                start_ts = frontend.begin()
                spec = self.workload.next_transaction()
                request = spec.commit_request(start_ts)
            try:
                future = frontend.submit_commit(request)
            except Overloaded:
                if open_loop and attempt >= policy.max_attempts:
                    self._shed += 1
                    return None
                self._overload_backoffs += 1
                yield engine.timeout(
                    policy.delay_for(min(attempt, policy.max_attempts))
                )
                attempt += 1
                continue
            except OracleClosed:
                continue  # crashed between the check and the submit
            if not future.done:
                bridge = engine.event()
                future.add_done_callback(lambda _f, ev=bridge: ev.succeed())
                yield bridge
            if future.outcome() == "error":
                # The batch died in a crashed leader.  The request was
                # never decided and never persisted, so resubmitting it
                # — same start timestamp — cannot double-decide.
                self._crash_retries += 1
                yield engine.timeout(
                    policy.delay_for(min(attempt, policy.max_attempts))
                )
                attempt += 1
                continue
            batch = future.batch
            if batch is not None:
                # group commit: acknowledged when the batch is durable
                yield batch.durable_event
            if engine.now >= self.warmup:
                self._latencies.append(engine.now - started)
                if future.committed:
                    self._commits += 1
                else:
                    self._aborts += 1
            return future

    def _client_stream(self):
        """Closed-loop client: think, transact, repeat."""
        engine = self.engine
        lat = self.latency
        while True:
            started = engine.now
            yield engine.timeout(lat.sample_start_timestamp())
            yield from self._transact(started)

    def _one_request(self):
        yield from self._transact(self.engine.now)

    def _arrival_process(self):
        """Open-loop source: fixed-rate arrivals, ignoring completions."""
        interarrival = 1.0 / self.offered_tps
        while True:
            self.engine.process(self._one_request())
            yield self.engine.timeout(interarrival)

    # ------------------------------------------------------------------
    def _stat_sum(self, name: str) -> int:
        total = sum(getattr(stats, name) for stats in self._retired_stats)
        if self.frontend is not None:
            total += getattr(self.frontend.stats, name)
        return total

    def run(self) -> GroupCommitSimResult:
        if self.failover_at is not None:
            self.engine.process(self._failover_process())
        if self.offered_tps is not None:
            self.engine.process(self._arrival_process())
        else:
            for _ in range(self.num_clients * self.outstanding):
                self.engine.process(self._client_stream())
        self.engine.run(until=self.warmup + self.measure)
        total = self._commits + self._aborts
        lat_ms = sorted(1000 * x for x in self._latencies)
        avg = sum(lat_ms) / len(lat_ms) if lat_ms else 0.0
        p99 = lat_ms[int(0.99 * (len(lat_ms) - 1))] if lat_ms else 0.0
        all_stats = list(self._retired_stats)
        if self.frontend is not None:
            all_stats.append(self.frontend.stats)
        batches = sum(s.batches for s in all_stats)
        batched = sum(s.batched_requests for s in all_stats)
        return GroupCommitSimResult(
            level=self.level,
            batch_size=self.batch_size,
            num_clients=self.num_clients,
            throughput_tps=total / self.measure if self.measure > 0 else 0.0,
            avg_latency_ms=avg,
            p99_latency_ms=p99,
            abort_rate=self._aborts / total if total else 0.0,
            commits=self._commits,
            aborts=self._aborts,
            avg_batch=batched / batches if batches else 0.0,
            flushes_by_count=self._stat_sum("flushes_by_count"),
            flushes_by_timer=self._stat_sum("flushes_by_timer"),
            oracle_utilization=self.critical_section.utilization(),
            offered_tps=self.offered_tps or 0.0,
            shed_requests=self._shed,
            overload_rejections=self._stat_sum("overload_rejections"),
            overload_backoffs=self._overload_backoffs,
            crash_retries=self._crash_retries,
            failovers=self.failovers,
            max_inflight_seen=max(s.max_inflight_seen for s in all_stats),
        )


def sweep_group_commit(
    level: str,
    batch_sizes: Optional[List[int]] = None,
    num_clients: int = 4,
    outstanding_per_client: int = 25,
    seed: int = 42,
    measure: float = 0.4,
    keyspace: int = 20_000_000,
) -> List[GroupCommitSimResult]:
    """Throughput/latency vs. batch size (batch 1 = no group commit)."""
    sizes = batch_sizes or [1, 8, 32, 128]
    results = []
    for batch_size in sizes:
        sim = GroupCommitSim(
            level=level,
            batch_size=batch_size,
            num_clients=num_clients,
            outstanding_per_client=outstanding_per_client,
            seed=seed,
            measure=measure,
            keyspace=keyspace,
        )
        results.append(sim.run())
    return results
