"""Versioned cell values for the multi-version store.

HBase (and Bigtable) keep multiple timestamped versions per cell; the
transactional layer of the paper writes each value at the *start timestamp*
of the writing transaction and later learns, via the status oracle /
commit table, whether and when that transaction committed.  A version in
this store therefore carries the writer's start timestamp; its *commit*
timestamp lives in the commit table, not in the store (the paper's clients
replicate the commit timestamps, Section 2.2 / Appendix A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

# Sentinel stored as the value of a deleted cell.  HBase models deletes as
# tombstone markers rather than physical removal so that snapshot reads at
# older timestamps still see the pre-delete value.
TOMBSTONE = object()


@dataclass(frozen=True, order=True)
class Version:
    """One timestamped version of a cell.

    Ordering is by ``timestamp`` (then value identity), so a sorted list of
    versions is a time-ordered history of the cell.

    Attributes:
        timestamp: start timestamp of the transaction that wrote the value.
        value: the written payload, or :data:`TOMBSTONE` for a delete.
    """

    timestamp: int
    value: Any = None

    @property
    def is_tombstone(self) -> bool:
        """True if this version marks a deletion."""
        return self.value is TOMBSTONE

    def __repr__(self) -> str:
        val = "<tombstone>" if self.is_tombstone else repr(self.value)
        return f"Version(ts={self.timestamp}, value={val})"
