"""Routing determinism: shard and block placement must not depend on the
process (satellite of the cross-partition batch protocol PR).

Python salts ``hash(str)`` per process (``PYTHONHASHSEED``), so any
placement derived from the builtin hash silently differs between
processes — a correctness bug for a distributed deployment of §6.3
footnote 6 (two frontends would route the same row to different
``lastCommit`` shards) and a reproducibility bug for every benchmark.
These tests pin the replacement, :func:`repro.core.sharding.stable_hash`,
and the routing built on it, including across subprocesses launched with
different ``PYTHONHASHSEED`` values.
"""

import os
import subprocess
import sys

import pytest

from repro.core.partitioned import PartitionedOracle
from repro.core.sharding import stable_hash
from repro.hbase.region_server import BlockCache

FIXED_KEYS = [
    "row", "r0", "account:42", "user#9", "", "élève",
    0, 1, 7, 63, 64, 1_000_003, -5,
    b"bytes-key", ("compound", 3),
]


class TestStableHash:
    def test_deterministic_within_process(self):
        for key in FIXED_KEYS:
            assert stable_hash(key) == stable_hash(key)

    def test_non_negative(self):
        for key in FIXED_KEYS:
            assert stable_hash(key) >= 0

    def test_integers_hash_to_themselves(self):
        # Integer keyspaces shard exactly like row % num_partitions, so
        # benchmark workloads can construct a row for a target shard.
        assert stable_hash(12345) == 12345
        assert stable_hash(0) == 0
        assert stable_hash(-7) == 7

    def test_known_string_values_pinned(self):
        # CRC-32 of the UTF-8 bytes: pin two values so any change to the
        # encoding rule is caught (these must never vary by process).
        import zlib

        assert stable_hash("row") == zlib.crc32(b"row")
        assert stable_hash(b"row") == zlib.crc32(b"row")
        assert stable_hash("row") == stable_hash(b"row")

    def test_spreads_over_partitions(self):
        buckets = {stable_hash(f"row{i}") % 4 for i in range(64)}
        assert buckets == {0, 1, 2, 3}

    def test_equal_keys_hash_equal_across_numeric_types(self):
        # Dict/set semantics make 2, 2.0, Decimal(2) and Fraction(2)
        # the SAME row key, so they must share a shard — exactly the
        # invariant builtin hash() guarantees for numbers.  A split
        # would route the "same" row to two lastCommit shards and miss
        # conflicts.
        from decimal import Decimal
        from fractions import Fraction

        for a, b in [
            (2, 2.0),
            (2, Decimal(2)),
            (2, Fraction(2)),
            (1, True),
            (0, False),
            (-7, -7.0),
            (2**64, 2.0**64),  # above the int-identity bound
            ((1,), (1.0,)),  # equal tuples with mixed element types
            (("k", 2, (3,)), ("k", 2.0, (3.0,))),  # nested
        ]:
            assert a == b
            assert stable_hash(a) == stable_hash(b), (a, b)

    def test_mixed_numeric_types_conflict_like_a_monolith(self):
        # The end-to-end consequence of the invariant above: a write to
        # row 2.0 must conflict with a concurrent write to row 2 under
        # the partitioned oracle exactly as under a monolithic one.
        from repro.core.status_oracle import CommitRequest, make_oracle

        def drive(oracle):
            t_old = oracle.begin()
            t_new = oracle.begin()
            assert oracle.commit(
                CommitRequest(t_new, write_set=frozenset({2.0}))
            ).committed
            return oracle.commit(
                CommitRequest(t_old, write_set=frozenset({2}))
            ).committed

        mono = drive(make_oracle("si"))
        part = drive(PartitionedOracle(level="si", num_partitions=4))
        assert part == mono is False


def _routing_fingerprint():
    """Shard + block placement of the fixed keys, as one string."""
    oracle = PartitionedOracle(level="wsi", num_partitions=5)
    cache = BlockCache(capacity_blocks=4)
    shards = [oracle.partition_of(key) for key in FIXED_KEYS]
    blocks = [cache.block_of(key) for key in FIXED_KEYS]
    return ",".join(map(str, shards + blocks))


SUBPROCESS_SNIPPET = """
import sys
sys.path.insert(0, {src!r})
from tests.core.test_sharding import _routing_fingerprint
sys.stdout.write(_routing_fingerprint())
"""


class TestRoutingIsProcessIndependent:
    @pytest.mark.parametrize("hashseed", ["0", "1", "31337"])
    def test_same_routing_under_any_pythonhashseed(self, hashseed):
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        src = os.path.join(repo_root, "src")
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = repo_root + os.pathsep + src
        out = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_SNIPPET.format(src=src)],
            env=env,
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout == _routing_fingerprint()

    def test_pluggable_hash_fn(self):
        oracle = PartitionedOracle(
            level="si", num_partitions=4, hash_fn=lambda row: 2
        )
        for key in FIXED_KEYS:
            assert oracle.partition_of(key) == 2
        cache = BlockCache(capacity_blocks=4, hash_fn=lambda row: 128)
        assert cache.block_of("anything") == 128 // 64
