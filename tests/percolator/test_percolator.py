"""Unit tests for the Percolator-style lock-based SI baseline (§2.1)."""

import pytest

from repro.core.errors import ConflictAbort, InvalidTransactionState, LockConflict
from repro.percolator import (
    LockPolicy,
    PercolatorStore,
    PercolatorTransactionManager,
)
from repro.percolator.percolator import PercoState


@pytest.fixture
def manager():
    return PercolatorTransactionManager()


class TestBasicTransactions:
    def test_write_commit_read(self, manager):
        t1 = manager.begin()
        t1.write("x", 42)
        t1.commit()
        t2 = manager.begin()
        assert t2.read("x") == 42

    def test_own_buffered_write_visible(self, manager):
        txn = manager.begin()
        txn.write("x", "buffered")
        assert txn.read("x") == "buffered"

    def test_uncommitted_invisible_to_others(self, manager):
        t1 = manager.begin()
        t1.write("x", "dirty")
        t1.prewrite(primary="x")
        t2 = manager.begin()
        # x is locked by an active txn; resolution leaves the lock, and
        # the snapshot shows no committed version.
        assert t2.read("x") is None

    def test_snapshot_read_ignores_later_commits(self, manager):
        t0 = manager.begin()
        t0.write("x", "old")
        t0.commit()
        reader = manager.begin()
        writer = manager.begin()
        writer.write("x", "new")
        writer.commit()
        assert reader.read("x") == "old"

    def test_read_only_commits_trivially(self, manager):
        txn = manager.begin()
        txn.read("x")
        assert txn.commit() == txn.start_ts
        assert txn.state is PercoState.COMMITTED

    def test_delete(self, manager):
        t1 = manager.begin()
        t1.write("x", 1)
        t1.commit()
        t2 = manager.begin()
        t2.delete("x")
        t2.commit()
        assert manager.begin().read("x") is None


class TestWriteWriteConflicts:
    def test_percolator_is_snapshot_isolation(self, manager):
        """Two concurrent writers of the same row: one aborts."""
        t1, t2 = manager.begin(), manager.begin()
        t1.write("x", "t1")
        t2.write("x", "t2")
        t1.commit()
        with pytest.raises(ConflictAbort) as exc:
            t2.commit()
        assert exc.value.reason == "ww-conflict"

    def test_write_skew_allowed(self, manager):
        """Percolator provides SI, not serializability: H2 commits."""
        t1, t2 = manager.begin(), manager.begin()
        assert t1.read("x") is None and t1.read("y") is None
        assert t2.read("x") is None and t2.read("y") is None
        t1.write("x", 0)
        t2.write("y", 0)
        t1.commit()
        t2.commit()  # no exception: write skew admitted

    def test_serial_writers_fine(self, manager):
        t1 = manager.begin()
        t1.write("x", 1)
        t1.commit()
        t2 = manager.begin()
        t2.write("x", 2)
        t2.commit()
        assert manager.begin().read("x") == 2


class TestLockPolicies:
    def test_abort_self_on_lock(self, manager):
        t1 = manager.begin(lock_policy=LockPolicy.ABORT_SELF)
        t2 = manager.begin(lock_policy=LockPolicy.ABORT_SELF)
        t1.write("x", 1)
        t1.prewrite(primary="x")  # holds the lock
        t2.write("x", 2)
        with pytest.raises(ConflictAbort) as exc:
            t2.commit()
        assert exc.value.reason == "lock-held"
        # t1 is still fine
        t1.finalize(primary="x")
        assert t1.state is PercoState.COMMITTED

    def test_force_abort_holder(self, manager):
        t1 = manager.begin()
        t2 = manager.begin(lock_policy=LockPolicy.FORCE_ABORT_HOLDER)
        t1.write("x", 1)
        t1.prewrite(primary="x")
        t2.write("x", 2)
        t2.commit()  # forcefully clears t1's locks and wins
        with pytest.raises(ConflictAbort):
            t1.finalize(primary="x")  # t1 discovers it was killed
        assert manager.begin().read("x") == 2

    def test_wait_policy_times_out_on_active_holder(self, manager):
        t1 = manager.begin()
        t2 = manager.begin(lock_policy=LockPolicy.WAIT)
        t1.write("x", 1)
        t1.prewrite(primary="x")
        t2.write("x", 2)
        with pytest.raises(ConflictAbort) as exc:
            t2.commit()
        assert exc.value.reason == "lock-wait-timeout"


class TestTwoPhaseCommitAtomicity:
    def test_multi_row_commit_is_atomic(self, manager):
        txn = manager.begin()
        for row in ("a", "b", "c"):
            txn.write(row, row.upper())
        txn.commit()
        reader = manager.begin()
        assert [reader.read(r) for r in ("a", "b", "c")] == ["A", "B", "C"]

    def test_prewrite_failure_rolls_back_partial_locks(self, manager):
        blocker = manager.begin()
        blocker.write("b", "held")
        blocker.prewrite(primary="b")
        txn = manager.begin()
        txn.write("a", 1)
        txn.write("b", 2)
        txn.write("c", 3)
        with pytest.raises(ConflictAbort):
            txn.commit()
        # No locks or data versions may linger from the failed txn.
        store = manager.store
        assert store.lock_of("a") is None
        assert store.lock_of("c") is None
        assert store.data.get_exact("a", txn.start_ts) is None
        assert store.data.get_exact("c", txn.start_ts) is None

    def test_abort_releases_everything(self, manager):
        txn = manager.begin()
        txn.write("x", 1)
        txn.prewrite(primary="x")
        txn.abort()
        assert manager.store.lock_of("x") is None
        assert manager.begin().read("x") is None


class TestStateMachine:
    def test_operations_after_commit_rejected(self, manager):
        txn = manager.begin()
        txn.write("x", 1)
        txn.commit()
        with pytest.raises(InvalidTransactionState):
            txn.write("y", 2)
        with pytest.raises(InvalidTransactionState):
            txn.commit()

    def test_store_lock_api(self):
        store = PercolatorStore()
        from repro.percolator import Lock

        store.acquire_lock("r", Lock(5, "r", True))
        with pytest.raises(LockConflict):
            store.acquire_lock("r", Lock(6, "r", True))
        assert not store.release_lock("r", 6)  # wrong holder
        assert store.release_lock("r", 5)

    def test_write_records_append_only_in_commit_order(self):
        store = PercolatorStore()
        from repro.percolator import WriteRecord

        store.add_write_record("r", WriteRecord(5, 1))
        with pytest.raises(ValueError):
            store.add_write_record("r", WriteRecord(4, 2))
