"""Integration tests for status-oracle failover (Appendix A + election)."""

import pytest

from repro.coord import OracleReplicaSet
from repro.core.errors import OracleClosed
from repro.core.status_oracle import CommitRequest


def req(start, writes=(), reads=()):
    return CommitRequest(start, write_set=frozenset(writes), read_set=frozenset(reads))


class TestSteadyState:
    def test_first_host_serves(self):
        rs = OracleReplicaSet(num_hosts=3)
        assert rs.active_host().host_id == 0

    def test_commits_flow_through_leader(self):
        rs = OracleReplicaSet(num_hosts=2)
        ts = rs.begin()
        result = rs.commit(req(ts, writes={"x"}))
        assert result.committed

    def test_single_host_set(self):
        rs = OracleReplicaSet(num_hosts=1)
        assert rs.active_host().host_id == 0

    def test_invalid_host_count(self):
        with pytest.raises(ValueError):
            OracleReplicaSet(num_hosts=0)


class TestFailover:
    def test_next_host_takes_over(self):
        rs = OracleReplicaSet(num_hosts=3)
        rs.kill_active()
        assert rs.active_host().host_id == 1
        rs.kill_active()
        assert rs.active_host().host_id == 2

    def test_all_hosts_down(self):
        rs = OracleReplicaSet(num_hosts=1)
        rs.kill_active()
        with pytest.raises(OracleClosed):
            rs.begin()

    def test_conflict_state_survives_failover(self):
        # engine pinned: asserts the oracle's WSI rw-conflict outcome.
        rs = OracleReplicaSet(num_hosts=2, engine="oracle")
        stale = rs.begin()
        writer = rs.begin()
        assert rs.commit(req(writer, writes={"x"})).committed
        rs.wal.flush()
        rs.kill_active()
        result = rs.commit(req(stale, writes={"y"}, reads={"x"}))
        assert not result.committed
        assert result.reason == "rw-conflict"

    def test_commit_table_survives_failover(self):
        rs = OracleReplicaSet(num_hosts=2)
        ts = rs.begin()
        result = rs.commit(req(ts, writes={"a"}))
        rs.wal.flush()
        rs.kill_active()
        table = rs.active_host().oracle.commit_table
        assert table.commit_timestamp(ts) == result.commit_ts

    def test_timestamps_never_reissued_across_failovers(self):
        rs = OracleReplicaSet(num_hosts=3)
        seen = set()
        for round_no in range(3):
            for _ in range(5):
                ts = rs.begin()
                assert ts not in seen
                seen.add(ts)
                result = rs.commit(req(ts, writes={f"r{ts}"}))
                if result.commit_ts is not None:
                    assert result.commit_ts not in seen
                    seen.add(result.commit_ts)
            if round_no < 2:
                rs.kill_active()

    def test_unflushed_commits_lost_consistently(self):
        # Records still in the leader's batch buffer die with it: the new
        # leader neither knows the commit nor the conflict it implied.
        # engine pinned: the last_commit probe is oracle white-box.
        rs = OracleReplicaSet(num_hosts=2, engine="oracle")
        ts = rs.begin()
        rs.commit(req(ts, writes={"x"}))  # buffered, never flushed
        rs.kill_active()
        new_oracle = rs.active_host().oracle
        assert new_oracle.last_commit("x") is None

    def test_failover_counter(self):
        rs = OracleReplicaSet(num_hosts=3)
        rs.kill_active()
        rs.kill_active()
        assert rs.failovers == 2
        assert rs.alive_count() == 1


class TestRecoveredServiceContinuity:
    def test_traffic_continues_after_failover(self):
        # engine pinned: the last_commit probes are oracle white-box.
        rs = OracleReplicaSet(num_hosts=2, level="wsi", engine="oracle")
        for i in range(10):
            ts = rs.begin()
            assert rs.commit(req(ts, writes={f"row{i}"})).committed
        rs.wal.flush()
        rs.kill_active()
        for i in range(10, 20):
            ts = rs.begin()
            assert rs.commit(req(ts, writes={f"row{i}"})).committed
        oracle = rs.active_host().oracle
        # full lastCommit coverage: pre- and post-failover writes
        assert oracle.last_commit("row0") is not None
        assert oracle.last_commit("row19") is not None

    def test_si_replica_set(self):
        rs = OracleReplicaSet(num_hosts=2, level="si")
        t1, t2 = rs.begin(), rs.begin()
        assert rs.commit(req(t1, writes={"x"})).committed
        rs.wal.flush()
        rs.kill_active()
        assert not rs.commit(req(t2, writes={"x"})).committed  # ww-conflict


class TestSingleReplayPass:
    """Regression: cold takeover used to replay the WAL twice — once
    just to count records, once to apply them — doubling exactly the
    recovery cost failover cares about.  ``recover_from`` now applies
    and counts in one pass.
    """

    def test_cold_takeover_replays_exactly_once(self):
        rs = OracleReplicaSet(num_hosts=2, level="wsi")
        for i in range(20):
            assert rs.commit(req(rs.begin(), writes={f"row{i}"})).committed
        rs.wal.flush()
        calls = []
        real_replay = rs.wal.replay

        def counting_replay(*args, **kwargs):
            calls.append(1)
            return real_replay(*args, **kwargs)

        rs.wal.replay = counting_replay
        rs.kill_active()
        host = rs.active_host()
        assert len(calls) == 1
        assert host.recovered_records == sum(1 for _ in real_replay())

    def test_recovered_records_matches_durable_log(self):
        rs = OracleReplicaSet(num_hosts=3, level="wsi")
        for i in range(7):
            assert rs.commit(req(rs.begin(), writes={f"r{i}"})).committed
        rs.wal.flush()
        rs.kill_active()
        host = rs.active_host()
        assert host.recovered_records == sum(1 for _ in rs.wal.replay())
