"""Routing determinism: shard and block placement must not depend on the
process (satellite of the cross-partition batch protocol PR).

Python salts ``hash(str)`` per process (``PYTHONHASHSEED``), so any
placement derived from the builtin hash silently differs between
processes — a correctness bug for a distributed deployment of §6.3
footnote 6 (two frontends would route the same row to different
``lastCommit`` shards) and a reproducibility bug for every benchmark.
These tests pin the replacement, :func:`repro.core.sharding.stable_hash`,
and the routing built on it, including across subprocesses launched with
different ``PYTHONHASHSEED`` values.
"""

import os
import subprocess
import sys

import pytest

from repro.core.partitioned import PartitionedOracle
from repro.core.sharding import (
    DirectorySharding,
    HashSharding,
    RangeSharding,
    make_sharding,
    stable_hash,
)
from repro.hbase.region_server import BlockCache

FIXED_KEYS = [
    "row", "r0", "account:42", "user#9", "", "élève",
    0, 1, 7, 63, 64, 1_000_003, -5,
    b"bytes-key", ("compound", 3),
]


class TestStableHash:
    def test_deterministic_within_process(self):
        for key in FIXED_KEYS:
            assert stable_hash(key) == stable_hash(key)

    def test_non_negative(self):
        for key in FIXED_KEYS:
            assert stable_hash(key) >= 0

    def test_integers_hash_to_themselves(self):
        # Integer keyspaces shard exactly like row % num_partitions, so
        # benchmark workloads can construct a row for a target shard.
        assert stable_hash(12345) == 12345
        assert stable_hash(0) == 0
        assert stable_hash(-7) == 7

    def test_known_string_values_pinned(self):
        # CRC-32 of the UTF-8 bytes: pin two values so any change to the
        # encoding rule is caught (these must never vary by process).
        import zlib

        assert stable_hash("row") == zlib.crc32(b"row")
        assert stable_hash(b"row") == zlib.crc32(b"row")
        assert stable_hash("row") == stable_hash(b"row")

    def test_spreads_over_partitions(self):
        buckets = {stable_hash(f"row{i}") % 4 for i in range(64)}
        assert buckets == {0, 1, 2, 3}

    def test_equal_keys_hash_equal_across_numeric_types(self):
        # Dict/set semantics make 2, 2.0, Decimal(2) and Fraction(2)
        # the SAME row key, so they must share a shard — exactly the
        # invariant builtin hash() guarantees for numbers.  A split
        # would route the "same" row to two lastCommit shards and miss
        # conflicts.
        from decimal import Decimal
        from fractions import Fraction

        for a, b in [
            (2, 2.0),
            (2, Decimal(2)),
            (2, Fraction(2)),
            (1, True),
            (0, False),
            (-7, -7.0),
            (2**64, 2.0**64),  # above the int-identity bound
            ((1,), (1.0,)),  # equal tuples with mixed element types
            (("k", 2, (3,)), ("k", 2.0, (3.0,))),  # nested
        ]:
            assert a == b
            assert stable_hash(a) == stable_hash(b), (a, b)

    def test_mixed_numeric_types_conflict_like_a_monolith(self):
        # The end-to-end consequence of the invariant above: a write to
        # row 2.0 must conflict with a concurrent write to row 2 under
        # the partitioned oracle exactly as under a monolithic one.
        from repro.core.status_oracle import CommitRequest, make_oracle

        def drive(oracle):
            t_old = oracle.begin()
            t_new = oracle.begin()
            assert oracle.commit(
                CommitRequest(t_new, write_set=frozenset({2.0}))
            ).committed
            return oracle.commit(
                CommitRequest(t_old, write_set=frozenset({2}))
            ).committed

        mono = drive(make_oracle("si"))
        part = drive(PartitionedOracle(level="si", num_partitions=4))
        assert part == mono is False


def _routing_fingerprint():
    """Shard + block placement of the fixed keys — under every sharding
    policy — as one string."""
    oracle = PartitionedOracle(level="wsi", num_partitions=5)
    cache = BlockCache(capacity_blocks=4)
    shards = [oracle.partition_of(key) for key in FIXED_KEYS]
    blocks = [cache.block_of(key) for key in FIXED_KEYS]
    range_policy = RangeSharding(keyspace=1024)
    directory = DirectorySharding(
        {"row": 3, 63: 1}, fallback=RangeSharding(keyspace=1024)
    )
    policy_shards = [
        policy.partition_of(key, 5)
        for policy in (HashSharding(), range_policy, directory)
        for key in FIXED_KEYS
    ]
    policy_blocks = [
        BlockCache(capacity_blocks=4, sharding=range_policy).block_of(key)
        for key in FIXED_KEYS
    ]
    return ",".join(map(str, shards + blocks + policy_shards + policy_blocks))


SUBPROCESS_SNIPPET = """
import sys
sys.path.insert(0, {src!r})
from tests.core.test_sharding import _routing_fingerprint
sys.stdout.write(_routing_fingerprint())
"""


class TestRoutingIsProcessIndependent:
    @pytest.mark.parametrize("hashseed", ["0", "1", "31337"])
    def test_same_routing_under_any_pythonhashseed(self, hashseed):
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        src = os.path.join(repo_root, "src")
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = repo_root + os.pathsep + src
        out = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_SNIPPET.format(src=src)],
            env=env,
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout == _routing_fingerprint()

    def test_pluggable_hash_fn(self):
        oracle = PartitionedOracle(
            level="si", num_partitions=4, hash_fn=lambda row: 2
        )
        for key in FIXED_KEYS:
            assert oracle.partition_of(key) == 2
        cache = BlockCache(capacity_blocks=4, hash_fn=lambda row: 128)
        assert cache.block_of("anything") == 128 // 64


class TestShardingPolicies:
    """Placement determinism and semantics of the policy hierarchy
    (the pluggable-executor PR's locality lever).  Process-independence
    of all three policies rides the subprocess fingerprint above."""

    def test_hash_sharding_matches_bare_hash_fn(self):
        policy = HashSharding()
        legacy = PartitionedOracle(level="si", num_partitions=5)
        with_policy = PartitionedOracle(
            level="si", num_partitions=5, sharding=policy
        )
        for key in FIXED_KEYS:
            assert with_policy.partition_of(key) == legacy.partition_of(key)
            assert policy.partition_of(key, 5) == stable_hash(key) % 5

    def test_range_sharding_contiguous_bands_in_key_order(self):
        policy = RangeSharding(keyspace=100)
        pids = [policy.partition_of(row, 4) for row in range(100)]
        assert pids == sorted(pids)  # bands are contiguous, in key order
        assert set(pids) == {0, 1, 2, 3}
        assert pids.count(0) == pids.count(3) == 25  # equal bands
        # at/above the keyspace clamps into the last band (inserts keep
        # appending locally); non-integers take the fallback
        assert policy.partition_of(100, 4) == 3
        assert policy.partition_of(10 ** 9, 4) == 3
        assert policy.partition_of("row", 4) == HashSharding().partition_of(
            "row", 4
        )

    def test_range_sharding_equal_numeric_keys_share_a_band(self):
        from decimal import Decimal
        from fractions import Fraction

        policy = RangeSharding(keyspace=100)
        # Equal keys are ONE row key across numeric types (the
        # stable_hash invariant): every equal form must take the same
        # band as the int, or a conflict on the "same" row would be
        # checked against two lastCommit shards and missed.
        for a, b in [
            (True, 1),
            (False, 0),
            (10.0, 10),
            (Decimal(10), 10),
            (Fraction(10), 10),
            (99.0, 99),
            (-5.0, -5),  # negatives agree through the fallback
            (10.5, Fraction(21, 2)),  # equal non-integrals agree too
        ]:
            assert a == b
            assert policy.partition_of(a, 4) == policy.partition_of(b, 4), (
                a,
                b,
            )
        # nan/inf route through the fallback without raising
        assert 0 <= policy.partition_of(float("nan"), 4) < 4
        assert 0 <= policy.partition_of(float("inf"), 4) < 4

    def test_range_sharding_keeps_consecutive_rows_in_one_block(self):
        cache = BlockCache(capacity_blocks=4, sharding=RangeSharding(10_000))
        assert cache.block_of(0) == cache.block_of(63)
        assert cache.block_of(64) == cache.block_of(0) + 1

    def test_directory_sharding_pins_override_fallback(self):
        policy = DirectorySharding({7: 2})
        policy.pin(range(100, 110), 1)
        assert policy.partition_of(7, 4) == 2
        for row in range(100, 110):
            assert policy.partition_of(row, 4) == 1
        # pinned ids apply modulo the live partition count
        assert policy.partition_of(7, 2) == 0
        # unmapped keys take the fallback (hash by default)
        assert policy.partition_of("other", 4) == HashSharding().partition_of(
            "other", 4
        )
        assert policy.pinned_count == 11

    def test_directory_sharding_aligns_grouped_oracle_traffic(self):
        # the end-to-end point: pin two key groups to partitions and a
        # transaction inside one group is single-partition outright
        from repro.core.status_oracle import CommitRequest

        policy = DirectorySharding()
        policy.pin([0, 1, 2], 0).pin([3, 4, 5], 1)
        oracle = PartitionedOracle(
            level="si", num_partitions=4, sharding=policy
        )
        assert oracle.commit(
            CommitRequest(oracle.begin(), write_set=frozenset({0, 1, 2}))
        ).committed
        assert oracle.commit(
            CommitRequest(oracle.begin(), write_set=frozenset({3, 4, 5}))
        ).committed
        assert oracle.cross_partition_fraction() == 0.0
        assert oracle.single_partition_commits == 2

    def test_decisions_identical_across_policies(self):
        # Placement never changes decisions, only traffic shape: the
        # same script decides identically under all three policies.
        from repro.core.status_oracle import CommitRequest

        def drive(oracle):
            outcomes = []
            starts = [oracle.begin() for _ in range(8)]
            for i, start in enumerate(starts):
                result = oracle.commit(
                    CommitRequest(
                        start,
                        write_set=frozenset({i % 4, i % 4 + 1}),
                        read_set=frozenset({i % 3}),
                    )
                )
                outcomes.append((result.committed, result.commit_ts))
            return outcomes

        policies = [
            HashSharding(),
            RangeSharding(keyspace=16),
            DirectorySharding({i: i % 3 for i in range(8)}),
        ]
        runs = [
            drive(PartitionedOracle(level="wsi", num_partitions=3, sharding=p))
            for p in policies
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_make_sharding_factory(self):
        assert isinstance(make_sharding(), HashSharding)
        assert isinstance(make_sharding("hash"), HashSharding)
        assert isinstance(make_sharding("range", keyspace=10), RangeSharding)
        directory = make_sharding("directory", directory={1: 0})
        assert isinstance(directory, DirectorySharding)
        assert directory.partition_of(1, 4) == 0
        policy = RangeSharding(8)
        assert make_sharding(policy) is policy
        with pytest.raises(ValueError, match="needs keyspace"):
            make_sharding("range")
        with pytest.raises(ValueError, match="unknown sharding"):
            make_sharding("consistent-hashing")

    def test_mutually_exclusive_args(self):
        with pytest.raises(ValueError, match="not both"):
            PartitionedOracle(
                hash_fn=lambda r: 0, sharding=HashSharding()
            )
        with pytest.raises(ValueError, match="not both"):
            BlockCache(4, hash_fn=lambda r: 0, sharding=HashSharding())
