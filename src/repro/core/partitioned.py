"""Partitioned status oracles: the paper's scale-out footnote, implemented.

§6.3, footnote 6: "the reported performance is for one status oracle
implemented on a simple dual-core machine.  To get a higher throughput,
one could partition the database and use a status oracle for each
partition."

:class:`PartitionedOracle` shards the ``lastCommit`` state by row hash
across N independent conflict-detection partitions while keeping a
single shared timestamp oracle, so timestamps still form one global
commit order and snapshot semantics are unchanged.  Commit handling:

* a transaction whose footprint touches **one** partition is decided by
  that partition alone — the common case the footnote envisions, and
  the source of the throughput scaling;
* a **cross-partition** transaction runs a two-phase decision: every
  involved partition checks its share of the rows (phase 1); only if
  *all* pass is the commit timestamp assigned and every partition's
  ``lastCommit`` updated (phase 2).  Because checks precede any update
  and the commit timestamp is allocated once, the outcome is identical
  to what a single monolithic oracle would decide — a property the test
  suite checks by differential execution.

The isolation policy (which rows are checked) is inherited per-partition
from the usual SI/WSI oracles, so the partitioned deployment serves
either level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.core.commit_table import CommitTable
from repro.core.errors import OracleClosed
from repro.core.status_oracle import (
    CommitRequest,
    CommitResult,
    OracleStats,
    StatusOracle,
    make_oracle,
)
from repro.core.timestamps import TimestampOracle

RowKey = Hashable


class PartitionedOracle:
    """N conflict-detection partitions behind one timestamp oracle.

    Exposes the same ``begin`` / ``commit`` / ``abort`` surface as
    :class:`~repro.core.status_oracle.StatusOracle`, so the transaction
    client and the benchmarks can use it interchangeably.
    """

    def __init__(
        self,
        level: str = "wsi",
        num_partitions: int = 4,
        timestamp_oracle: Optional[TimestampOracle] = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.level = level
        self._tso = timestamp_oracle or TimestampOracle()
        # Every partition shares the TSO (one global commit order) and
        # gets its own lastCommit + stats; their private commit tables
        # are unused — the partitioned deployment keeps one authoritative
        # commit table, like the monolithic oracle.
        self.partitions: List[StatusOracle] = [
            make_oracle(level, timestamp_oracle=self._tso)
            for _ in range(num_partitions)
        ]
        self.commit_table = CommitTable()
        self.stats = OracleStats()
        self.cross_partition_commits = 0
        self.single_partition_commits = 0
        self._closed = False

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def partition_of(self, row: RowKey) -> int:
        return hash(row) % len(self.partitions)

    def _split(self, rows: FrozenSet[RowKey]) -> Dict[int, Set[RowKey]]:
        shares: Dict[int, Set[RowKey]] = {}
        for row in rows:
            shares.setdefault(self.partition_of(row), set()).add(row)
        return shares

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    def begin(self) -> int:
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")
        return self._tso.next()

    def commit(self, request: CommitRequest) -> CommitResult:
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")

        # Read-only fast path, identical to the monolithic oracle (§5.1).
        if request.is_read_only and not request.read_set:
            self.stats.commits += 1
            self.stats.read_only_commits += 1
            return CommitResult(True, request.start_ts, commit_ts=None)

        check_shares = self._split(self._rows_to_check(request))
        write_shares = self._split(request.write_set)
        involved = set(check_shares) | set(write_shares)

        # Phase 1: every involved partition validates its share.  For SI
        # the checked rows are the write share (== check share); for WSI
        # the read share — partition.rows_to_check dispatches correctly.
        for pid in sorted(involved):
            partition = self.partitions[pid]
            share_request = CommitRequest(
                request.start_ts,
                write_set=frozenset(write_shares.get(pid, ())),
                read_set=(
                    frozenset(check_shares.get(pid, ()))
                    if self.level == "wsi"
                    else frozenset()
                ),
            )
            conflict = partition._check(share_request)
            if conflict is not None:
                reason, row = conflict
                self.stats.aborts += 1
                self.stats.conflict_aborts += 1
                self.commit_table.record_abort(request.start_ts)
                return CommitResult(
                    False, request.start_ts, reason=reason, conflict_row=row
                )

        # Phase 2: decision is commit — assign Tc once, install shares.
        commit_ts = self._tso.next()
        for pid, rows in write_shares.items():
            self.partitions[pid]._install(rows, commit_ts)
            self.stats.rows_updated += len(rows)
        self.commit_table.record_commit(request.start_ts, commit_ts)
        self.stats.commits += 1
        if len(involved) > 1:
            self.cross_partition_commits += 1
        else:
            self.single_partition_commits += 1
        return CommitResult(True, request.start_ts, commit_ts=commit_ts)

    def abort(self, start_ts: int) -> None:
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")
        self.commit_table.record_abort(start_ts)
        self.stats.aborts += 1

    def _rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        if self.level == "si":
            return request.write_set
        return request.read_set

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def last_commit(self, row: RowKey) -> Optional[int]:
        return self.partitions[self.partition_of(row)].last_commit(row)

    @property
    def timestamp_oracle(self) -> TimestampOracle:
        return self._tso

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def cross_partition_fraction(self) -> float:
        total = self.cross_partition_commits + self.single_partition_commits
        return self.cross_partition_commits / total if total else 0.0

    def close(self) -> None:
        self._closed = True
