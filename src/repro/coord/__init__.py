"""Coordination substrate: ZooKeeper-style service + oracle failover.

Public surface:

* :class:`ZooKeeper` / :class:`Session` — znodes, ephemerals,
  sequentials, one-shot watches.
* :class:`LeaderElection` — the standard recipe (predecessor watching).
* :class:`OracleReplicaSet` / :class:`OracleHost` — replicated commit
  engine with election-driven WAL-recovery failover (Appendix A); the
  ``engine=`` knob replicates any
  :func:`~repro.core.engine.make_engine` protocol.
* :class:`CatchUpCadence` — clock-driven warm-standby poll scheduling.
"""

from repro.coord.failover import CatchUpCadence, OracleHost, OracleReplicaSet
from repro.coord.zookeeper import (
    BadVersionError,
    EventType,
    LeaderElection,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    Session,
    SessionExpiredError,
    WatchEvent,
    ZKError,
    ZooKeeper,
)

__all__ = [
    "ZooKeeper",
    "Session",
    "LeaderElection",
    "WatchEvent",
    "EventType",
    "ZKError",
    "NoNodeError",
    "NodeExistsError",
    "NotEmptyError",
    "BadVersionError",
    "SessionExpiredError",
    "OracleReplicaSet",
    "OracleHost",
    "CatchUpCadence",
]
