"""The standard YCSB core workloads (A–F), transactionalized.

The paper benchmarks with a modified YCSB [11]; §6.1 defines its own
read-only / complex transaction types, which :mod:`repro.workload.generator`
implements.  For downstream users, this module additionally provides the
*standard* YCSB core workload presets, adapted the same way the paper
adapted YCSB — each logical operation becomes part of a multi-row
transaction of ``n ~ U[0, max_rows]`` operations:

========  =========================  ======================  ============
workload  operation mix              distribution            paper analog
========  =========================  ======================  ============
A         50 % read / 50 % update    zipfian                 "complex"
B         95 % read / 5 % update     zipfian                 —
C         100 % read                 zipfian                 "read-only"
D         95 % read / 5 % insert     latest                  Fig. 9/10 mix
E         95 % scan / 5 % insert     zipfian (scan starts)   §5.2 traffic
F         50 % read / 50 % RMW       zipfian                 —
========  =========================  ======================  ============

A *scan* op is expanded into ``scan_length`` consecutive row reads
(matching how the paper's status oracle sees search-condition reads:
"the rows that are actually read", §5); an *insert* writes a fresh row
above the load frontier; *read-modify-write* contributes the row to both
the read and the write set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.workload.distributions import KeyDistribution, LatestDistribution, make_distribution
from repro.workload.generator import OperationSpec, TransactionSpec

DEFAULT_SCAN_LENGTH = 16


@dataclass(frozen=True)
class YCSBMix:
    """Operation-type probabilities for one core workload."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"workload {self.name}: mix sums to {total}, not 1")


CORE_WORKLOADS: Dict[str, YCSBMix] = {
    "A": YCSBMix("A", read=0.5, update=0.5),
    "B": YCSBMix("B", read=0.95, update=0.05),
    "C": YCSBMix("C", read=1.0),
    "D": YCSBMix("D", read=0.95, insert=0.05, distribution="zipfianLatest"),
    "E": YCSBMix("E", scan=0.95, insert=0.05),
    "F": YCSBMix("F", read=0.5, rmw=0.5),
}


class YCSBWorkload:
    """Transaction-spec stream for one core workload preset.

    Args:
        name: 'A' … 'F'.
        keyspace: initially loaded row count (inserts go above it).
        max_rows: transaction size bound, ``n ~ U[0, max_rows]`` (§6.1).
        scan_length: rows per scan operation (workload E).
        seed: RNG seed for reproducibility.
    """

    def __init__(
        self,
        name: str,
        keyspace: int = 1_000_000,
        max_rows: int = 20,
        scan_length: int = DEFAULT_SCAN_LENGTH,
        seed: Optional[int] = None,
    ) -> None:
        key = name.strip().upper()
        if key not in CORE_WORKLOADS:
            raise ValueError(
                f"unknown YCSB workload {name!r}; choose from "
                f"{sorted(CORE_WORKLOADS)}"
            )
        self.mix = CORE_WORKLOADS[key]
        self.keyspace = keyspace
        self.max_rows = max_rows
        self.scan_length = scan_length
        self._rng = random.Random(seed)
        self._keys: KeyDistribution = make_distribution(
            self.mix.distribution, keyspace, seed=self._rng.randrange(2 ** 63)
        )
        self._insert_frontier = keyspace  # fresh rows start here

    # ------------------------------------------------------------------
    def _draw_kind(self) -> str:
        u = self._rng.random()
        mix = self.mix
        for kind, p in (
            ("read", mix.read),
            ("update", mix.update),
            ("insert", mix.insert),
            ("scan", mix.scan),
        ):
            if u < p:
                return kind
            u -= p
        return "rmw"

    def next_transaction(self) -> TransactionSpec:
        n = self._rng.randint(0, self.max_rows)
        ops: List[OperationSpec] = []
        inserts = 0
        for _ in range(n):
            kind = self._draw_kind()
            if kind == "read":
                ops.append(OperationSpec("r", self._keys.next_key()))
            elif kind == "update":
                ops.append(OperationSpec("w", self._keys.next_key()))
            elif kind == "insert":
                ops.append(OperationSpec("w", self._insert_frontier))
                self._insert_frontier += 1
                inserts += 1
            elif kind == "scan":
                start = self._keys.next_key()
                for offset in range(self.scan_length):
                    row = start + offset
                    if row < self._insert_frontier:
                        ops.append(OperationSpec("r", row))
            else:  # rmw: the row enters both sets
                row = self._keys.next_key()
                ops.append(OperationSpec("r", row))
                ops.append(OperationSpec("w", row))
        if inserts and isinstance(self._keys, LatestDistribution):
            self._keys.advance(inserts)
        writes = any(op.kind == "w" for op in ops)
        return TransactionSpec(tuple(ops), read_only=not writes)

    def stream(self, count: int) -> Iterator[TransactionSpec]:
        for _ in range(count):
            yield self.next_transaction()

    def batch(self, count: int) -> List[TransactionSpec]:
        return list(self.stream(count))

    @property
    def name(self) -> str:
        return self.mix.name


def ycsb(name: str, **kwargs) -> YCSBWorkload:
    """Shorthand constructor: ``ycsb('A', keyspace=10_000, seed=1)``."""
    return YCSBWorkload(name, **kwargs)
