"""E10 (ablation) — Algorithm 3's memory/abort trade-off.

Appendix A keeps only the most recent ``NR`` committed rows in memory
plus ``Tmax``; transactions touching evicted rows with old snapshots
abort pessimistically.  The paper argues false positives are negligible
when ``Tmax - Ts >> MaxCommitTime`` (1 GB ≈ 32M rows ≈ 50 s of history
at 80K TPS).  This ablation sweeps the lastCommit capacity and measures
the extra (tmax) abort rate, reproducing that sizing argument in the
small.
"""

import pytest

from repro.bench import format_table
from repro.core.status_oracle import BoundedStatusOracle, CommitRequest
from repro.workload import complex_workload


def run_capacity_sweep():
    capacities = [64, 256, 1024, 4096, 16384]
    rows_touched = 16384
    results = []
    for cap in capacities:
        oracle = BoundedStatusOracle(policy="wsi", max_rows=cap)
        wl = complex_workload(distribution="uniform", keyspace=rows_touched, seed=23)
        # moderate concurrency: 16 open transactions
        open_txns = []
        import random

        rng = random.Random(24)
        for spec in wl.stream(4000):
            if len(open_txns) >= 16:
                start_ts, w, r = open_txns.pop(rng.randrange(len(open_txns)))
                oracle.commit(CommitRequest(start_ts, write_set=w, read_set=r))
            open_txns.append(
                (
                    oracle.begin(),
                    frozenset(spec.write_rows),
                    frozenset(spec.read_rows),
                )
            )
        while open_txns:
            start_ts, w, r = open_txns.pop()
            oracle.commit(CommitRequest(start_ts, write_set=w, read_set=r))
        results.append((cap, oracle))
    return results


@pytest.mark.figure("ablation-tmax")
def test_e10_tmax_capacity_ablation(benchmark, print_header):
    results = benchmark.pedantic(run_capacity_sweep, rounds=1, iterations=1)
    print_header("E10 — Algorithm 3 ablation: lastCommit capacity vs tmax aborts")
    rows = []
    for cap, oracle in results:
        stats = oracle.stats
        rows.append(
            (
                cap,
                f"{cap * 32 / 1024:.0f} KB",
                stats.commits,
                stats.tmax_aborts,
                f"{100 * stats.tmax_aborts / stats.total_requests:.2f}%",
                oracle.tmax,
            )
        )
    print(
        format_table(
            ["capacity", "memory", "commits", "tmax aborts", "tmax abort %", "Tmax"],
            rows,
            title="uniform complex workload, 16K-row keyspace, 16 open txns",
        )
    )
    tmax_rates = [
        oracle.stats.tmax_aborts / oracle.stats.total_requests
        for _, oracle in results
    ]
    # Shape: pessimistic aborts shrink monotonically (within noise) as
    # memory grows, and vanish when lastCommit covers the keyspace.
    assert tmax_rates[0] > tmax_rates[-1]
    assert tmax_rates[-1] < 0.005
    # With the Appendix-A-style headroom (capacity == keyspace) there are
    # effectively no false positives.
    assert results[-1][1].stats.tmax_aborts <= results[0][1].stats.tmax_aborts
