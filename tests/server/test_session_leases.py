"""Per-session begin leases: each session refills a private block via
``begin_many``, sharding the frontend's single local lease for
thread-per-session use (the ROADMAP's remaining begin-side lever).

The invariants mirror the frontend-lease tests: no timestamp is ever
served twice across any mix of sessions and lease sizes, decisions are
identical at any lease size, lease refills batch the frontend traffic,
and dropping a session only ever leaves gaps.
"""

import pytest

from repro.core.partitioned import PartitionedOracle
from repro.core.status_oracle import make_oracle
from repro.server import OracleFrontend


def make_frontend(begin_lease=1, backend=None):
    return OracleFrontend(
        backend or make_oracle("wsi"), max_batch=8, begin_lease=begin_lease
    )


class TestSessionLease:
    def test_default_is_per_call(self):
        frontend = make_frontend()
        session = frontend.session()
        assert session.lease_remaining == 0
        first = session.begin()
        assert session.lease_remaining == 0  # no block was taken
        assert session.begin() == first + 1

    def test_leased_begins_are_sequential_and_unique(self):
        frontend = make_frontend()
        session = frontend.session(begin_lease=5)
        starts = [session.begin() for _ in range(12)]
        assert starts == sorted(starts)
        assert len(set(starts)) == 12
        # 12 begins at lease 5: two full blocks plus 2 of the third
        assert session.lease_remaining == 3

    def test_one_begin_many_refill_per_lease(self):
        backend = make_oracle("wsi")
        frontend = OracleFrontend(backend, max_batch=8, begin_lease=5)
        session = frontend.session(begin_lease=5)
        session.begin()
        # the session block came from one frontend.begin_many, which
        # itself leased once from the backend
        assert frontend.stats.begin_leases == 1
        for _ in range(4):
            session.begin()
        assert frontend.stats.begin_leases == 1  # still the first block

    def test_sessions_never_share_a_timestamp(self):
        frontend = make_frontend(begin_lease=4)
        sessions = [frontend.session(begin_lease=n) for n in (1, 3, 7)]
        starts = []
        for round_ in range(10):
            for session in sessions:
                starts.append(session.begin())
        assert len(set(starts)) == len(starts)

    def test_begin_many_drains_lease_then_leases_shortfall(self):
        frontend = make_frontend()
        session = frontend.session(begin_lease=4)
        session.begin()  # takes a block of 4, serves 1
        assert session.lease_remaining == 3
        starts = session.begin_many(5)
        assert len(starts) == 5
        assert session.lease_remaining == 0  # exact shortfall, no refill
        assert len(set(starts)) == 5
        assert session.open_count == 6

    def test_commit_targets_leased_transactions(self):
        frontend = make_frontend(begin_lease=4)
        session = frontend.session(begin_lease=4)
        first = session.begin()
        second = session.begin()
        fut_first = session.commit(write_set=["a"], start_ts=first)
        fut_second = session.commit(write_set=["b"], start_ts=second)
        frontend.flush()
        assert fut_first.committed and fut_second.committed
        assert fut_second.commit_ts > fut_first.commit_ts

    def test_release_lease_leaves_gaps_never_reuse(self):
        frontend = make_frontend()
        session = frontend.session(begin_lease=8)
        session.begin()
        dropped = session.release_lease()
        assert dropped == 7
        assert session.lease_remaining == 0
        # the next begin (any session) is above the dropped block
        assert frontend.begin() > 8

    def test_decisions_identical_when_begins_precede_commits(self):
        # The prologue shape of the frontend-lease equivalence suite:
        # with every begin issued before any commit, decisions are
        # identical at every lease size.  (Interleaved begins may decide
        # differently by design — a lease-served begin carries the
        # snapshot of its refill time; see the module docstrings.)
        def drive(begin_lease):
            frontend = make_frontend()
            session = frontend.session(begin_lease=begin_lease)
            starts = [session.begin() for _ in range(10)]
            outcomes = []
            for i, start in enumerate(starts):
                future = session.commit(
                    write_set=[i % 3], read_set=[(i + 1) % 3], start_ts=start
                )
                frontend.flush()
                outcomes.append(future.outcome())
            return outcomes

        assert drive(1) == drive(4) == drive(32)

    def test_session_lease_over_partitioned_backend(self):
        oracle = PartitionedOracle(level="wsi", num_partitions=3)
        frontend = OracleFrontend(oracle, max_batch=4)
        session = frontend.session(begin_lease=6)
        starts = [session.begin() for _ in range(9)]
        assert len(set(starts)) == 9
        future = session.commit(write_set=[1, 2, 3], start_ts=starts[-1])
        frontend.flush()
        assert future.committed
        frontend.close()

    def test_closed_frontend_refuses_leased_begins(self):
        # The frontend empties its own lease on close so begin() hits
        # the closed check; a session's private block must not dodge
        # that guard — otherwise it opens transactions that can never
        # be submitted.
        from repro.core.errors import OracleClosed

        frontend = make_frontend()
        session = frontend.session(begin_lease=8)
        session.begin()
        assert session.lease_remaining == 7
        frontend.close()
        with pytest.raises(OracleClosed):
            session.begin()
        with pytest.raises(OracleClosed):
            session.begin_many(2)
        assert session.open_count == 1  # nothing new was opened
        assert session.release_lease() == 7  # remainder becomes a gap

    def test_bad_lease_sizes_rejected(self):
        frontend = make_frontend()
        with pytest.raises(ValueError):
            frontend.session(begin_lease=0)
        session = frontend.session(begin_lease=2)
        with pytest.raises(ValueError):
            session.begin_many(0)
