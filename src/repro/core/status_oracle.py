"""The status oracle: centralized, lock-free conflict detection.

This module implements the paper's three commit algorithms:

* **Algorithm 1** (§2.2) — snapshot isolation.  The commit request carries
  the *write set* ``R``; the oracle aborts if any written row has
  ``lastCommit(r) > Ts(txn)``, else assigns ``Tc`` and updates
  ``lastCommit`` for every written row.
* **Algorithm 2** (§5) — write-snapshot isolation.  The commit request
  carries both the write set ``Rw`` and the read set ``Rr``; the oracle
  checks ``lastCommit`` over the **read** rows and, on commit, updates it
  over the **write** rows.
* **Algorithm 3** (Appendix A) — the bounded-memory refinement used by the
  real Omid deployment: ``lastCommit`` keeps only the most recent rows
  that fit in memory plus ``Tmax``, the maximum timestamp evicted; a row
  missing from memory with ``Tmax > Ts(txn)`` aborts *pessimistically*.

The diff between Algorithms 1 and 2 is deliberately tiny — which rows are
checked, and nothing else — making the paper's claim that "the changes
into the implementation of snapshot isolation ... are a few" (§5) literal
in this code: compare :meth:`SnapshotIsolationOracle.rows_to_check`
against :meth:`WriteSnapshotIsolationOracle.rows_to_check`.

The oracle is single-threaded by construction ("the current implementation
of status oracle executes the conflict detection algorithm in a critical
section", §6.3); callers that want concurrency model it *around* the
oracle (see :mod:`repro.sim`).

Two request surfaces share the same semantics: :meth:`StatusOracle.commit`
decides one request at a time (one WAL record per decision), and
:meth:`StatusOracle.decide_batch` decides a whole group-commit batch in a
single bulk pass persisted as one group-commit record — the hot path the
:mod:`repro.server` frontend flushes through (see that package's
docstring for where the time goes).

**Hot path.**  The batch decide loop is the single-node ceiling, and it
exists in two representations behind the same decisions (selected by
``REPRO_LASTCOMMIT`` / ``make_oracle(..., lastcommit=...)``; see
:mod:`repro.core.lastcommit`):

* ``dict`` (default) — :meth:`StatusOracle._decide_batch_fast`: one
  C-speed ``keys().isdisjoint`` sweep per request filters the common
  never-written case; only requests whose checked rows intersect
  ``lastCommit`` pay the per-row probe scan.  Installs are one
  ``dict.update(dict.fromkeys(ws, Tc))``.  Weakness: under a *warmed*
  keyspace (every checked row present), the prefilter always fails and
  each request degrades to N interpreted probe iterations.
* ``array`` — :meth:`StatusOracle._decide_batch_fast_array`: row keys
  are interned to dense ids (:class:`~repro.core.keyspace.KeyInterner`)
  and timestamps live in a flat ``array('q')``.  Each conflict check is
  one :meth:`~repro.core.lastcommit.ArrayLastCommit.scan_conflict`
  call: for plain non-negative int row keys (the interner's *int lane*)
  a fully vectorised numpy sweep — key array -> slot-id gather ->
  timestamp gather -> one ``max(...) > Ts`` compare, zero per-row
  interpreted work; otherwise a C-level ``itemgetter`` double gather
  over the id map and timestamp array.  Only a *suspected* conflict
  rescans scalar-wise (in the same frozenset order, so the reported
  conflict row and ``rows_checked`` match the dict backend
  bit-for-bit).  Installs intern the write set once and store into
  flat slots.

Benchmark E18 pins the batching win itself; E24 pins the array backend
at >= 2x the dict backend on warmed batch-128 decides and measures the
per-entry footprint of both; the hypothesis equivalence suites pin
array == dict across decisions, commit timestamps, WAL replay and
recovery.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.core.commit_table import CommitTable
from repro.core.engine import CommitEngine
from repro.core.errors import OracleClosed, RecoveryError
from repro.core.lastcommit import ArrayLastCommit, make_lastcommit
from repro.core.timestamps import TimestampOracle
from repro.wal.bookkeeper import GROUP_COMMIT_RECORD, BookKeeperWAL

RowKey = Hashable

# Appendix A sizing: row id + start ts + commit ts at 8 bytes each, plus
# bookkeeping, is estimated at 32 bytes per lastCommit entry.
BYTES_PER_LASTCOMMIT_ENTRY = 32

#: Reason tag recorded for client-initiated (non-conflict) aborts in a
#: decision batch (re-exported by :mod:`repro.server`).
CLIENT_ABORT = "client-abort"


@dataclass(frozen=True)
class CommitRequest:
    """A client's commit request.

    Under SI only ``write_set`` matters; under WSI the oracle checks
    ``read_set`` and installs ``write_set``.  A read-only transaction
    submits both sets empty (§5.1) so the oracle commits it without any
    conflict computation or WAL write.
    """

    start_ts: int
    write_set: FrozenSet[RowKey] = frozenset()
    read_set: FrozenSet[RowKey] = frozenset()

    @property
    def is_read_only(self) -> bool:
        return not self.write_set


@dataclass(frozen=True)
class CommitResult:
    """Outcome of a commit request."""

    committed: bool
    start_ts: int
    commit_ts: Optional[int] = None
    reason: str = ""  # "" on commit; "ww-conflict"/"rw-conflict"/"tmax"
    conflict_row: Optional[RowKey] = None


@dataclass
class OracleStats:
    """Counters the benchmarks read off the oracle."""

    commits: int = 0
    aborts: int = 0
    read_only_commits: int = 0
    conflict_aborts: int = 0
    tmax_aborts: int = 0
    rows_checked: int = 0
    rows_updated: int = 0

    @property
    def total_requests(self) -> int:
        return self.commits + self.aborts

    @property
    def abort_rate(self) -> float:
        total = self.total_requests
        return self.aborts / total if total else 0.0


class StatusOracle(CommitEngine):
    """Base class: timestamp allocation, lastCommit state, WAL, stats.

    Subclasses choose which rows are *checked* against ``lastCommit`` and
    which rows *update* it — that single decision is the entire difference
    between snapshot isolation and write-snapshot isolation.

    The oracle is the reference implementation of the
    :class:`~repro.core.engine.CommitEngine` contract: the
    ``decide_batch`` / ``recover_from`` templates are inherited, and
    this class supplies the protocol-specific pieces (sequential
    commit/abort, the ``_decide_batch`` bulk loop, WAL record
    application, timestamp re-seeding).
    """

    #: isolation level tag ("si" or "wsi"); set by subclasses.
    level: str = "base"

    def __init__(
        self,
        timestamp_oracle: Optional[TimestampOracle] = None,
        wal: Optional[BookKeeperWAL] = None,
        naive_read_only: bool = False,
        lastcommit=None,
    ) -> None:
        #: Ablation switch (benchmark E16): when True, a read-only request
        #: that submitted a non-empty read set is checked like any other —
        #: the §1 "naive implementation".  The default enforces §4.1
        #: condition 3: an empty write set never aborts.
        self.naive_read_only = naive_read_only
        self._wal = wal
        if timestamp_oracle is None:
            # With a WAL attached, persist timestamp reservations so a
            # recovered instance never reissues a start timestamp
            # (Appendix A's batched-reservation protocol).
            wal_hook = self._log_ts_reservation if wal is not None else None
            timestamp_oracle = TimestampOracle(wal_append=wal_hook)
        self._tso = timestamp_oracle
        #: lastCommit store: plain dict (default), an ArrayLastCommit, or
        #: any backend ``make_lastcommit`` resolves — "dict"/"array"
        #: strings, a pre-built store instance, or None for the
        #: REPRO_LASTCOMMIT environment default.
        self._last_commit = make_lastcommit(lastcommit)
        self.commit_table = CommitTable()
        self.stats = OracleStats()
        self._closed = False

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    def rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        """Rows whose ``lastCommit`` is compared against ``Ts`` (line 1)."""
        raise NotImplementedError

    def rows_to_update(self, request: CommitRequest) -> FrozenSet[RowKey]:
        """Rows whose ``lastCommit`` is set to ``Tc`` on commit (line 7).

        Both algorithms update the *write* set: committed writes are what
        future transactions can conflict with.
        """
        return request.write_set

    # ------------------------------------------------------------------
    # the commit protocol
    # ------------------------------------------------------------------
    def begin(self) -> int:
        """Serve a start timestamp (the only oracle cost a read-only
        transaction ever pays, §5.1)."""
        if self._closed:
            raise OracleClosed("status oracle is closed")
        return self._tso.next()

    def lease(self, n: int) -> Tuple[int, int]:
        """Lease a contiguous block of ``n`` start timestamps.

        The begin-side amortization matching :meth:`decide_batch` on the
        commit side: a frontend serves ``begin()`` from the leased block
        with no oracle round-trip per transaction.  Durability rides the
        usual reservation protocol
        (:meth:`~repro.core.timestamps.TimestampOracle.lease`), so a
        leaseholder crash can only leave gaps, never reuse.
        """
        if self._closed:
            raise OracleClosed("status oracle is closed")
        return self._tso.lease(n)

    def commit(self, request: CommitRequest) -> CommitResult:
        """Process a commit request (Algorithms 1 and 2).

        Returns a :class:`CommitResult`; never raises for conflicts — an
        abort is a normal protocol outcome, and the *client* turns it into
        an exception if it wants one.
        """
        if self._closed:
            raise OracleClosed("status oracle is closed")

        # §4.1 condition 3 / §5.1: an empty write set can never conflict,
        # so a read-only transaction commits with no check, no commit
        # timestamp and no WAL record — even if the client submitted its
        # read set.  (``naive_read_only`` disables the exemption for the
        # E16 ablation.)
        if request.is_read_only and not (
            self.naive_read_only and request.read_set
        ):
            self.stats.commits += 1
            self.stats.read_only_commits += 1
            return CommitResult(True, request.start_ts, commit_ts=None)

        # Lines 1-5: conflict check against lastCommit.
        conflict = self._check(request)
        if conflict is not None:
            reason, row = conflict
            self.stats.aborts += 1
            self.stats.conflict_aborts += 1
            if reason == "tmax":
                self.stats.tmax_aborts += 1
                self.stats.conflict_aborts -= 1
            self.commit_table.record_abort(request.start_ts)
            self._log("abort", (request.start_ts,))
            return CommitResult(
                False, request.start_ts, reason=reason, conflict_row=row
            )

        # Line 6: assign the commit timestamp (inside the critical section,
        # which is why checking only lastCommit(r) > Ts suffices — no
        # later-committing transaction can slip between check and assign).
        commit_ts = self._tso.next()

        # Lines 7-9: install the write set.
        rows = self.rows_to_update(request)
        self._install(rows, commit_ts)
        self.stats.rows_updated += len(rows)

        self.commit_table.record_commit(request.start_ts, commit_ts)
        self.stats.commits += 1
        self._log("commit", (request.start_ts, commit_ts, tuple(rows)))
        return CommitResult(True, request.start_ts, commit_ts=commit_ts)

    def abort(self, start_ts: int) -> None:
        """Record a client-initiated abort (e.g. application rollback)."""
        if self._closed:
            raise OracleClosed("status oracle is closed")
        self.commit_table.record_abort(start_ts)
        self.stats.aborts += 1
        self._log("abort", (start_ts,))

    # ------------------------------------------------------------------
    # the batch-decide fast path (one critical section per batch).
    # ``decide_batch`` itself — the public template that wraps this
    # engine hook with group-record WAL persistence and error re-raise —
    # is inherited from :class:`~repro.core.engine.CommitEngine`.
    # ------------------------------------------------------------------
    def _decide_batch(self, batch, payload_commits, payload_aborts, errors,
                      results=None):
        """The batch decision engine behind :meth:`decide_batch` and
        :meth:`repro.server.OracleFrontend.flush`.

        ``batch`` items are ``CommitRequest`` (commit request), ``int``
        (client abort), or ``(CommitRequest | int, future)`` pairs — the
        frontend's submission format; futures get their outcome
        attributes written directly.  Decision payloads are appended to
        ``payload_commits`` / ``payload_aborts`` exactly as they must
        appear in a group-commit WAL record; per-request protocol errors
        go to ``errors`` (and the matching ``results`` slot is ``None``).
        Returns ``(commits, aborts, rows_checked, rows_updated)``.

        Plain SI/WSI oracles take the inlined loop; subclasses that
        refine ``_check``/``_install`` (the bounded oracle overrides this
        method entirely) go through their own hooks so policy semantics
        are preserved exactly.

        The per-outcome bookkeeping (commit-table error isolation,
        payload/future/result fills) is deliberately inlined in every
        engine — this loop, the array-backed twin below, the bounded
        override, the partitioned engine, and the frontend's
        per-request fallback — because a shared helper costs a Python
        call per decision on the measured hot path (benchmark E18).
        Change one, change all; the hypothesis equivalence suite pins
        decisions and stats across all of them.
        """
        if type(self) in (SnapshotIsolationOracle, WriteSnapshotIsolationOracle):
            lc = self._last_commit
            if lc.__class__ is dict:
                return self._decide_batch_fast(
                    batch, payload_commits, payload_aborts, errors, results
                )
            if lc.__class__ is ArrayLastCommit:
                return self._decide_batch_fast_array(
                    batch, payload_commits, payload_aborts, errors, results
                )
        return self._decide_batch_generic(
            batch, payload_commits, payload_aborts, errors, results
        )

    def _decide_batch_fast(self, batch, payload_commits, payload_aborts,
                           errors, results):
        """Inlined decision loop for plain SI/WSI oracles.

        Observationally equivalent to calling ``commit()`` / ``abort()``
        per item in batch order — same decisions, lastCommit/commit-table
        state, OracleStats and timestamp-reservation behaviour — but with
        locally-bound lookups, one C-speed ``isdisjoint`` sweep for the
        no-conflict common case, ``dict``-bulk write-set installs, and
        stats counted once per batch instead of once per row/request.
        """
        if self._closed:
            raise OracleClosed("status oracle is closed")
        tso = self._tso
        if tso._closed:
            raise OracleClosed("timestamp oracle is closed")
        lc = self._last_commit
        lc_get = lc.get
        lc_update = lc.update
        lc_isdisjoint = lc.keys().isdisjoint  # live view: sees batch installs
        fromkeys = dict.fromkeys
        ct = self.commit_table
        # Replicas subscribed to the commit table must see every decision,
        # so only bypass its record methods when nobody is listening.
        fast_ct = not ct._subscribers
        ct_commits = ct._commits
        ct_aborted = ct._aborted
        check_reads = self.level == "wsi"
        # §4.1 condition 3 short-circuit, unless the E16 ablation is on.
        exempt_ro = not self.naive_read_only
        reason_tag = "rw-conflict" if check_reads else "ww-conflict"
        pc_append = payload_commits.append
        pa_append = payload_aborts.append
        res_append = results.append if results is not None else None
        nxt = tso._next
        reserved = tso._reserved_until
        commits = conflict_aborts = client_aborts = ro_commits = issued = 0
        rows_checked = rows_updated = 0
        try:
            for item in batch:
                if item.__class__ is CommitRequest:
                    req = item  # nowait commit: no future to fill in
                    fut = None
                else:
                    if item.__class__ is tuple:
                        req, fut = item
                    else:
                        req, fut = item, None
                    if req.__class__ is not CommitRequest:
                        # client-initiated abort; req is the start timestamp
                        start = req
                        try:
                            if fast_ct:
                                if start in ct_commits:
                                    raise ValueError(
                                        f"txn {start} already committed; "
                                        "cannot abort"
                                    )
                                ct_aborted.add(start)
                            else:
                                ct.record_abort(start)
                        except Exception as exc:
                            # Protocol misuse is isolated to this request
                            # (the unbatched oracle raises at its call
                            # site); the rest of the batch decides on.
                            errors.append((start, exc))
                            if fut is not None:
                                fut._error = exc
                            if res_append is not None:
                                res_append(None)
                            continue
                        client_aborts += 1
                        pa_append(start)
                        if fut is not None:
                            fut._reason = CLIENT_ABORT
                        if res_append is not None:
                            res_append(
                                CommitResult(False, start, reason=CLIENT_ABORT)
                            )
                        continue
                start = req.start_ts
                ws = req.write_set
                if not ws and (exempt_ro or not req.read_set):
                    # §4.1 condition 3: an empty write set never aborts —
                    # no check, no commit timestamp, no WAL payload.
                    ro_commits += 1
                    if fut is not None:
                        fut._committed = True
                    if res_append is not None:
                        res_append(CommitResult(True, start, commit_ts=None))
                    continue
                rows = req.read_set if check_reads else ws
                conflict_row = None
                if rows:
                    if lc_isdisjoint(rows):
                        # No checked row was ever written (the common case
                        # under a large keyspace): the whole scan is one
                        # C-speed membership sweep.
                        rows_checked += len(rows)
                    else:
                        # Some checked row has a lastCommit entry: run the
                        # faithful first-conflict scan in frozenset order.
                        for row in rows:
                            rows_checked += 1
                            last = lc_get(row)
                            if last is not None and last > start:
                                conflict_row = row
                                break
                if conflict_row is not None:
                    try:
                        if fast_ct:
                            if start in ct_commits:
                                raise ValueError(
                                    f"txn {start} already committed; "
                                    "cannot abort"
                                )
                            ct_aborted.add(start)
                        else:
                            ct.record_abort(start)
                    except Exception as exc:
                        errors.append((start, exc))
                        if fut is not None:
                            fut._error = exc
                        if res_append is not None:
                            res_append(None)
                        continue
                    conflict_aborts += 1
                    pa_append(start)
                    if fut is not None:
                        fut._reason = reason_tag
                        fut._row = conflict_row
                    if res_append is not None:
                        res_append(
                            CommitResult(
                                False, start,
                                reason=reason_tag, conflict_row=conflict_row,
                            )
                        )
                    continue
                # commit: assign Tc (inlined tso.next with the same
                # reservation protocol), bulk-install the write set.
                if nxt > reserved:
                    tso._next = nxt
                    tso._reserve()
                    reserved = tso._reserved_until
                cts = nxt
                nxt += 1
                issued += 1
                lc_update(fromkeys(ws, cts))
                rows_updated += len(ws)
                try:
                    if fast_ct:
                        if cts <= start:
                            raise ValueError(
                                f"commit_ts {cts} must exceed start_ts {start}"
                            )
                        if start in ct_aborted:
                            raise ValueError(
                                f"txn {start} already aborted; cannot commit"
                            )
                        ct_commits[start] = cts
                    else:
                        ct.record_commit(start, cts)
                except Exception as exc:
                    # Same partial effects as the unbatched oracle, which
                    # installs the write set and consumes Tc before its
                    # commit-table write raises — but here the error stays
                    # with this request instead of killing the batch.
                    errors.append((start, exc))
                    if fut is not None:
                        fut._error = exc
                    if res_append is not None:
                        res_append(None)
                    continue
                commits += 1
                pc_append((start, cts, ws))
                if fut is not None:
                    fut._committed = True
                    fut._commit_ts = cts
                if res_append is not None:
                    res_append(CommitResult(True, start, commit_ts=cts))
        finally:
            # Keep oracle-visible state consistent even on a mid-batch
            # protocol error: timestamps consumed so far stay consumed.
            tso._next = nxt
            tso._issued += issued
            st = self.stats
            st.commits += commits + ro_commits
            st.read_only_commits += ro_commits
            st.aborts += conflict_aborts + client_aborts
            st.conflict_aborts += conflict_aborts
            st.rows_checked += rows_checked
            st.rows_updated += rows_updated
        return (
            commits + ro_commits,
            conflict_aborts + client_aborts,
            rows_checked,
            rows_updated,
        )

    def _decide_batch_fast_array(self, batch, payload_commits, payload_aborts,
                                 errors, results):
        """Inlined decision loop over an :class:`ArrayLastCommit` store.

        The third copy of the inlined bookkeeping (see
        :meth:`_decide_batch` — change one, change all): identical
        decisions, state, stats and reservation behaviour to
        :meth:`_decide_batch_fast`, but each conflict check delegates
        to :meth:`ArrayLastCommit.scan_conflict` — one bulk id gather
        + one timestamp gather + one ``max`` compare (the int lane or
        itemgetter chain) instead of a per-row dict probe scan — and
        installs intern the write set once and store into flat slots.
        ``scan_conflict`` guarantees the reported conflict row and the
        examined-row count match the dict loop exactly (first conflict
        in frozenset order; full count on a clean sweep), so the stats
        stay pinned by the equivalence suite.
        """
        if self._closed:
            raise OracleClosed("status oracle is closed")
        tso = self._tso
        if tso._closed:
            raise OracleClosed("timestamp oracle is closed")
        lc = self._last_commit
        interner = lc._interner
        ids_map = interner._ids
        intern_many = interner.intern_many
        keys_table = interner._keys
        scan = lc.scan_conflict
        ts_arr = lc._ts  # grows in place (frombytes): binding stays valid
        getter = itemgetter
        ct = self.commit_table
        # Replicas subscribed to the commit table must see every decision,
        # so only bypass its record methods when nobody is listening.
        fast_ct = not ct._subscribers
        ct_commits = ct._commits
        ct_aborted = ct._aborted
        check_reads = self.level == "wsi"
        # §4.1 condition 3 short-circuit, unless the E16 ablation is on.
        exempt_ro = not self.naive_read_only
        reason_tag = "rw-conflict" if check_reads else "ww-conflict"
        pc_append = payload_commits.append
        pa_append = payload_aborts.append
        res_append = results.append if results is not None else None
        nxt = tso._next
        reserved = tso._reserved_until
        commits = conflict_aborts = client_aborts = ro_commits = issued = 0
        rows_checked = rows_updated = fresh = 0
        try:
            for item in batch:
                if item.__class__ is CommitRequest:
                    req = item  # nowait commit: no future to fill in
                    fut = None
                else:
                    if item.__class__ is tuple:
                        req, fut = item
                    else:
                        req, fut = item, None
                    if req.__class__ is not CommitRequest:
                        # client-initiated abort; req is the start timestamp
                        start = req
                        try:
                            if fast_ct:
                                if start in ct_commits:
                                    raise ValueError(
                                        f"txn {start} already committed; "
                                        "cannot abort"
                                    )
                                ct_aborted.add(start)
                            else:
                                ct.record_abort(start)
                        except Exception as exc:
                            errors.append((start, exc))
                            if fut is not None:
                                fut._error = exc
                            if res_append is not None:
                                res_append(None)
                            continue
                        client_aborts += 1
                        pa_append(start)
                        if fut is not None:
                            fut._reason = CLIENT_ABORT
                        if res_append is not None:
                            res_append(
                                CommitResult(False, start, reason=CLIENT_ABORT)
                            )
                        continue
                start = req.start_ts
                ws = req.write_set
                if not ws and (exempt_ro or not req.read_set):
                    # §4.1 condition 3: an empty write set never aborts —
                    # no check, no commit timestamp, no WAL payload.
                    ro_commits += 1
                    if fut is not None:
                        fut._committed = True
                    if res_append is not None:
                        res_append(CommitResult(True, start, commit_ts=None))
                    continue
                rows = req.read_set if check_reads else ws
                conflict_row = None
                if rows:
                    conflict_row, examined = scan(rows, start)
                    rows_checked += examined
                if conflict_row is not None:
                    try:
                        if fast_ct:
                            if start in ct_commits:
                                raise ValueError(
                                    f"txn {start} already committed; "
                                    "cannot abort"
                                )
                            ct_aborted.add(start)
                        else:
                            ct.record_abort(start)
                    except Exception as exc:
                        errors.append((start, exc))
                        if fut is not None:
                            fut._error = exc
                        if res_append is not None:
                            res_append(None)
                        continue
                    conflict_aborts += 1
                    pa_append(start)
                    if fut is not None:
                        fut._reason = reason_tag
                        fut._row = conflict_row
                    if res_append is not None:
                        res_append(
                            CommitResult(
                                False, start,
                                reason=reason_tag, conflict_row=conflict_row,
                            )
                        )
                    continue
                # commit: assign Tc (inlined tso.next with the same
                # reservation protocol), intern + install the write set.
                if nxt > reserved:
                    tso._next = nxt
                    tso._reserve()
                    reserved = tso._reserved_until
                cts = nxt
                nxt += 1
                issued += 1
                try:
                    kids = getter(*ws)(ids_map)
                except KeyError:
                    # Unseen write rows: intern (deterministic id order
                    # for the new ones) and grow the slot array in place.
                    kids = intern_many(ws)
                    short = len(keys_table) - len(ts_arr)
                    if short > 0:
                        ts_arr.frombytes(bytes(short << 3))
                if kids.__class__ is tuple or kids.__class__ is list:
                    for kid in kids:
                        if ts_arr[kid] == 0:
                            fresh += 1
                        ts_arr[kid] = cts
                else:  # single-row write set: itemgetter returned the id
                    if ts_arr[kids] == 0:
                        fresh += 1
                    ts_arr[kids] = cts
                rows_updated += len(ws)
                try:
                    if fast_ct:
                        if cts <= start:
                            raise ValueError(
                                f"commit_ts {cts} must exceed start_ts {start}"
                            )
                        if start in ct_aborted:
                            raise ValueError(
                                f"txn {start} already aborted; cannot commit"
                            )
                        ct_commits[start] = cts
                    else:
                        ct.record_commit(start, cts)
                except Exception as exc:
                    errors.append((start, exc))
                    if fut is not None:
                        fut._error = exc
                    if res_append is not None:
                        res_append(None)
                    continue
                commits += 1
                pc_append((start, cts, ws))
                if fut is not None:
                    fut._committed = True
                    fut._commit_ts = cts
                if res_append is not None:
                    res_append(CommitResult(True, start, commit_ts=cts))
        finally:
            # Keep oracle-visible state consistent even on a mid-batch
            # protocol error: timestamps consumed so far stay consumed,
            # and the store's live-entry count reflects every install.
            lc._live += fresh
            tso._next = nxt
            tso._issued += issued
            st = self.stats
            st.commits += commits + ro_commits
            st.read_only_commits += ro_commits
            st.aborts += conflict_aborts + client_aborts
            st.conflict_aborts += conflict_aborts
            st.rows_checked += rows_checked
            st.rows_updated += rows_updated
        return (
            commits + ro_commits,
            conflict_aborts + client_aborts,
            rows_checked,
            rows_updated,
        )

    def _decide_batch_generic(self, batch, payload_commits, payload_aborts,
                              errors, results):
        """Hook-faithful loop for StatusOracle subclasses that refine
        ``_check``/``_install``: defers to the subclass's own methods so
        policy refinements keep their exact semantics."""
        if self._closed:
            raise OracleClosed("status oracle is closed")
        tso = self._tso
        ct = self.commit_table
        st = self.stats
        commits = aborts = rows_updated_total = 0
        rows_checked_before = st.rows_checked
        for item in batch:
            req, fut = item if item.__class__ is tuple else (item, None)
            result = None
            try:
                if req.__class__ is not CommitRequest:
                    ct.record_abort(req)
                    st.aborts += 1
                    aborts += 1
                    payload_aborts.append(req)
                    if fut is not None:
                        fut._reason = CLIENT_ABORT
                    result = CommitResult(False, req, reason=CLIENT_ABORT)
                    continue
                if not req.write_set and not (
                    self.naive_read_only and req.read_set
                ):
                    st.commits += 1
                    st.read_only_commits += 1
                    commits += 1
                    if fut is not None:
                        fut._committed = True
                    result = CommitResult(True, req.start_ts, commit_ts=None)
                    continue
                conflict = self._check(req)
                if conflict is not None:
                    reason, row = conflict
                    ct.record_abort(req.start_ts)
                    st.aborts += 1
                    st.conflict_aborts += 1
                    if reason == "tmax":
                        st.tmax_aborts += 1
                        st.conflict_aborts -= 1
                    aborts += 1
                    payload_aborts.append(req.start_ts)
                    if fut is not None:
                        fut._reason = reason
                        fut._row = row
                    result = CommitResult(
                        False, req.start_ts, reason=reason, conflict_row=row
                    )
                    continue
                cts = tso.next()
                rows = self.rows_to_update(req)
                self._install(rows, cts)
                st.rows_updated += len(rows)
                rows_updated_total += len(rows)
                ct.record_commit(req.start_ts, cts)
                st.commits += 1
                commits += 1
                payload_commits.append((req.start_ts, cts, rows))
                if fut is not None:
                    fut._committed = True
                    fut._commit_ts = cts
                result = CommitResult(True, req.start_ts, commit_ts=cts)
            except Exception as exc:
                start = req if req.__class__ is not CommitRequest else req.start_ts
                errors.append((start, exc))
                if fut is not None:
                    fut._error = exc
            finally:
                if results is not None:
                    results.append(result)
        rows_checked = st.rows_checked - rows_checked_before
        return commits, aborts, rows_checked, rows_updated_total

    # ------------------------------------------------------------------
    # lastCommit plumbing (overridden by the bounded oracle)
    # ------------------------------------------------------------------
    def _check(self, request: CommitRequest) -> Optional[Tuple[str, RowKey]]:
        # The lastCommit comparison is identical for every policy; only
        # the *rows* differ, and the reason tag follows from which rows
        # are checked (SI and SSI check writes, WSI checks reads).
        # ``rows_checked`` counts rows actually examined (a conflict stops
        # the scan) and is bumped once per request, not once per row.
        reason = "rw-conflict" if self.level == "wsi" else "ww-conflict"
        lc = self._last_commit
        start = request.start_ts
        if lc.__class__ is ArrayLastCommit:
            # Bulk gather + compare; scalar rescan on suspected conflict
            # keeps the examined count and conflict row dict-identical.
            row, examined = lc.scan_conflict(self.rows_to_check(request), start)
            self.stats.rows_checked += examined
            if row is not None:
                return reason, row
            return None
        lc_get = lc.get
        checked = 0
        for row in self.rows_to_check(request):
            checked += 1
            last = lc_get(row)
            if last is not None and last > start:
                self.stats.rows_checked += checked
                return reason, row
        self.stats.rows_checked += checked
        return None

    def check_share(
        self, rows: Iterable[RowKey], start_ts: int
    ) -> Tuple[Optional[RowKey], int]:
        """Validate one *share* of a footprint against ``lastCommit``.

        The bulk share-check primitive of the partitioned deployment
        (§6.3 footnote 6): a coordinator hands each involved partition
        the rows it owns, and the partition answers with the first
        conflicting row — scanning ``rows`` in iteration order with the
        same early stop as a sequential :meth:`commit` — plus how many
        rows it examined.  Returns ``(conflict_row, rows_examined)``;
        ``conflict_row`` is ``None`` when every row passes.

        Deliberately side-effect free: no stats, no state.  The caller
        — :meth:`PartitionedOracle._commit_cross` for one request, the
        partitioned batch protocol for a whole run of them — owns the
        accounting, because only the caller knows whether the scan
        "really happened" in the sequential-equivalent order (the batch
        protocol validates shares eagerly and attributes ``rows_checked``
        during its merge pass).  The comparison is the plain lastCommit
        rule shared by SI and WSI; *which* rows form the share is the
        caller's level-dependent choice.  The bounded oracle's Tmax
        refinement is not modelled here — conflict partitions are plain
        SI/WSI oracles.

        On an array store the scan is the bulk gather+compare
        (:meth:`~repro.core.lastcommit.ArrayLastCommit.scan_conflict`),
        with the same first-conflict row and examined count.
        """
        lc = self._last_commit
        if lc.__class__ is ArrayLastCommit:
            return lc.scan_conflict(rows, start_ts)
        lc_get = lc.get
        checked = 0
        for row in rows:
            checked += 1
            last = lc_get(row)
            if last is not None and last > start_ts:
                return row, checked
        return None, checked

    def _install(self, rows: Iterable[RowKey], commit_ts: int) -> None:
        lc = self._last_commit
        if lc.__class__ is ArrayLastCommit:
            lc.install(rows, commit_ts)
            return
        for row in rows:
            lc[row] = commit_ts

    def last_commit(self, row: RowKey) -> Optional[int]:
        """Expose lastCommit(r) for tests and checkers."""
        return self._last_commit.get(row)

    # ------------------------------------------------------------------
    # durability / recovery
    # ------------------------------------------------------------------
    def _log(self, kind: str, payload) -> None:
        if self._wal is not None:
            self._wal.append(kind, payload, size=BYTES_PER_LASTCOMMIT_ENTRY)

    def _log_ts_reservation(self, high_water: int) -> None:
        """Persist a timestamp-reservation high-water mark.

        The reservation must be durable *before* any timestamp from the
        batch is served, so it is flushed immediately rather than
        batched with commit records.
        """
        if self._wal is not None:
            self._wal.append("ts-reserve", high_water, size=8)
            self._wal.flush()

    def apply_wal_record(self, record) -> int:
        """Apply one durable WAL record to this oracle's in-memory state.

        Returns the highest timestamp the record mentions, so the caller
        can track the recovery floor across records.  This is the single
        record-application authority: :meth:`recover_from` loops it over
        a full replay, and a *warm standby*
        (:class:`~repro.coord.failover.OracleHost` tailing the leader's
        WAL through a :class:`~repro.wal.bookkeeper.WALTail`) applies
        records incrementally as they become durable — identical state
        either way, which is what makes an O(delta) takeover safe.
        A standby that has been applying records must still call
        :meth:`seal_recovery` before serving.
        """
        kind = record.kind
        if kind == "commit":
            start_ts, commit_ts, rows = record.payload
            return self._apply_recovered_commit(start_ts, commit_ts, rows)
        if kind == "abort":
            (start_ts,) = record.payload
            return self._apply_recovered_abort(start_ts)
        if kind == GROUP_COMMIT_RECORD:
            # One record per frontend batch (repro.server): replay its
            # decisions in order, exactly as the per-record path would.
            max_ts = 0
            commits, aborts = record.payload
            for start_ts, commit_ts, rows in commits:
                max_ts = max(
                    max_ts, self._apply_recovered_commit(start_ts, commit_ts, rows)
                )
            for start_ts in aborts:
                max_ts = max(max_ts, self._apply_recovered_abort(start_ts))
            return max_ts
        if kind == "ts-reserve":
            return record.payload
        raise RecoveryError(f"unknown WAL record kind {record.kind!r}")

    def _apply_recovered_commit(self, start_ts: int, commit_ts: int, rows) -> int:
        self.commit_table.record_commit(start_ts, commit_ts)
        last_commit = self._last_commit
        for row in rows:
            prev = last_commit.get(row, 0)
            last_commit[row] = max(prev, commit_ts)
        return commit_ts

    def _apply_recovered_abort(self, start_ts: int) -> int:
        if not self.commit_table.is_aborted(start_ts):
            self.commit_table.record_abort(start_ts)
        return start_ts

    def seal_recovery(self, max_recovered_ts: int) -> None:
        """Re-seed the timestamp oracle after applying durable records.

        ``max_recovered_ts`` is the highest timestamp any applied record
        mentioned (the running maximum of :meth:`apply_wal_record`
        returns).  Called by :meth:`recover_from` after a full replay and
        by a warm standby at takeover, after its final catch-up poll.
        """
        max_ts = max_recovered_ts
        # Resume timestamps strictly above anything recovered — including
        # persisted reservation marks — so no timestamp is ever reused.
        # The floor is the current TSO's *reservation* high-water mark,
        # not its in-memory cursor (``peek() - 1``): mid-reservation the
        # cursor sits below the persisted mark, and timestamps up to the
        # mark — reserved for ``next()`` batches or handed out through
        # begin leases — may already be in client hands.
        # Keep persisting reservations wherever this instance already
        # did: through its own WAL if it has one, else through whatever
        # sink the old TSO carried (e.g. a group-commit frontend's WAL
        # adopted via ``TimestampOracle.attach_wal``) — dropping that
        # hook would silently un-persist post-failover begin leases.
        if self._wal is not None:
            wal_append = self._log_ts_reservation
        else:
            wal_append = self._tso.reservation_sink
        self._tso = TimestampOracle.recover(
            max(max_ts, self._tso.reserved_high_water),
            reservation_batch=self._tso.reservation_batch,
            wal_append=wal_append,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def timestamp_oracle(self) -> TimestampOracle:
        return self._tso

    @property
    def lastcommit_size(self) -> int:
        return len(self._last_commit)

    def memory_bytes(self) -> int:
        """Estimated lastCommit footprint (Appendix A: 32 B per row)."""
        return len(self._last_commit) * BYTES_PER_LASTCOMMIT_ENTRY


class SnapshotIsolationOracle(StatusOracle):
    """Algorithm 1: write-write conflict detection (snapshot isolation).

    Checks the **write set** against ``lastCommit``.
    """

    level = "si"

    def rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        return request.write_set


class WriteSnapshotIsolationOracle(StatusOracle):
    """Algorithm 2: read-write conflict detection (write-snapshot isolation).

    Checks the **read set** against ``lastCommit``.  This is the entire
    change relative to Algorithm 1 — and it buys serializability
    (Theorem 1 of the paper; verified by property tests in this repo).
    """

    level = "wsi"

    def rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        return request.read_set


class BoundedStatusOracle(StatusOracle):
    """Algorithm 3: lastCommit bounded to ``max_rows`` entries plus Tmax.

    The production concern (Appendix A): the full ``lastCommit`` map over
    a 100M-row table does not fit in RAM.  Omid keeps only the most
    recently written rows and tracks ``Tmax``, the maximum commit
    timestamp ever evicted.  A commit request touching a row that is *not*
    in memory must be aborted pessimistically if its start timestamp is
    below ``Tmax`` — the oracle can no longer prove the row wasn't
    overwritten after the transaction started.

    Safety is one-sided: eviction can only *add* aborts (false positives),
    never admit a conflicting commit.  Appendix A argues false positives
    are negligible when ``Tmax - Ts >> MaxCommitTime`` — e.g. 1 GB of
    entries covers ~50 s of history at 80K TPS, far above typical commit
    latencies.  Benchmark E10 sweeps ``max_rows`` to expose the trade-off.

    Args:
        policy: ``"si"`` (check write set) or ``"wsi"`` (check read set).
        max_rows: lastCommit capacity in rows (LRU-evicted).
    """

    def __init__(
        self,
        policy: str = "wsi",
        max_rows: int = 1_000_000,
        timestamp_oracle: Optional[TimestampOracle] = None,
        wal: Optional[BookKeeperWAL] = None,
        naive_read_only: bool = False,
        lastcommit=None,
    ) -> None:
        if policy not in ("si", "wsi"):
            raise ValueError(f"policy must be 'si' or 'wsi', not {policy!r}")
        if max_rows < 1:
            raise ValueError("max_rows must be >= 1")
        super().__init__(
            timestamp_oracle=timestamp_oracle,
            wal=wal,
            naive_read_only=naive_read_only,
        )
        self.level = policy
        self._max_rows = max_rows
        # LRU order, oldest first: OrderedDict for the dict backend,
        # BoundedArrayLastCommit for the array backend — both speak the
        # pop/popitem(last=False) surface the decide loops use.
        self._last_commit = make_lastcommit(lastcommit, bounded=True)
        self.tmax = 0

    def rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        if self.level == "si":
            return request.write_set
        return request.read_set

    # Algorithm 3, lines 1-11.  As in the base class, ``rows_checked``
    # counts rows actually examined and is bumped once per request.
    def _check(self, request: CommitRequest) -> Optional[Tuple[str, RowKey]]:
        reason = "ww-conflict" if self.level == "si" else "rw-conflict"
        lc_get = self._last_commit.get
        tmax = self.tmax
        start = request.start_ts
        checked = 0
        for row in self.rows_to_check(request):
            checked += 1
            last = lc_get(row)
            if last is not None:
                if last > start:  # line 3
                    self.stats.rows_checked += checked
                    return reason, row
            elif tmax > start:  # line 7
                self.stats.rows_checked += checked
                return "tmax", row
        self.stats.rows_checked += checked
        return None

    def _install(self, rows: Iterable[RowKey], commit_ts: int) -> None:
        lc = self._last_commit
        for row in rows:
            if row in lc:
                lc.pop(row)
            lc[row] = commit_ts
            if len(lc) > self._max_rows:
                _, evicted_ts = lc.popitem(last=False)
                if evicted_ts > self.tmax:
                    self.tmax = evicted_ts

    def _decide_batch(self, batch, payload_commits, payload_aborts, errors,
                      results=None):
        """Bounded-oracle batch loop: the fast-loop structure with the
        Algorithm 3 refinements inlined — Tmax pessimistic aborts, LRU
        reinsertion on install, eviction bookkeeping — plus deferred
        stats.  LRU order and Tmax evolve exactly as under sequential
        ``commit()`` calls (per-request install order is preserved)."""
        if self._closed:
            raise OracleClosed("status oracle is closed")
        tso = self._tso
        if tso._closed:
            raise OracleClosed("timestamp oracle is closed")
        lc = self._last_commit
        lc_get = lc.get
        lc_popitem = lc.popitem
        max_rows = self._max_rows
        tmax = self.tmax
        ct = self.commit_table
        check_reads = self.level == "wsi"
        exempt_ro = not self.naive_read_only
        reason_tag = "rw-conflict" if check_reads else "ww-conflict"
        pc_append = payload_commits.append
        pa_append = payload_aborts.append
        res_append = results.append if results is not None else None
        nxt = tso._next
        reserved = tso._reserved_until
        commits = conflict_aborts = tmax_aborts = client_aborts = 0
        ro_commits = issued = 0
        rows_checked = rows_updated = 0
        try:
            for item in batch:
                req, fut = item if item.__class__ is tuple else (item, None)
                if req.__class__ is not CommitRequest:
                    start = req  # client-initiated abort
                    try:
                        ct.record_abort(start)
                    except Exception as exc:
                        errors.append((start, exc))
                        if fut is not None:
                            fut._error = exc
                        if res_append is not None:
                            res_append(None)
                        continue
                    client_aborts += 1
                    pa_append(start)
                    if fut is not None:
                        fut._reason = CLIENT_ABORT
                    if res_append is not None:
                        res_append(
                            CommitResult(False, start, reason=CLIENT_ABORT)
                        )
                    continue
                start = req.start_ts
                ws = req.write_set
                if not ws and (exempt_ro or not req.read_set):
                    ro_commits += 1
                    if fut is not None:
                        fut._committed = True
                    if res_append is not None:
                        res_append(CommitResult(True, start, commit_ts=None))
                    continue
                # Algorithm 3 lines 1-11, scanning in frozenset order.
                conflict = None
                for row in (req.read_set if check_reads else ws):
                    rows_checked += 1
                    last = lc_get(row)
                    if last is not None:
                        if last > start:
                            conflict = (reason_tag, row)
                            break
                    elif tmax > start:
                        conflict = ("tmax", row)
                        break
                if conflict is not None:
                    reason, row = conflict
                    try:
                        ct.record_abort(start)
                    except Exception as exc:
                        errors.append((start, exc))
                        if fut is not None:
                            fut._error = exc
                        if res_append is not None:
                            res_append(None)
                        continue
                    if reason == "tmax":
                        tmax_aborts += 1
                    else:
                        conflict_aborts += 1
                    pa_append(start)
                    if fut is not None:
                        fut._reason = reason
                        fut._row = row
                    if res_append is not None:
                        res_append(
                            CommitResult(
                                False, start, reason=reason, conflict_row=row
                            )
                        )
                    continue
                # commit: assign Tc, LRU-install the write set.
                if nxt > reserved:
                    tso._next = nxt
                    tso._reserve()
                    reserved = tso._reserved_until
                cts = nxt
                nxt += 1
                issued += 1
                for row in ws:
                    if row in lc:
                        lc.pop(row)
                    lc[row] = cts
                    if len(lc) > max_rows:
                        _, evicted_ts = lc_popitem(last=False)
                        if evicted_ts > tmax:
                            tmax = evicted_ts
                rows_updated += len(ws)
                try:
                    ct.record_commit(start, cts)
                except Exception as exc:
                    errors.append((start, exc))
                    if fut is not None:
                        fut._error = exc
                    if res_append is not None:
                        res_append(None)
                    continue
                commits += 1
                pc_append((start, cts, ws))
                if fut is not None:
                    fut._committed = True
                    fut._commit_ts = cts
                if res_append is not None:
                    res_append(CommitResult(True, start, commit_ts=cts))
        finally:
            self.tmax = tmax
            tso._next = nxt
            tso._issued += issued
            st = self.stats
            st.commits += commits + ro_commits
            st.read_only_commits += ro_commits
            st.aborts += conflict_aborts + tmax_aborts + client_aborts
            st.conflict_aborts += conflict_aborts
            st.tmax_aborts += tmax_aborts
            st.rows_checked += rows_checked
            st.rows_updated += rows_updated
        return (
            commits + ro_commits,
            conflict_aborts + tmax_aborts + client_aborts,
            rows_checked,
            rows_updated,
        )

    @property
    def max_rows(self) -> int:
        return self._max_rows

    def memory_budget_rows(self) -> int:
        """Rows representable per Appendix A's 32 B/entry estimate."""
        return self._max_rows

    @staticmethod
    def rows_for_memory(memory_bytes: int) -> int:
        """Appendix A sizing: 1 GB -> 32M rows at 32 B per entry."""
        return max(1, memory_bytes // BYTES_PER_LASTCOMMIT_ENTRY)


def make_oracle(
    level: str,
    bounded: bool = False,
    max_rows: int = 1_000_000,
    timestamp_oracle: Optional[TimestampOracle] = None,
    wal: Optional[BookKeeperWAL] = None,
    naive_read_only: bool = False,
    lastcommit=None,
) -> StatusOracle:
    """Factory: build a status oracle for ``level`` in {"si", "wsi"}.

    ``lastcommit`` selects the conflict-detection backend ("dict",
    "array", a store instance, or None for the ``REPRO_LASTCOMMIT``
    default; see :mod:`repro.core.lastcommit`).
    """
    if bounded:
        return BoundedStatusOracle(
            policy=level,
            max_rows=max_rows,
            timestamp_oracle=timestamp_oracle,
            wal=wal,
            naive_read_only=naive_read_only,
            lastcommit=lastcommit,
        )
    if level == "si":
        return SnapshotIsolationOracle(
            timestamp_oracle=timestamp_oracle,
            wal=wal,
            naive_read_only=naive_read_only,
            lastcommit=lastcommit,
        )
    if level == "wsi":
        return WriteSnapshotIsolationOracle(
            timestamp_oracle=timestamp_oracle,
            wal=wal,
            naive_read_only=naive_read_only,
            lastcommit=lastcommit,
        )
    raise ValueError(f"unknown isolation level {level!r}")
