"""Key-selection distributions: uniform, zipfian, zipfianLatest (YCSB).

Section 6 selects rows "randomly ... with a uniform distribution on 20M
rows" (Fig. 6), with YCSB's zipfian distribution ("models the use cases
in which some items are extremely popular", Fig. 7/8) and with
zipfianLatest ("the popular items ... are among the recently inserted
data", Fig. 9/10).

The zipfian generator is the standard Gray et al. incremental algorithm
used by YCSB (constant ``theta = 0.99``), including YCSB's *scrambled*
variant that spreads the popular items across the keyspace via hashing.
``LatestDistribution`` composes a zipfian over recency ranks with a
moving insertion frontier, exactly like YCSB's ``latest`` distribution.
"""

from __future__ import annotations

import random
from typing import Optional, Protocol

# YCSB constants.
ZIPFIAN_THETA = 0.99
FNV_OFFSET_BASIS_64 = 0xCBF29CE484222325
FNV_PRIME_64 = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer's 8 bytes (YCSB's key scrambler)."""
    h = FNV_OFFSET_BASIS_64
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        h = h ^ octet
        h = (h * FNV_PRIME_64) & 0xFFFFFFFFFFFFFFFF
    return h


class KeyDistribution(Protocol):
    """Common protocol: draw one key from ``[0, item_count)``."""

    def next_key(self) -> int: ...


class UniformDistribution:
    """Uniform keys over ``[0, item_count)``."""

    name = "uniform"

    def __init__(self, item_count: int, seed: Optional[int] = None) -> None:
        if item_count < 1:
            raise ValueError("item_count must be >= 1")
        self.item_count = item_count
        self._rng = random.Random(seed)

    def next_key(self) -> int:
        return self._rng.randrange(self.item_count)


class ZipfianDistribution:
    """Gray et al. incremental zipfian generator (YCSB's ZipfianGenerator).

    Draws rank-distributed values where rank 0 is most popular, with
    exponent ``theta``.  ``zeta(n)`` is computed once up front (O(n));
    the paper's 20M keyspace takes ~2 s, so the constructor also accepts
    a precomputed ``zetan`` for reuse across benchmark configurations.
    """

    name = "zipfian"

    def __init__(
        self,
        item_count: int,
        theta: float = ZIPFIAN_THETA,
        seed: Optional[int] = None,
        zetan: Optional[float] = None,
    ) -> None:
        if item_count < 1:
            raise ValueError("item_count must be >= 1")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.item_count = item_count
        self.theta = theta
        self._rng = random.Random(seed)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = zetan if zetan is not None else self.zeta(item_count, theta)
        self._zeta2 = self.zeta(2, theta)
        self._eta = (1 - (2.0 / item_count) ** (1 - theta)) / (
            1 - self._zeta2 / self._zetan
        )

    # Above this size the exact O(n) sum is replaced by an integral
    # approximation; error is far below what the generator can resolve.
    _EXACT_ZETA_LIMIT = 100_000

    @classmethod
    def zeta(cls, n: int, theta: float) -> float:
        """Generalized harmonic number sum_{i=1..n} 1/i^theta.

        Exact for small n; for large n (the paper's 20M keyspace) the
        tail is approximated by the midpoint-rule integral
        ``sum_{i=m+1..n} i^-theta ~ integral_{m+1/2}^{n+1/2} x^-theta dx``,
        whose relative error at m = 1e5 is below 1e-12 — invisible to a
        64-bit uniform draw.
        """
        m = min(n, cls._EXACT_ZETA_LIMIT)
        total = sum(1.0 / (i ** theta) for i in range(1, m + 1))
        if n > m:
            exponent = 1.0 - theta
            total += ((n + 0.5) ** exponent - (m + 0.5) ** exponent) / exponent
        return total

    def next_key(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.item_count * ((self._eta * u) - self._eta + 1.0) ** self._alpha
        )


class ScrambledZipfianDistribution:
    """YCSB's scrambled zipfian: zipfian ranks hashed over the keyspace.

    Without scrambling, the hottest keys are 0,1,2,... and land in one
    region; scrambling spreads the hot set across region servers like a
    real popularity skew would.
    """

    name = "zipfian"  # the paper's "zipfian" is YCSB's scrambled variant

    def __init__(
        self,
        item_count: int,
        theta: float = ZIPFIAN_THETA,
        seed: Optional[int] = None,
        zetan: Optional[float] = None,
    ) -> None:
        self.item_count = item_count
        self._inner = ZipfianDistribution(
            item_count, theta=theta, seed=seed, zetan=zetan
        )

    def next_key(self) -> int:
        rank = self._inner.next_key()
        return fnv1a_64(rank) % self.item_count


class LatestDistribution:
    """YCSB's 'latest' distribution: popularity skewed to recent inserts.

    Draws a zipfian *recency rank* r and returns a key ``r`` insertion
    steps behind the ``frontier``; the workload advances the frontier on
    every write via :meth:`advance`, so "the popular items ... are among
    the recently inserted data" (§6.5).

    ``layout`` controls how insertion order maps onto the key space:

    * ``"hashed"`` (default) — YCSB's default ``orderedinserts=false``:
      record keys are hashes of the insertion index, so the hot (recent)
      set is scattered over all HBase regions but still churns as the
      frontier advances.
    * ``"ordered"`` — insertion index *is* the key: the hot set is the
      contiguous tail of the table, concentrating on one region — HBase's
      classic "hot tail" antipattern, kept for the hotspot ablation.
    """

    name = "zipfianLatest"

    def __init__(
        self,
        item_count: int,
        theta: float = ZIPFIAN_THETA,
        seed: Optional[int] = None,
        zetan: Optional[float] = None,
        layout: str = "hashed",
    ) -> None:
        if item_count < 1:
            raise ValueError("item_count must be >= 1")
        if layout not in ("hashed", "ordered"):
            raise ValueError(f"layout must be 'hashed' or 'ordered', not {layout!r}")
        self.item_count = item_count
        self.layout = layout
        self._frontier = item_count - 1
        self._rank_dist = ZipfianDistribution(
            item_count, theta=theta, seed=seed, zetan=zetan
        )

    def next_key(self) -> int:
        rank = self._rank_dist.next_key()
        index = (self._frontier - rank) % self.item_count
        if self.layout == "ordered":
            return index
        return fnv1a_64(index) % self.item_count

    def advance(self, count: int = 1) -> None:
        """Move the insertion frontier forward (new rows were written)."""
        self._frontier = (self._frontier + count) % self.item_count

    @property
    def frontier(self) -> int:
        return self._frontier


def make_distribution(
    name: str,
    item_count: int,
    seed: Optional[int] = None,
    theta: float = ZIPFIAN_THETA,
    zetan: Optional[float] = None,
    layout: str = "hashed",
) -> KeyDistribution:
    """Factory for the three distributions the paper evaluates."""
    normalized = name.strip().lower()
    if normalized == "uniform":
        return UniformDistribution(item_count, seed=seed)
    if normalized == "zipfian":
        return ScrambledZipfianDistribution(
            item_count, theta=theta, seed=seed, zetan=zetan
        )
    if normalized in ("zipfianlatest", "latest"):
        return LatestDistribution(
            item_count, theta=theta, seed=seed, zetan=zetan, layout=layout
        )
    if normalized in ("zipfianlatest-ordered", "latest-ordered"):
        return LatestDistribution(
            item_count, theta=theta, seed=seed, zetan=zetan, layout="ordered"
        )
    raise ValueError(f"unknown distribution {name!r}")
