"""Tests for the YCSB core-workload presets."""

import pytest

from repro.workload.ycsb import CORE_WORKLOADS, YCSBMix, YCSBWorkload, ycsb


class TestPresets:
    def test_all_six_exist(self):
        assert sorted(CORE_WORKLOADS) == ["A", "B", "C", "D", "E", "F"]

    def test_mixes_sum_to_one(self):
        for mix in CORE_WORKLOADS.values():
            total = mix.read + mix.update + mix.insert + mix.scan + mix.rmw
            assert total == pytest.approx(1.0)

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError):
            YCSBMix("broken", read=0.5, update=0.3)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            YCSBWorkload("Z")

    def test_case_insensitive(self):
        assert ycsb("a", seed=1).name == "A"


class TestWorkloadShapes:
    def test_c_is_pure_read_only(self):
        wl = ycsb("C", keyspace=10_000, seed=2)
        for spec in wl.stream(300):
            assert spec.read_only
            assert spec.write_rows == ()

    def test_a_is_half_updates(self):
        wl = ycsb("A", keyspace=10_000, seed=3)
        ops = [op for spec in wl.stream(2000) for op in spec.ops]
        writes = sum(1 for op in ops if op.kind == "w")
        assert 0.45 < writes / len(ops) < 0.55

    def test_b_is_mostly_reads(self):
        wl = ycsb("B", keyspace=10_000, seed=4)
        ops = [op for spec in wl.stream(2000) for op in spec.ops]
        writes = sum(1 for op in ops if op.kind == "w")
        assert writes / len(ops) < 0.10

    def test_d_inserts_fresh_rows(self):
        wl = ycsb("D", keyspace=1_000, seed=5)
        specs = wl.batch(500)
        inserted = [
            row for spec in specs for row in spec.write_rows if row >= 1_000
        ]
        assert inserted  # some inserts happened
        assert len(set(inserted)) == len(inserted)  # each key is fresh

    def test_e_scans_consecutive_rows(self):
        wl = ycsb("E", keyspace=100_000, scan_length=8, seed=6)
        for spec in wl.stream(200):
            reads = spec.read_rows
            if len(reads) >= 8:
                # find one full scan run of consecutive keys
                runs = sum(
                    1 for a, b in zip(reads, reads[1:]) if b == a + 1
                )
                assert runs >= 7 - 1  # at least one scan block present
                break
        else:
            pytest.fail("no scan found in workload E")

    def test_f_rmw_rows_in_both_sets(self):
        wl = ycsb("F", keyspace=10_000, seed=7)
        found_rmw = False
        for spec in wl.stream(300):
            overlap = set(spec.read_rows) & set(spec.write_rows)
            if overlap:
                found_rmw = True
                break
        assert found_rmw

    def test_transaction_size_bound(self):
        wl = ycsb("A", keyspace=1_000, max_rows=5, seed=8)
        assert all(spec.size <= 5 for spec in wl.stream(300))

    def test_deterministic(self):
        a = ycsb("A", keyspace=1_000, seed=9).batch(50)
        b = ycsb("A", keyspace=1_000, seed=9).batch(50)
        assert a == b


class TestGroupLocalMode:
    def test_every_transaction_stays_in_one_group(self):
        wl = ycsb("A", keyspace=1_000, seed=3, num_groups=10)
        for spec in wl.stream(300):
            rows = {op.row for op in spec.ops}
            if rows:
                assert len({wl.group_of(row) for row in rows}) == 1

    def test_grouped_scans_and_inserts_stay_in_group(self):
        for name in ("D", "E"):  # the insert/scan-heavy presets
            wl = ycsb(name, keyspace=640, seed=5, num_groups=8)
            for spec in wl.stream(200):
                rows = {op.row for op in spec.ops}
                assert all(row < wl.keyspace for row in rows)
                if rows:
                    assert len({wl.group_of(row) for row in rows}) == 1

    def test_group_rows_partition_the_keyspace(self):
        wl = ycsb("A", keyspace=103, seed=1, num_groups=4)  # remainder
        covered = []
        for g in range(4):
            covered.extend(wl.group_rows(g))
        assert covered == list(range(103))

    def test_group_directory_matches_group_of(self):
        wl = ycsb("A", keyspace=120, seed=1, num_groups=6)
        directory = wl.group_directory(num_partitions=4)
        assert len(directory) == 120
        for row, pid in directory.items():
            assert pid == wl.group_of(row) % 4

    def test_grouped_mode_is_deterministic(self):
        a = ycsb("F", keyspace=500, seed=2, num_groups=5).batch(40)
        b = ycsb("F", keyspace=500, seed=2, num_groups=5).batch(40)
        assert a == b

    def test_bad_group_counts_rejected(self):
        with pytest.raises(ValueError):
            ycsb("A", keyspace=10, num_groups=11)
        with pytest.raises(ValueError):
            ycsb("A", keyspace=10, num_groups=-1)
        with pytest.raises(ValueError):
            ycsb("A", keyspace=10, seed=1).group_of(3)  # not grouped


class TestEndToEnd:
    @pytest.mark.parametrize("name", sorted(CORE_WORKLOADS))
    def test_runs_against_real_system(self, name):
        from repro.bench import run_interleaved
        from repro.core import create_system

        system = create_system("wsi")
        wl = ycsb(name, keyspace=2_000, seed=10)
        result = run_interleaved(system.manager, wl.batch(300), concurrency=8, seed=11)
        assert result.total == 300
        if name == "C":
            assert result.aborted == 0  # pure reads never abort
