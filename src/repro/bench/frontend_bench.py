"""Wall-clock microbench: unbatched oracle vs. the group-commit frontend.

Unlike :mod:`repro.sim` (which measures *simulated* time), this harness
measures real CPU throughput of the conflict-detection + WAL path — the
thing the frontend's batching is supposed to speed up.  Benchmark E17
(``benchmarks/test_e17_group_commit.py``) sweeps batch sizes with it.

Two unbatched baselines are distinguished:

* ``durable_acks=True`` — the truly unbatched oracle: one WAL append
  *and one replicated ledger write* per decision, i.e. no group commit
  at any layer.  This is the configuration the frontend replaces and the
  one the ≥3x acceptance bar is measured against.
* ``durable_acks=False`` — the seed default, where the oracle still
  appends one WAL record per decision but the WAL's Appendix-A size
  trigger batches records into 1 KB ledger entries underneath.

Methodology notes, learned the hard way:

* start timestamps and commit requests are prepared *outside* the timed
  region, so both sides time exactly the commit-decision path (§6.3's
  critical section plus WAL work);
* ``gc.collect()`` runs before each timed region, and speedup claims use
  *paired* measurements (baseline and batched back-to-back, median of
  the per-pair ratios) — allocator drift and noisy-neighbour phases
  otherwise dominate the effect being measured;
* each configuration reports the best of ``repeats`` runs (the minimum
  is the least-noise estimate).
"""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.engine import make_engine
from repro.core.partitioned import PartitionedOracle
from repro.core.status_oracle import CommitRequest, make_oracle
from repro.server.frontend import OracleFrontend
from repro.wal.bookkeeper import BookKeeperWAL
from repro.workload.generator import TransactionSpec, complex_workload

DEFAULT_NUM_REQUESTS = 30_000
DEFAULT_KEYSPACE = 2_000_000
DEFAULT_REPEATS = 3


@dataclass
class FrontendBenchResult:
    """Throughput of one configuration."""

    level: str
    #: "unbatched" | "unbatched-durable" | "batched" (decide_batch) |
    #: "batched-futures" | "batched-per-request" (the pre-decide_batch
    #: frontend: one backend.commit() call per item — E18's baseline)
    mode: str
    batch_size: int  # 1 for unbatched
    ops_per_sec: float
    commits: int
    aborts: int
    wal_records: int  # logical records appended (group record counts once)
    wal_ledger_entries: int  # physical ledger writes
    partitions: int = 0  # 0 = monolithic oracle
    #: fraction of decisions that crossed partitions (partitioned runs).
    cross_fraction: float = 0.0

    @property
    def us_per_op(self) -> float:
        return 1e6 / self.ops_per_sec if self.ops_per_sec else 0.0

    def as_row(self) -> tuple:
        return (
            self.level,
            self.mode,
            self.batch_size,
            f"{self.ops_per_sec:,.0f}",
            f"{self.us_per_op:.2f}",
            self.wal_records,
            self.wal_ledger_entries,
        )


def make_specs(
    num_requests: int = DEFAULT_NUM_REQUESTS,
    keyspace: int = DEFAULT_KEYSPACE,
    seed: int = 42,
) -> List[TransactionSpec]:
    """The paper's uniform complex workload, pre-drawn so request
    generation stays outside every timed region."""
    workload = complex_workload(distribution="uniform", keyspace=keyspace, seed=seed)
    return [workload.next_transaction() for _ in range(num_requests)]


def _run_unbatched(level: str, specs, durable_acks: bool, partitions: int):
    if partitions:
        oracle = PartitionedOracle(level=level, num_partitions=partitions)
        wal = None
    else:
        # batch_bytes=1 defeats the WAL's size trigger: every append
        # becomes its own replicated ledger write (per-record durability).
        wal = BookKeeperWAL(batch_bytes=1) if durable_acks else BookKeeperWAL()
        oracle = make_oracle(level, wal=wal)
    requests = [spec.commit_request(oracle.begin()) for spec in specs]
    commit = oracle.commit
    gc.collect()
    t0 = time.perf_counter()
    for request in requests:
        commit(request)
    dt = time.perf_counter() - t0
    return dt, oracle, wal


def _run_batched(
    level: str,
    specs,
    batch_size: int,
    partitions: int,
    use_futures: bool,
    per_request: bool = False,
    begin_lease: int = 1,
):
    # In per-request mode the backend gets no WAL of its own (its
    # commit() would otherwise append one record per decision and the
    # frontend would skip the group record): both modes then persist the
    # identical one-group-record-per-batch stream, so the measured delta
    # is purely the decision loop — per-request calls vs decide_batch.
    wal = BookKeeperWAL()
    if partitions:
        oracle = PartitionedOracle(level=level, num_partitions=partitions)
        frontend = OracleFrontend(
            oracle, max_batch=batch_size, wal=wal, per_request=per_request,
            begin_lease=begin_lease,
        )
    elif per_request:
        oracle = make_oracle(level)
        frontend = OracleFrontend(
            oracle, max_batch=batch_size, wal=wal, per_request=True,
            begin_lease=begin_lease,
        )
    else:
        oracle = make_oracle(level, wal=wal)
        frontend = OracleFrontend(
            oracle, max_batch=batch_size, begin_lease=begin_lease
        )
    requests = [spec.commit_request(frontend.begin()) for spec in specs]
    submit = frontend.submit_commit if use_futures else frontend.submit_commit_nowait
    gc.collect()
    t0 = time.perf_counter()
    for request in requests:
        submit(request)
    frontend.flush()
    dt = time.perf_counter() - t0
    return dt, oracle, wal


def bench_unbatched(
    level: str,
    specs: Sequence[TransactionSpec],
    repeats: int = DEFAULT_REPEATS,
    partitions: int = 0,
    durable_acks: bool = False,
) -> FrontendBenchResult:
    """One ``oracle.commit()`` per request (see module docstring for the
    ``durable_acks`` baseline distinction)."""
    best = None
    for _ in range(repeats):
        run = _run_unbatched(level, specs, durable_acks, partitions)
        if best is None or run[0] < best[0]:
            best = run
    dt, oracle, wal = best
    return FrontendBenchResult(
        level=level,
        mode="unbatched-durable" if durable_acks else "unbatched",
        batch_size=1,
        ops_per_sec=len(specs) / dt,
        commits=oracle.stats.commits,
        aborts=oracle.stats.aborts,
        wal_records=wal.record_count if wal else 0,
        wal_ledger_entries=wal.flush_count if wal else 0,
    )


def bench_batched(
    level: str,
    specs: Sequence[TransactionSpec],
    batch_size: int = 32,
    repeats: int = DEFAULT_REPEATS,
    partitions: int = 0,
    use_futures: bool = False,
    per_request: bool = False,
    begin_lease: int = 1,
) -> FrontendBenchResult:
    """The same requests through an :class:`OracleFrontend`: one critical
    section and one group-commit WAL record per ``batch_size`` requests.

    ``use_futures=False`` measures the callback-style ingest path
    (:meth:`~repro.server.OracleFrontend.submit_commit_nowait`, outcomes
    delivered per batch); ``use_futures=True`` allocates a
    :class:`~repro.server.CommitFuture` per request like the session API.
    ``per_request=True`` forces the pre-``decide_batch`` decision loop
    (one ``backend.commit()`` call per batch item) — benchmark E18's
    baseline.  ``begin_lease`` sets the frontend's begin-lease size; the
    harness begins every transaction before the timed commit region, so
    decisions are identical at any lease size (benchmark E20's equality
    leg pins this).
    """
    best = None
    for _ in range(repeats):
        run = _run_batched(
            level, specs, batch_size, partitions, use_futures, per_request,
            begin_lease,
        )
        if best is None or run[0] < best[0]:
            best = run
    dt, oracle, wal = best
    if per_request:
        mode = "batched-per-request"
    elif use_futures:
        mode = "batched-futures"
    else:
        mode = "batched"
    return FrontendBenchResult(
        level=level,
        mode=mode,
        batch_size=batch_size,
        ops_per_sec=len(specs) / dt,
        commits=oracle.stats.commits,
        aborts=oracle.stats.aborts,
        wal_records=wal.record_count,
        wal_ledger_entries=wal.flush_count,
        partitions=partitions,
    )


def paired_speedups(
    level: str = "wsi",
    batch_size: int = 32,
    pairs: int = 5,
    num_requests: int = DEFAULT_NUM_REQUESTS,
    keyspace: int = DEFAULT_KEYSPACE,
    seed: int = 42,
    use_futures: bool = False,
    durable_acks: bool = True,
    repeats: int = 1,
) -> List[float]:
    """Back-to-back (unbatched, batched) measurement pairs.

    Returns one throughput ratio per pair; take the median for a
    noise-robust speedup estimate (a shared-machine slow phase hits both
    sides of a pair roughly equally, so ratios are far more stable than
    the absolute numbers).  Each side of a pair is the best of
    ``repeats`` runs — noise is one-sided (contention only ever slows a
    run down), so the minimum is the least-biased estimate and a single
    co-scheduled burst cannot sink one side of a pair.
    """
    specs = make_specs(num_requests, keyspace=keyspace, seed=seed)
    ratios = []
    for _ in range(pairs):
        dt_u = min(
            _run_unbatched(level, specs, durable_acks, 0)[0]
            for _ in range(repeats)
        )
        dt_b = min(
            _run_batched(level, specs, batch_size, 0, use_futures)[0]
            for _ in range(repeats)
        )
        ratios.append(dt_u / dt_b)
    return ratios


def paired_decide_speedups(
    level: str = "wsi",
    batch_size: int = 32,
    pairs: int = 5,
    num_requests: int = DEFAULT_NUM_REQUESTS,
    keyspace: int = DEFAULT_KEYSPACE,
    seed: int = 42,
) -> List[float]:
    """Back-to-back (per-request frontend, batch-decide frontend) pairs.

    Benchmark E18's measurement: both sides batch identically at the WAL
    layer (one group record per ``batch_size`` requests), so each ratio
    isolates the decision loop itself — per-request ``commit()`` calls
    inside the critical section vs one ``decide_batch`` bulk pass.
    """
    specs = make_specs(num_requests, keyspace=keyspace, seed=seed)
    ratios = []
    for _ in range(pairs):
        dt_p, _, _ = _run_batched(level, specs, batch_size, 0, False, True)
        dt_b, _, _ = _run_batched(level, specs, batch_size, 0, False, False)
        ratios.append(dt_p / dt_b)
    return ratios


def median_speedup(ratios: Sequence[float]) -> float:
    return statistics.median(ratios)


def sweep_batch_sizes(
    level: str,
    batch_sizes: Sequence[int] = (8, 32, 128),
    num_requests: int = DEFAULT_NUM_REQUESTS,
    keyspace: int = DEFAULT_KEYSPACE,
    seed: int = 42,
    repeats: int = DEFAULT_REPEATS,
    partitions: int = 0,
    use_futures: bool = False,
) -> List[FrontendBenchResult]:
    """Unbatched baseline plus one batched run per batch size.

    A/B runs interleave: the unbatched baseline is re-measured after the
    batched sweep and the better of the two baselines kept, so slow drift
    within the process cannot flatter either side.
    """
    specs = make_specs(num_requests, keyspace=keyspace, seed=seed)
    baseline_a = bench_unbatched(level, specs, repeats=repeats, partitions=partitions)
    batched = [
        bench_batched(
            level,
            specs,
            batch_size=b,
            repeats=repeats,
            partitions=partitions,
            use_futures=use_futures,
        )
        for b in batch_sizes
    ]
    baseline_b = bench_unbatched(level, specs, repeats=repeats, partitions=partitions)
    baseline = (
        baseline_a if baseline_a.ops_per_sec >= baseline_b.ops_per_sec else baseline_b
    )
    return [baseline] + batched


def speedup(results: Sequence[FrontendBenchResult], batch_size: int) -> float:
    """Batched-over-unbatched throughput ratio for ``batch_size``."""
    baseline = next(r for r in results if r.mode.startswith("unbatched"))
    target = next(
        r
        for r in results
        # exact modes: "batched-per-request" is a *baseline*, not a target
        if r.mode in ("batched", "batched-futures") and r.batch_size == batch_size
    )
    return target.ops_per_sec / baseline.ops_per_sec


def make_aligned_requests(frontend, specs, partitions: int):
    """Partition-aligned commit requests for a running frontend.

    Spec ``i``'s rows are remapped into partition ``i % partitions``
    (``row -> row * partitions + shard``; ``stable_hash`` maps an
    integer row to itself, so the shard assignment is exact and
    process-independent), so every transaction is single-partition — the
    co-located-schema case a real deployment of §6.3 footnote 6 would
    engineer for, and the case where ``PartitionedOracle.decide_batch``
    does one bulk check/install round per shard per flush.
    """
    requests = []
    for i, spec in enumerate(specs):
        shard = i % partitions
        requests.append(
            CommitRequest(
                frontend.begin(),
                write_set=frozenset(
                    row * partitions + shard for row in spec.write_rows
                ),
                read_set=frozenset(
                    row * partitions + shard for row in spec.read_rows
                ),
            )
        )
    return requests


def bench_partition_aligned(
    level: str,
    specs: Sequence[TransactionSpec],
    batch_size: int = 32,
    partitions: int = 4,
    repeats: int = DEFAULT_REPEATS,
    per_request: bool = False,
) -> FrontendBenchResult:
    """Batch-decide (or per-request) frontend over the partitioned oracle
    on a fully partition-aligned workload (zero cross-partition traffic)."""
    best = None
    for _ in range(repeats):
        wal = BookKeeperWAL()
        oracle = PartitionedOracle(level=level, num_partitions=partitions)
        frontend = OracleFrontend(
            oracle, max_batch=batch_size, wal=wal, per_request=per_request
        )
        requests = make_aligned_requests(frontend, specs, partitions)
        submit = frontend.submit_commit_nowait
        gc.collect()
        t0 = time.perf_counter()
        for request in requests:
            submit(request)
        frontend.flush()
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, oracle, wal)
    dt, oracle, wal = best
    return FrontendBenchResult(
        level=level,
        mode="batched-per-request" if per_request else "batched",
        batch_size=batch_size,
        ops_per_sec=len(specs) / dt,
        commits=oracle.stats.commits,
        aborts=oracle.stats.aborts,
        wal_records=wal.record_count,
        wal_ledger_entries=wal.flush_count,
        partitions=partitions,
    )


def make_cross_heavy_requests(frontend, specs, partitions: int,
                              cross_every: int = 2):
    """Cross-partition-heavy commit requests for a running frontend.

    Spec ``i`` is forced **cross-partition** when ``i % cross_every ==
    0``: its rows are remapped round-robin over all partitions
    (``row -> row * partitions + (j % partitions)``, ``j`` the row's
    index within the sorted footprint), so any footprint of two or more
    rows spans at least two partitions.  The remaining specs are
    partition-aligned to shard ``i % partitions``, exactly as
    :func:`make_aligned_requests` lays them out.  With the default
    ``cross_every=2`` at least half of the multi-row footprints are
    multi-partition — the hash-sharded workload shape that used to break
    every batch and fall back to per-request two-phase decisions;
    ``cross_every=1`` makes the workload all-cross.  ``stable_hash``
    maps an integer row to itself, so the placement is exact and
    process-independent.
    """
    requests = []
    for i, spec in enumerate(specs):
        rows = sorted({*spec.write_rows, *spec.read_rows})
        if i % cross_every == 0:
            remap = {
                row: row * partitions + (j % partitions)
                for j, row in enumerate(rows)
            }
        else:
            shard = i % partitions
            remap = {row: row * partitions + shard for row in rows}
        requests.append(
            CommitRequest(
                frontend.begin(),
                write_set=frozenset(remap[r] for r in spec.write_rows),
                read_set=frozenset(remap[r] for r in spec.read_rows),
            )
        )
    return requests


def _run_cross_partition(level, specs, batch_size, partitions, per_request,
                         cross_every):
    # Both sides run the identical engine-mode frontend; ``per_request``
    # selects the backend's pre-protocol engine (``batch_cross=False``:
    # cross items fall back to per-request two-phase decisions mid-run),
    # so each pair isolates the cross-partition batch protocol itself.
    wal = BookKeeperWAL()
    oracle = PartitionedOracle(
        level=level, num_partitions=partitions, batch_cross=not per_request
    )
    frontend = OracleFrontend(oracle, max_batch=batch_size, wal=wal)
    requests = make_cross_heavy_requests(
        frontend, specs, partitions, cross_every
    )
    submit = frontend.submit_commit_nowait
    gc.collect()
    t0 = time.perf_counter()
    for request in requests:
        submit(request)
    frontend.flush()
    dt = time.perf_counter() - t0
    return dt, oracle, wal


def bench_cross_partition(
    level: str,
    specs: Sequence[TransactionSpec],
    batch_size: int = 32,
    partitions: int = 4,
    repeats: int = DEFAULT_REPEATS,
    per_request: bool = False,
    cross_every: int = 2,
) -> FrontendBenchResult:
    """The cross-partition-heavy workload through the partitioned
    frontend: ``per_request=True`` runs the preserved pre-protocol
    engine (every cross item breaks the run and takes a per-request
    two-phase decision — benchmark E19's baseline), ``False`` the
    cross-partition batch protocol's one-bulk-round-per-partition
    flush."""
    best = None
    for _ in range(repeats):
        run = _run_cross_partition(
            level, specs, batch_size, partitions, per_request, cross_every
        )
        if best is None or run[0] < best[0]:
            best = run
    dt, oracle, wal = best
    return FrontendBenchResult(
        level=level,
        mode="cross-per-request" if per_request else "cross-batched",
        batch_size=batch_size,
        ops_per_sec=len(specs) / dt,
        commits=oracle.stats.commits,
        aborts=oracle.stats.aborts,
        wal_records=wal.record_count,
        wal_ledger_entries=wal.flush_count,
        partitions=partitions,
        cross_fraction=oracle.cross_partition_fraction(),
    )


def paired_cross_speedups(
    level: str = "wsi",
    batch_size: int = 32,
    pairs: int = 5,
    num_requests: int = DEFAULT_NUM_REQUESTS,
    keyspace: int = DEFAULT_KEYSPACE,
    seed: int = 42,
    partitions: int = 4,
    cross_every: int = 2,
) -> List[float]:
    """Back-to-back (per-request two-phase, batch protocol) pairs on the
    cross-partition-heavy workload.

    Benchmark E19's measurement: both sides run the same engine-mode
    partitioned frontend with the same one-group-WAL-record-per-batch
    durability; the baseline side selects the preserved pre-protocol
    engine (``batch_cross=False``), so each ratio isolates exactly what
    the cross-partition batch protocol removed — one share-request
    construction and check visit per involved partition per request,
    plus the run break, the per-request timestamp call and commit-table
    write — versus one bulk validation/install round per partition per
    flush.
    """
    specs = make_specs(num_requests, keyspace=keyspace, seed=seed)
    ratios = []
    for _ in range(pairs):
        dt_p, _, _ = _run_cross_partition(
            level, specs, batch_size, partitions, True, cross_every
        )
        dt_b, _, _ = _run_cross_partition(
            level, specs, batch_size, partitions, False, cross_every
        )
        ratios.append(dt_p / dt_b)
    return ratios


def sweep_batch_partitions(
    level: str = "wsi",
    batch_sizes: Sequence[int] = (8, 32, 128),
    partition_counts: Sequence[int] = (0, 2, 4, 8),
    num_requests: int = DEFAULT_NUM_REQUESTS,
    keyspace: int = DEFAULT_KEYSPACE,
    seed: int = 42,
    repeats: int = DEFAULT_REPEATS,
) -> List[FrontendBenchResult]:
    """Batch-decide throughput over the batch size × partitions grid.

    Partition count 0 is the monolithic oracle; N >= 1 routes through
    :class:`~repro.core.partitioned.PartitionedOracle`, whose
    ``decide_batch`` does one bulk check/install round per shard per
    flush (§6.3 footnote 6's scale-out, amortized per batch).
    """
    specs = make_specs(num_requests, keyspace=keyspace, seed=seed)
    results = []
    for partitions in partition_counts:
        for batch_size in batch_sizes:
            results.append(
                bench_batched(
                    level,
                    specs,
                    batch_size=batch_size,
                    repeats=repeats,
                    partitions=partitions,
                )
            )
    return results


# ----------------------------------------------------------------------
# engine benchmarks (E23): three commit protocols behind one frontend
# ----------------------------------------------------------------------

def _run_engine(engine, specs, batch_size, per_request):
    """One engine run through the common frontend.

    WAL placement follows the E18 methodology: the batched side attaches
    the WAL to the engine (its inherited ``decide_batch`` writes one
    group record per flush), the per-request side gives the WAL to the
    frontend (same one-group-record-per-flush stream) — so each pair
    isolates the engine's ``_decide_batch`` bulk pass against its
    sequential ``commit()`` loop.

    Unlike :func:`_run_batched`, begins interleave with submissions
    window by window (each flush-sized window of requests begins right
    before it is submitted, so at most one open batch of transactions
    is active at a time).  The interleave is what keeps the SSI
    engine's retained-footprint window at O(batch) instead of O(total
    requests) — the shape any closed-loop deployment has.  Request
    materialization (``commit_request`` building its frozensets) is
    identical for every engine and both modes, so it happens *outside*
    the timed region: the clock covers only the serving stack —
    submit, decide, WAL.
    """
    wal = BookKeeperWAL()
    if per_request:
        backend = make_engine(engine)
        frontend = OracleFrontend(
            backend, max_batch=batch_size, wal=wal, per_request=True
        )
    else:
        backend = make_engine(engine, wal=wal)
        frontend = OracleFrontend(backend, max_batch=batch_size)
    begin = frontend.begin
    submit = frontend.submit_commit_nowait
    flush = frontend.flush
    perf = time.perf_counter
    gc.collect()
    dt = 0.0
    for off in range(0, len(specs), batch_size):
        requests = [
            spec.commit_request(begin())
            for spec in specs[off:off + batch_size]
        ]
        t0 = perf()
        for request in requests:
            submit(request)
        flush()
        dt += perf() - t0
    return dt, backend, wal


def bench_engine(
    engine: str,
    specs: Sequence[TransactionSpec],
    batch_size: int = 32,
    repeats: int = DEFAULT_REPEATS,
    per_request: bool = False,
) -> FrontendBenchResult:
    """Best-of-``repeats`` throughput of one commit engine — batched
    (``_decide_batch`` bulk pass) or per-request (sequential
    ``commit()`` calls inside the flush loop, E18's baseline shape)."""
    best = None
    for _ in range(repeats):
        run = _run_engine(engine, specs, batch_size, per_request)
        if best is None or run[0] < best[0]:
            best = run
    dt, backend, wal = best
    return FrontendBenchResult(
        level=backend.level,
        mode="engine-per-request" if per_request else "engine-batched",
        batch_size=batch_size,
        ops_per_sec=len(specs) / dt,
        commits=backend.stats.commits,
        aborts=backend.stats.aborts,
        wal_records=wal.record_count,
        wal_ledger_entries=wal.flush_count,
    )


def paired_engine_speedups(
    engine: str,
    specs: Sequence[TransactionSpec],
    batch_size: int = 32,
    pairs: int = 5,
    repeats: int = 2,
) -> List[float]:
    """Back-to-back (per-request, batched) pairs for one engine.

    Benchmark E23's per-engine measurement: both sides run the same
    frontend over the same pre-drawn specs with identical WAL batching;
    the ratio isolates what the engine's ``_decide_batch`` buys over
    its sequential decision loop.  Each side of a pair is the best of
    ``repeats`` runs (machine noise is one-sided — contention only ever
    slows a run down — so the minimum is the least-biased estimate of
    the true cost, the same estimator :func:`bench_engine` uses), and
    the median of the pair ratios is the reported speedup (the E17–E21
    protocol).
    """
    ratios = []
    for _ in range(pairs):
        dt_p = min(
            _run_engine(engine, specs, batch_size, True)[0]
            for _ in range(repeats)
        )
        dt_b = min(
            _run_engine(engine, specs, batch_size, False)[0]
            for _ in range(repeats)
        )
        ratios.append(dt_p / dt_b)
    return ratios


# ----------------------------------------------------------------------
# executor benchmarks (E21): parallel vs serial protocol rounds
# ----------------------------------------------------------------------

def _run_executor_rounds(level, specs, batch_size, partitions, executor,
                         round_latency, cross_every):
    """One cross-heavy run with the chosen round executor and an
    injected per-round latency (the modeled per-partition commit-table
    RPC; ``time.sleep`` releases the GIL, so overlap under the parallel
    executor is real wall-clock, not bookkeeping)."""
    wal = BookKeeperWAL()
    oracle = PartitionedOracle(
        level=level,
        num_partitions=partitions,
        executor=executor,
        round_latency=round_latency,
    )
    frontend = OracleFrontend(oracle, max_batch=batch_size, wal=wal)
    requests = make_cross_heavy_requests(
        frontend, specs, partitions, cross_every
    )
    submit = frontend.submit_commit_nowait
    gc.collect()
    t0 = time.perf_counter()
    for request in requests:
        submit(request)
    frontend.flush()
    dt = time.perf_counter() - t0
    frontend.close()  # joins an owned parallel executor's workers
    return dt, oracle, wal, frontend


def bench_executor_rounds(
    level: str,
    specs: Sequence[TransactionSpec],
    batch_size: int = 32,
    partitions: int = 4,
    repeats: int = DEFAULT_REPEATS,
    executor: str = "serial",
    round_latency: float = 0.0,
    cross_every: int = 1,
) -> FrontendBenchResult:
    """Cross-heavy partitioned frontend under one executor choice."""
    best = None
    for _ in range(repeats):
        run = _run_executor_rounds(
            level, specs, batch_size, partitions, executor, round_latency,
            cross_every,
        )
        if best is None or run[0] < best[0]:
            best = run
    dt, oracle, wal, _ = best
    return FrontendBenchResult(
        level=level,
        mode=f"rounds-{executor}",
        batch_size=batch_size,
        ops_per_sec=len(specs) / dt,
        commits=oracle.stats.commits,
        aborts=oracle.stats.aborts,
        wal_records=wal.record_count,
        wal_ledger_entries=wal.flush_count,
        partitions=partitions,
        cross_fraction=oracle.cross_partition_fraction(),
    )


def paired_executor_speedups(
    level: str = "wsi",
    batch_size: int = 32,
    pairs: int = 3,
    num_requests: int = 2_000,
    keyspace: int = DEFAULT_KEYSPACE,
    seed: int = 42,
    partitions: int = 4,
    round_latency: float = 1e-3,
    cross_every: int = 1,
) -> List[float]:
    """Back-to-back (serial, parallel) pairs on the cross-heavy workload
    with injected per-round latency.

    Benchmark E21's measurement, following the E17—E20 protocol: both
    sides run the identical batch-protocol frontend over the same
    requests; only the executor differs, so each ratio isolates round
    overlap.  With every flush touching all ``partitions`` twice (a
    >=50 %-cross workload at batch 32 does), the serial side pays
    ``2 * partitions`` round latencies per flush and the parallel side
    ~2, bounding the ideal ratio at ``partitions``; thread handoff and
    the GIL-bound merge pass eat part of that.
    """
    specs = make_specs(num_requests, keyspace=keyspace, seed=seed)
    ratios = []
    for _ in range(pairs):
        dt_serial, _, _, _ = _run_executor_rounds(
            level, specs, batch_size, partitions, "serial", round_latency,
            cross_every,
        )
        dt_parallel, _, _, _ = _run_executor_rounds(
            level, specs, batch_size, partitions, "parallel", round_latency,
            cross_every,
        )
        ratios.append(dt_serial / dt_parallel)
    return ratios


# ----------------------------------------------------------------------
# begin-path benchmarks (E20): leased begin() vs per-call begin()
# ----------------------------------------------------------------------

@dataclass
class BeginBenchResult:
    """Throughput of the begin path for one lease configuration."""

    level: str
    begin_lease: int
    num_begins: int
    begins_per_sec: float
    #: backend lease round-trips the frontend took (0 at lease 1).
    lease_refills: int
    #: timestamp-reservation WAL records the TSO wrote.
    tso_wal_writes: int
    #: commit decisions interleaved into the run (begin-heavy mix).
    commits: int = 0
    aborts: int = 0
    #: cursor position after the run minus begins+commits served: the
    #: timestamp gap a crash at end-of-run would leave (unserved lease).
    unserved_lease: int = 0

    @property
    def us_per_begin(self) -> float:
        return 1e6 / self.begins_per_sec if self.begins_per_sec else 0.0

    def as_row(self) -> tuple:
        return (
            self.level,
            self.begin_lease,
            f"{self.begins_per_sec:,.0f}",
            f"{self.us_per_begin:.3f}",
            self.lease_refills,
            self.tso_wal_writes,
            self.commits,
            self.unserved_lease,
        )


def _run_begins(
    level: str,
    num_begins: int,
    begin_lease: int,
    commit_every: int = 0,
    partitions: int = 0,
    specs: Sequence[TransactionSpec] = (),
):
    """Time a begin-heavy loop: ``num_begins`` begins, optionally one
    commit submission per ``commit_every`` begins (pre-drawn specs keep
    request generation outside any per-iteration cost asymmetry)."""
    if partitions:
        oracle = PartitionedOracle(level=level, num_partitions=partitions)
        frontend = OracleFrontend(
            oracle, max_batch=32, wal=BookKeeperWAL(), begin_lease=begin_lease
        )
    else:
        oracle = make_oracle(level, wal=BookKeeperWAL())
        frontend = OracleFrontend(oracle, max_batch=32, begin_lease=begin_lease)
    begin = frontend.begin
    submit = frontend.submit_commit_nowait
    gc.collect()
    if commit_every:
        spec_idx = 0
        t0 = time.perf_counter()
        for i in range(num_begins):
            start_ts = begin()
            if i % commit_every == 0:
                submit(specs[spec_idx].commit_request(start_ts))
                spec_idx += 1
        frontend.flush()
        dt = time.perf_counter() - t0
    else:
        t0 = time.perf_counter()
        for _ in range(num_begins):
            begin()
        dt = time.perf_counter() - t0
    return dt, oracle, frontend


def bench_begins(
    level: str,
    num_begins: int,
    begin_lease: int = 1,
    repeats: int = DEFAULT_REPEATS,
    commit_every: int = 0,
    partitions: int = 0,
) -> BeginBenchResult:
    """Best-of-``repeats`` begin throughput for one lease size."""
    specs = (
        make_specs(num_begins // commit_every + 1) if commit_every else ()
    )
    best = None
    for _ in range(repeats):
        run = _run_begins(
            level, num_begins, begin_lease, commit_every, partitions, specs
        )
        if best is None or run[0] < best[0]:
            best = run
    dt, oracle, frontend = best
    return BeginBenchResult(
        level=level,
        begin_lease=begin_lease,
        num_begins=num_begins,
        begins_per_sec=num_begins / dt,
        lease_refills=frontend.stats.begin_leases,
        tso_wal_writes=oracle.timestamp_oracle.wal_write_count,
        commits=oracle.stats.commits,
        aborts=oracle.stats.aborts,
        unserved_lease=frontend.begin_lease_remaining,
    )


def paired_begin_speedups(
    level: str = "wsi",
    begin_lease: int = 32,
    pairs: int = 5,
    num_begins: int = 200_000,
    commit_every: int = 0,
) -> List[float]:
    """Back-to-back (per-call begin, leased begin) measurement pairs.

    Benchmark E20's measurement, following the E17/E18 protocol: both
    sides run the identical frontend loop over the same begin-heavy
    workload; the baseline serves every begin through
    ``backend.begin()`` (one critical-section round-trip each), the
    leased side refills a local block once per ``begin_lease`` begins.
    Median of the per-pair ratios is the noise-robust speedup.
    """
    specs = (
        make_specs(num_begins // commit_every + 1) if commit_every else ()
    )
    ratios = []
    for _ in range(pairs):
        dt_per_call, _, _ = _run_begins(
            level, num_begins, 1, commit_every, 0, specs
        )
        dt_leased, _, _ = _run_begins(
            level, num_begins, begin_lease, commit_every, 0, specs
        )
        ratios.append(dt_per_call / dt_leased)
    return ratios


def sweep_begin_lease(
    level: str = "wsi",
    leases: Sequence[int] = (1, 8, 32, 128, 1024),
    num_begins: int = 200_000,
    repeats: int = DEFAULT_REPEATS,
    commit_every: int = 0,
) -> List[BeginBenchResult]:
    """Begin throughput vs lease size (lease 1 = today's per-call path)."""
    return [
        bench_begins(
            level,
            num_begins,
            begin_lease=lease,
            repeats=repeats,
            commit_every=commit_every,
        )
        for lease in leases
    ]


def profile_frontend(
    num_requests: int = DEFAULT_NUM_REQUESTS,
    batch_size: int = 32,
    level: str = "wsi",
    top: int = 20,
) -> None:
    """cProfile one batch-decide frontend run and print the ``top``
    functions by cumulative time (the ``make profile`` target)."""
    import cProfile
    import pstats

    specs = make_specs(num_requests)
    profiler = cProfile.Profile()
    profiler.enable()
    _run_batched(level, specs, batch_size, 0, False)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)


# ---------------------------------------------------------------------------
# E24: array-backed lastCommit vs dict (scan-heavy warmed batch decide)
# ---------------------------------------------------------------------------
#
# The dict backend's weakness is a *warmed* keyspace: once every checked
# row has a lastCommit entry, the ``isdisjoint`` prefilter always fails
# and each request degrades to one interpreted dict probe per checked
# row.  E24's workload makes that regime the common case — every row in
# a bounded int keyspace is installed before timing starts — and keeps
# the abort rate low (large keyspace, small write sets) so the scan
# cost, not the conflict-rescan cost, is what's measured.  Starts are
# assigned immediately before each batch decides: pre-assigning them
# for the whole run would make every batch conflict with all earlier
# installs and measure the rescan path instead.

E24_KEYSPACE = 1 << 18
E24_READ_ROWS = 256
E24_WRITE_ROWS = 2
E24_WARM_CHUNK = 512


@dataclass
class LastCommitBenchResult:
    """Throughput of one lastCommit backend configuration."""

    level: str
    kind: str  # "dict" | "array"
    batch_size: int
    ops_per_sec: float
    commits: int
    aborts: int

    @property
    def us_per_op(self) -> float:
        return 1e6 / self.ops_per_sec if self.ops_per_sec else 0.0

    def as_row(self) -> tuple:
        return (
            self.level,
            self.kind,
            self.batch_size,
            f"{self.ops_per_sec:,.0f}",
            f"{self.us_per_op:.2f}",
            self.commits,
            self.aborts,
        )


def make_scan_specs(
    num_requests: int,
    keyspace: int = E24_KEYSPACE,
    read_rows: int = E24_READ_ROWS,
    write_rows: int = E24_WRITE_ROWS,
    seed: int = 42,
) -> List[tuple]:
    """Pre-drawn scan-heavy footprints: ``(read_set, write_set)`` of
    plain int rows (wide reads, narrow writes)."""
    import random

    rng = random.Random(seed)
    population = range(keyspace)
    return [
        (
            frozenset(rng.sample(population, read_rows)),
            frozenset(rng.sample(population, write_rows)),
        )
        for _ in range(num_requests)
    ]


def _warmed_oracle(level: str, kind: str, keyspace: int):
    """A WAL-less oracle whose lastCommit holds every key in the
    keyspace (installed through the normal commit path, in chunks)."""
    oracle = make_oracle(level, lastcommit=kind)
    for base in range(0, keyspace, E24_WARM_CHUNK):
        ws = frozenset(range(base, min(base + E24_WARM_CHUNK, keyspace)))
        oracle.commit(CommitRequest(oracle.begin(), write_set=ws))
    return oracle


def _run_lastcommit(level, kind, specs, batch_size, keyspace):
    oracle = _warmed_oracle(level, kind, keyspace)
    begin = oracle.begin
    decide_batch = oracle.decide_batch
    gc.collect()
    t0 = time.perf_counter()
    for base in range(0, len(specs), batch_size):
        chunk = specs[base:base + batch_size]
        batch = [
            CommitRequest(begin(), read_set=reads, write_set=writes)
            for reads, writes in chunk
        ]
        decide_batch(batch)
    dt = time.perf_counter() - t0
    return dt, oracle


def bench_lastcommit(
    level: str,
    specs: Sequence[tuple],
    kind: str,
    batch_size: int = 128,
    keyspace: int = E24_KEYSPACE,
    repeats: int = DEFAULT_REPEATS,
) -> LastCommitBenchResult:
    """Batch-decide throughput of one backend on the warmed scan-heavy
    workload (best of ``repeats``; batch construction is timed on both
    sides identically, so ratios still isolate the backend)."""
    best = None
    for _ in range(repeats):
        run = _run_lastcommit(level, kind, specs, batch_size, keyspace)
        if best is None or run[0] < best[0]:
            best = run
    dt, oracle = best
    warm_commits = (keyspace + E24_WARM_CHUNK - 1) // E24_WARM_CHUNK
    return LastCommitBenchResult(
        level=level,
        kind=kind,
        batch_size=batch_size,
        ops_per_sec=len(specs) / dt,
        commits=oracle.stats.commits - warm_commits,
        aborts=oracle.stats.aborts,
    )


def paired_lastcommit_speedups(
    level: str = "wsi",
    batch_size: int = 128,
    pairs: int = 5,
    num_requests: int = 2_560,
    keyspace: int = E24_KEYSPACE,
    read_rows: int = E24_READ_ROWS,
    seed: int = 42,
) -> List[float]:
    """Back-to-back (dict-backed, array-backed) measurement pairs over
    the identical warmed scan-heavy workload — E24's measurement,
    following the E17/E18 paired-ratio protocol."""
    specs = make_scan_specs(
        num_requests, keyspace=keyspace, read_rows=read_rows, seed=seed
    )
    ratios = []
    for _ in range(pairs):
        dt_dict, _ = _run_lastcommit(level, "dict", specs, batch_size, keyspace)
        dt_array, _ = _run_lastcommit(
            level, "array", specs, batch_size, keyspace
        )
        ratios.append(dt_dict / dt_array)
    return ratios


def sweep_lastcommit_batches(
    level: str = "wsi",
    batch_sizes: Sequence[int] = (8, 32, 128, 512),
    num_requests: int = 2_560,
    keyspace: int = E24_KEYSPACE,
    repeats: int = 1,
) -> List[LastCommitBenchResult]:
    """Both backends at each batch size (E24's sweep table)."""
    specs = make_scan_specs(num_requests, keyspace=keyspace)
    results = []
    for batch_size in batch_sizes:
        for kind in ("dict", "array"):
            results.append(
                bench_lastcommit(
                    level, specs, kind, batch_size=batch_size,
                    keyspace=keyspace, repeats=repeats,
                )
            )
    return results


def measure_lastcommit_footprints(num_entries: int = 100_000) -> dict:
    """Measured bytes/entry of both backends holding ``num_entries``
    int-keyed entries (``sys.getsizeof`` over every reachable piece).

    The honest accounting the ROADMAP note quotes: the array backend is
    *not* smaller — it keeps the same key->id dict the dict backend
    keeps (plus the reverse table, the timestamp array and the int
    lane); what it buys is scan speed.  Key and value objects shared
    with the rest of the process (small-int cache) are counted once per
    backend so both sides are measured the same way.
    """
    import sys as _sys

    from repro.core.lastcommit import ArrayLastCommit

    entries = {key: key + num_entries for key in range(num_entries)}

    dict_store = dict(entries)
    dict_bytes = (
        _sys.getsizeof(dict_store)
        + sum(_sys.getsizeof(k) for k in dict_store)
        + sum(_sys.getsizeof(v) for v in dict_store.values())
    )

    array_store = ArrayLastCommit()
    array_store.install(range(num_entries), 1)
    for key, ts in entries.items():
        array_store[key] = ts
    interner = array_store.interner
    array_bytes = (
        _sys.getsizeof(array_store._ts)
        + _sys.getsizeof(interner._ids)
        + sum(_sys.getsizeof(k) for k in interner._ids)
        + _sys.getsizeof(interner._keys)
        + _sys.getsizeof(interner._int_table)
        + sum(_sys.getsizeof(v) for v in entries.values())
    )

    return {
        "entries": num_entries,
        "dict_bytes_per_entry": dict_bytes / num_entries,
        "array_bytes_per_entry": array_bytes / num_entries,
    }


def profile_lastcommit(
    num_requests: int = 1_280,
    batch_size: int = 128,
    keyspace: int = E24_KEYSPACE,
    read_rows: int = E24_READ_ROWS,
) -> None:
    """Per-phase attribution of the array backend's hot path (the
    ``make profile`` E24 mode): cumulative time in intern / gather /
    compare / install over an E24-shaped batch-128 run, measured by
    driving each phase directly against a warmed store."""
    from repro.core.lastcommit import ArrayLastCommit, _np

    specs = make_scan_specs(
        num_requests, keyspace=keyspace, read_rows=read_rows
    )

    # Phase 1 — intern: dense-id assignment for every footprint, against
    # a fresh interner (the cost a cold store pays exactly once per key).
    cold = ArrayLastCommit()
    intern_many = cold.interner.intern_many
    gc.collect()
    t0 = time.perf_counter()
    for reads, writes in specs:
        intern_many(reads)
        intern_many(writes)
    t_intern = time.perf_counter() - t0

    # Warmed store for the steady-state phases.
    store = ArrayLastCommit()
    store.install(range(keyspace), 1)

    if _np is None:  # pragma: no cover - numpy is in the benchmark env
        print("numpy unavailable: gather/compare phases need the int lane")
        return

    interner = store.interner
    table = interner.int_table
    ts = store._ts

    # Phase 2 — gather: row keys -> numpy array -> slot-id gather.
    gc.collect()
    t0 = time.perf_counter()
    kid_arrays = []
    for reads, _ in specs:
        keys_np = _np.fromiter(reads, _np.int64, len(reads))
        kid_arrays.append(_np.frombuffer(table, dtype=_np.int64)[keys_np])
    t_gather = time.perf_counter() - t0

    # Phase 3 — compare: timestamp gather + max > Ts.
    start_ts = keyspace + 1
    gc.collect()
    t0 = time.perf_counter()
    for kids_np in kid_arrays:
        peak = int(_np.frombuffer(ts, dtype=_np.int64)[kids_np].max())
        if peak > start_ts:  # never on the warmed workload
            raise AssertionError("unexpected conflict in profile run")
    t_compare = time.perf_counter() - t0

    # Phase 4 — install: one bulk install per request's write set.
    gc.collect()
    t0 = time.perf_counter()
    for i, (_, writes) in enumerate(specs):
        store.install(writes, start_ts + i)
    t_install = time.perf_counter() - t0

    total = t_intern + t_gather + t_compare + t_install
    print(
        f"E24 array-backend phase attribution "
        f"({num_requests} requests, batch {batch_size} shape, "
        f"{read_rows} checked rows/request, keyspace {keyspace}):"
    )
    for name, t in (
        ("intern (cold, once per key)", t_intern),
        ("gather (keys -> slot ids)", t_gather),
        ("compare (ts gather + max)", t_compare),
        ("install (write sets)", t_install),
    ):
        print(
            f"  {name:<30} {t * 1e3:8.2f} ms total"
            f"  {t / num_requests * 1e6:8.2f} us/request"
            f"  {t / total * 100:5.1f}%"
        )
    footprints = measure_lastcommit_footprints(num_entries=keyspace)
    print(
        f"  footprint @ {footprints['entries']} int entries: "
        f"dict {footprints['dict_bytes_per_entry']:.1f} B/entry, "
        f"array {footprints['array_bytes_per_entry']:.1f} B/entry"
    )


if __name__ == "__main__":  # pragma: no cover - `make profile` entry point
    import sys

    if "--profile-e24" in sys.argv:
        profile_lastcommit()
    elif "--profile" in sys.argv:
        profile_frontend()
    else:
        specs = make_specs()
        for result in (
            bench_unbatched("wsi", specs),
            bench_batched("wsi", specs, per_request=True),
            bench_batched("wsi", specs),
        ):
            print(result.as_row())
