"""Replicated ledgers: the BookKeeper storage model.

BookKeeper stores a write-ahead log as a sequence of *ledgers*; each
ledger entry is replicated across several storage nodes (*bookies*).  An
append is acknowledged once a write quorum of bookies has the entry; a
read succeeds as long as one replica of every acknowledged entry is
reachable.  The paper uses 2 BookKeeper machines and notes that "every
change into the memory of the status oracle that is related to a
transaction commit/abort is persisted in multiple remote storages via
BookKeeper" (Section 6).

This module models exactly the durability semantics the oracle needs:

* entries are immutable and totally ordered within a ledger;
* an entry is durable iff it reached ``ack_quorum`` bookies;
* bookie crashes lose that bookie's copies; recovery reads survive while
  at least one replica of each acked entry remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.core.errors import LedgerClosedError, NotEnoughBookiesError


@dataclass
class LedgerEntry:
    """One durable record: (entry_id, payload, size in bytes)."""

    entry_id: int
    payload: Any
    size: int


class Bookie:
    """One storage node holding replicas of ledger entries."""

    def __init__(self, bookie_id: int) -> None:
        self.bookie_id = bookie_id
        self._entries: Dict[int, Dict[int, LedgerEntry]] = {}  # ledger -> id -> entry
        self.alive = True
        self.write_count = 0

    def store(self, ledger_id: int, entry: LedgerEntry) -> None:
        if not self.alive:
            raise NotEnoughBookiesError(f"bookie {self.bookie_id} is down")
        self._entries.setdefault(ledger_id, {})[entry.entry_id] = entry
        self.write_count += 1

    def fetch(self, ledger_id: int, entry_id: int) -> Optional[LedgerEntry]:
        if not self.alive:
            return None
        return self._entries.get(ledger_id, {}).get(entry_id)

    def crash(self) -> None:
        """Lose this bookie (its replicas become unreadable)."""
        self.alive = False
        self._entries.clear()

    def restart(self) -> None:
        """Bring the bookie back empty (data was lost at crash)."""
        self.alive = True


class LedgerManager:
    """Creates ledgers and appends entries across an ensemble of bookies."""

    def __init__(
        self,
        num_bookies: int = 3,
        write_quorum: int = 2,
        ack_quorum: int = 2,
    ) -> None:
        if not 1 <= ack_quorum <= write_quorum <= num_bookies:
            raise ValueError(
                "need 1 <= ack_quorum <= write_quorum <= num_bookies, got "
                f"{ack_quorum}/{write_quorum}/{num_bookies}"
            )
        self.bookies = [Bookie(i) for i in range(num_bookies)]
        self.write_quorum = write_quorum
        self.ack_quorum = ack_quorum
        self._ledgers: Dict[int, "Ledger"] = {}
        self._next_ledger_id = 0

    def create_ledger(self) -> "Ledger":
        ledger = Ledger(self._next_ledger_id, self)
        self._ledgers[ledger.ledger_id] = ledger
        self._next_ledger_id += 1
        return ledger

    def get_ledger(self, ledger_id: int) -> "Ledger":
        return self._ledgers[ledger_id]

    def ledgers(self) -> Iterator["Ledger"]:
        return iter(self._ledgers.values())

    def alive_bookies(self) -> List[Bookie]:
        return [b for b in self.bookies if b.alive]


class Ledger:
    """An append-only, replicated sequence of entries."""

    def __init__(self, ledger_id: int, manager: LedgerManager) -> None:
        self.ledger_id = ledger_id
        self._manager = manager
        self._next_entry_id = 0
        self._acked: List[int] = []  # entry ids acknowledged durable
        self._closed = False

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def append(self, payload: Any, size: int = 0) -> int:
        """Replicate ``payload`` to a write quorum; return its entry id.

        Raises :class:`NotEnoughBookiesError` when fewer than
        ``ack_quorum`` bookies are alive — the oracle must then stall
        rather than acknowledge unreplicated commits.
        """
        if self._closed:
            raise LedgerClosedError(f"ledger {self.ledger_id} is closed")
        alive = self._manager.alive_bookies()
        if len(alive) < self._manager.ack_quorum:
            raise NotEnoughBookiesError(
                f"{len(alive)} bookies alive, need {self._manager.ack_quorum}"
            )
        entry = LedgerEntry(self._next_entry_id, payload, size)
        # Round-robin the write set over alive bookies, like BK ensembles.
        targets = self._pick_targets(alive, entry.entry_id)
        for bookie in targets:
            bookie.store(self.ledger_id, entry)
        self._acked.append(entry.entry_id)
        self._next_entry_id += 1
        return entry.entry_id

    def _pick_targets(self, alive: Sequence[Bookie], entry_id: int) -> List[Bookie]:
        quorum = min(self._manager.write_quorum, len(alive))
        start = entry_id % len(alive)
        return [alive[(start + i) % len(alive)] for i in range(quorum)]

    def close(self) -> None:
        """Seal the ledger; further appends fail (BK close semantics)."""
        self._closed = True

    # ------------------------------------------------------------------
    # reads / recovery
    # ------------------------------------------------------------------
    def read(self, entry_id: int) -> LedgerEntry:
        """Read an acknowledged entry from any live replica."""
        for bookie in self._manager.bookies:
            entry = bookie.fetch(self.ledger_id, entry_id)
            if entry is not None:
                return entry
        raise NotEnoughBookiesError(
            f"no live replica of ledger {self.ledger_id} entry {entry_id}"
        )

    def replay(self) -> Iterator[Any]:
        """Yield every acknowledged payload in append order.

        This is the oracle's recovery path: replaying the commit records
        reconstructs the in-memory ``lastCommit`` state.
        """
        for entry_id in self._acked:
            yield self.read(entry_id).payload

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return len(self._acked)

    @property
    def is_closed(self) -> bool:
        return self._closed

    def last_entry_id(self) -> Optional[int]:
        return self._acked[-1] if self._acked else None
