"""Unit tests for the anomaly detectors (§3's phenomena)."""

import pytest

from repro.history import parse_history
from repro.history.anomalies import (
    check_constraint_violation,
    find_dirty_reads,
    find_fuzzy_reads,
    find_lost_updates,
    find_write_skew,
    has_phantom,
)


class TestDirtyRead:
    def test_physical_dirty_read_detected(self):
        h = parse_history("w1[x] r2[x] c1 c2")
        witnesses = find_dirty_reads(h)
        assert len(witnesses) == 1
        assert witnesses[0].transactions == (2, 1)

    def test_read_after_commit_clean(self):
        h = parse_history("w1[x] c1 r2[x] c2")
        assert find_dirty_reads(h) == []

    def test_own_write_not_dirty(self):
        h = parse_history("w1[x] r1[x] c1")
        assert find_dirty_reads(h) == []


class TestFuzzyRead:
    def test_nonrepeatable_read_detected(self):
        h = parse_history("r1[x] w2[x] c2 r1[x] c1")
        witnesses = find_fuzzy_reads(h)
        assert len(witnesses) == 1
        assert witnesses[0].item == "x"

    def test_repeatable_reads_clean(self):
        h = parse_history("r1[x] r1[x] c1")
        assert find_fuzzy_reads(h) == []

    def test_snapshot_systems_never_fuzzy(self):
        # With snapshot reads the second read observes the same snapshot;
        # the detector uses physical semantics to show what snapshotting
        # prevents.
        h = parse_history("r1[x] w2[x] c2 r1[x] c1")
        reads = h.reads_from(snapshot_reads=True)
        assert reads[(1, "x")] is None  # both reads: the initial version


class TestPhantom:
    def test_no_predicate_no_phantom(self):
        h = parse_history("r1[x] w2[x] c2 r1[x] c1")
        assert not has_phantom(h)

    def test_predicate_membership_churn(self):
        h = parse_history("r1[x] w2[x] c2 r1[x] c1")
        assert has_phantom(h, predicate_items=frozenset({"x"}))
        assert not has_phantom(h, predicate_items=frozenset({"y"}))


class TestLostUpdate:
    def test_h3_pattern(self):
        h = parse_history("r1[x] r2[x] w2[x] w1[x] c1 c2")
        assert len(find_lost_updates(h)) == 1

    def test_blind_write_is_not_lost_update(self):
        # §3.2: H4's txn2 never read x, so nothing is "lost".
        h = parse_history("r1[x] w2[x] w1[x] c1 c2")
        assert find_lost_updates(h) == []

    def test_serial_updates_fine(self):
        h = parse_history("r1[x] w1[x] c1 r2[x] w2[x] c2")
        assert find_lost_updates(h) == []

    def test_aborted_txn_cannot_lose_updates(self):
        h = parse_history("r1[x] r2[x] w2[x] w1[x] c1 a2")
        assert find_lost_updates(h) == []


class TestWriteSkew:
    def test_h2_pattern(self):
        h = parse_history("r1[x] r1[y] r2[x] r2[y] w1[x] w2[y] c1 c2")
        assert len(find_write_skew(h)) == 1

    def test_h1_is_also_skew_shaped(self):
        h = parse_history("r1[x] r2[y] w1[y] w2[x] c1 c2")
        assert len(find_write_skew(h)) == 1

    def test_overlapping_write_sets_excluded(self):
        # If write sets intersect, SI catches it: not write skew.
        h = parse_history("r1[x] r2[y] w1[y] w1[x] w2[x] w2[y] c1 c2")
        assert find_write_skew(h) == []

    def test_one_directional_read_not_skew(self):
        h = parse_history("r1[x] w2[x] w1[y] c1 c2")
        assert find_write_skew(h) == []

    def test_non_concurrent_not_skew(self):
        h = parse_history("r1[x] w1[y] c1 r2[y] w2[x] c2")
        assert find_write_skew(h) == []


class TestConstraintExecution:
    def test_serial_execution_preserves_constraint(self):
        h = parse_history("r1[x] r1[y] w1[x] c1 r2[x] r2[y] c2")

        def decrement_if_valid(txn, item, snapshot):
            return snapshot[item] - 1

        holds = check_constraint_violation(
            h,
            initial={"x": 1, "y": 1},
            apply_write=decrement_if_valid,
            constraint=lambda final: final["x"] + final["y"] > 0,
        )
        assert holds  # one decrement: 0 + 1 > 0

    def test_chained_dataflow(self):
        # txn2 reads txn1's committed write and adds to it.
        h = parse_history("w1[x] c1 r2[x] w2[y] c2")

        def apply_write(txn, item, snapshot):
            if txn == 1:
                return 10
            return snapshot["x"] + 5

        holds = check_constraint_violation(
            h,
            initial={"x": 0, "y": 0},
            apply_write=apply_write,
            constraint=lambda final: final["y"] == 15,
        )
        assert holds
