"""Write-ahead logging substrate (the paper's BookKeeper).

Public surface:

* :class:`BookKeeperWAL` — batching WAL (1 KB / 5 ms triggers, Appendix A).
* :class:`LedgerManager` / :class:`Ledger` / :class:`Bookie` — replicated
  ledger storage with quorum durability.
* :class:`WALRecord` — the logical records the status oracle persists.
* :class:`WALTail` — incremental durable-record cursor (warm-standby
  catch-up: O(delta) takeover instead of a full replay).
"""

from repro.wal.bookkeeper import (
    BOOKKEEPER_MAX_WRITES_PER_SEC,
    DEFAULT_BATCH_SIZE_BYTES,
    DEFAULT_BATCH_TIMEOUT,
    GROUP_COMMIT_BYTES_PER_DECISION,
    GROUP_COMMIT_RECORD,
    BookKeeperWAL,
    WALRecord,
    WALTail,
    group_commit_payload,
)
from repro.wal.ledger import Bookie, Ledger, LedgerEntry, LedgerManager

__all__ = [
    "BookKeeperWAL",
    "WALRecord",
    "WALTail",
    "GROUP_COMMIT_RECORD",
    "GROUP_COMMIT_BYTES_PER_DECISION",
    "group_commit_payload",
    "LedgerManager",
    "Ledger",
    "LedgerEntry",
    "Bookie",
    "DEFAULT_BATCH_SIZE_BYTES",
    "DEFAULT_BATCH_TIMEOUT",
    "BOOKKEEPER_MAX_WRITES_PER_SEC",
]
