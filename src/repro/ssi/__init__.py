"""Serializable snapshot isolation (Cahill et al.), the §7.1 comparator.

Public surface:

* :class:`SerializableSIOracle` — SI's write-write check plus
  commit-time dangerous-structure (pivot) detection.
"""

from repro.ssi.cahill import SerializableSIOracle

__all__ = ["SerializableSIOracle"]
