"""Exception hierarchy for the transactional stack.

Every failure mode in the paper's protocol maps to one exception type so
that callers can distinguish, e.g., a conflict abort (expected, retryable)
from a protocol misuse (a bug in the caller).
"""

from __future__ import annotations


class TransactionError(Exception):
    """Base class for every error raised by the transactional stack."""


class AbortException(TransactionError):
    """A transaction was aborted and its writes must be discarded.

    Attributes:
        txn_id: identifier (start timestamp) of the aborted transaction.
        reason: short machine-readable reason tag (e.g. ``"ww-conflict"``,
            ``"rw-conflict"``, ``"tmax"``, ``"lock-held"``, ``"client"``).
    """

    def __init__(self, txn_id: int, reason: str = "conflict") -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class ConflictAbort(AbortException):
    """Abort due to a detected conflict (write-write or read-write)."""

    def __init__(self, txn_id: int, reason: str, row: object = None) -> None:
        super().__init__(txn_id, reason)
        self.row = row


class TmaxAbort(AbortException):
    """Pessimistic abort by the bounded oracle (Algorithm 3, line 8).

    Raised when a row is absent from the in-memory ``lastCommit`` map and
    the transaction's start timestamp is older than ``Tmax``, so the oracle
    cannot prove the absence of a conflict.
    """

    def __init__(self, txn_id: int, tmax: int) -> None:
        super().__init__(txn_id, "tmax")
        self.tmax = tmax


class LockConflict(TransactionError):
    """Percolator-style lock acquisition failure (lock already held)."""

    def __init__(self, row: object, holder: int) -> None:
        super().__init__(f"row {row!r} locked by transaction {holder}")
        self.row = row
        self.holder = holder


class InvariantViolation(TransactionError):
    """An internal protocol invariant did not hold — a bug, not a user error.

    The typed replacement for bare ``assert`` in ``src/`` protocol code
    (the ``no-bare-assert`` lint pass): asserts vanish under
    ``python -O``, which is exactly when a production deployment would
    run, so internal-consistency checks must raise a real exception.
    """


class InvalidTransactionState(TransactionError):
    """Operation attempted on a transaction in the wrong state.

    For example reading after commit, or committing twice.
    """


class OracleClosed(TransactionError):
    """The status oracle has been shut down and rejects new requests."""


class Overloaded(TransactionError):
    """The serving tier shed this request under admission control.

    Raised at submit time when the frontend's pending-decision queue is
    at its ``max_queue_depth`` bound: instead of queueing without bound
    (and letting latency grow past any deadline), the oracle rejects the
    request outright and the client backs off and retries — graceful
    degradation under overload.  Retryable by construction: nothing was
    decided, persisted, or counted for the rejected request.
    """

    def __init__(self, queue_depth: int, limit: int) -> None:
        super().__init__(
            f"admission control: {queue_depth} decisions in flight "
            f"(max_queue_depth={limit})"
        )
        self.queue_depth = queue_depth
        self.limit = limit


class DecisionPending(TransactionError):
    """A batched commit decision was read before its batch flushed.

    Raised by :class:`repro.server.CommitFuture` accessors; the caller
    must wait for the flush (or force one) before reading the outcome.
    """


class RecoveryError(TransactionError):
    """WAL replay failed or produced an inconsistent oracle state."""


class WALError(TransactionError):
    """Base class for write-ahead-log failures."""


class LedgerClosedError(WALError):
    """Append attempted on a closed BookKeeper ledger."""


class NotEnoughBookiesError(WALError):
    """Replication constraint cannot be met by the available bookies."""
