"""E4 — Figure 7: performance with zipfian distribution.

Paper: mixed workload over zipfian-popular rows.  Popular items stay in
the data servers' caches, so throughput is higher and latency lower than
uniform; the servers saturate after 160 clients (WSI: 461 TPS at 172 ms),
and beyond that "adding more clients largely increases the latency, with
only marginal improvement on throughput".  WSI tracks SI closely.
"""

import pytest

from repro.bench import format_table, knee_index, latency_throughput_chart, saturates, within_factor
from repro.sim.cluster_sim import sweep_cluster

CLIENTS = [5, 10, 20, 40, 80, 160, 320, 640]


def run_all():
    si = sweep_cluster("si", "zipfian", client_counts=CLIENTS, measure=8.0)
    wsi = sweep_cluster("wsi", "zipfian", client_counts=CLIENTS, measure=8.0)
    uniform = sweep_cluster("wsi", "uniform", client_counts=[160], measure=8.0)
    return si, wsi, uniform


@pytest.mark.figure("fig7")
def test_e4_fig7_zipfian_performance(benchmark, print_header):
    si, wsi, uniform = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_header("E4 — Figure 7: performance with zipfian distribution")
    rows = [
        (
            a.num_clients,
            f"{a.throughput_tps:.0f}",
            f"{a.avg_latency_ms:.0f}",
            f"{b.throughput_tps:.0f}",
            f"{b.avg_latency_ms:.0f}",
            f"{100 * b.cache_hit_rate:.0f}%",
        )
        for a, b in zip(si, wsi)
    ]
    print(
        format_table(
            ["clients", "SI TPS", "SI ms", "WSI TPS", "WSI ms", "WSI hit"],
            rows,
            title="mixed workload, zipfian (paper: WSI 461 TPS @ 172 ms at 160 clients)",
        )
    )
    print()
    print(latency_throughput_chart(
        "Figure 7 (reproduced): zipfian distribution",
        {
            "WSI": [(r.throughput_tps, r.avg_latency_ms) for r in wsi],
            "SI": [(r.throughput_tps, r.avg_latency_ms) for r in si],
        },
    ))
    at_160 = next(r for r in wsi if r.num_clients == 160)
    print(
        f"\nWSI at 160 clients: {at_160.throughput_tps:.0f} TPS @ "
        f"{at_160.avg_latency_ms:.0f} ms (paper: 461 TPS @ 172 ms)"
    )

    # Shape: zipfian beats uniform at equal load (cache effect).
    uni_160 = uniform[0]
    assert at_160.throughput_tps > uni_160.throughput_tps
    assert at_160.avg_latency_ms < uni_160.avg_latency_ms
    # Saturation knee around the 160-client mark: marginal gains after.
    tputs = [r.throughput_tps for r in wsi]
    assert knee_index(tputs) <= CLIENTS.index(320)
    assert saturates(tputs)
    # WSI's throughput at the paper's knee within 1.6x of 461 TPS.
    assert within_factor(at_160.throughput_tps, 461, 1.6)
    # WSI comparable to SI throughout.
    for a, b in zip(si, wsi):
        assert within_factor(b.throughput_tps, a.throughput_tps, 1.3)
