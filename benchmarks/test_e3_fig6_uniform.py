"""E3 — Figure 6: performance with uniform distribution.

Paper: mixed workload (50% read-only / 50% complex), rows uniform on
20M; clients 5 → 640.  Uniform access spreads load evenly, abort rate is
near zero, the data servers saturate after 320 clients at ~391 TPS, and
latency climbs from ~200 ms toward ~1600 ms purely from queueing.  SI
and WSI overlap — this experiment isolates the *overhead* of the two
conflict checks, which is "almost the same" (§6.4).
"""

import pytest

from repro.bench import format_table, latency_throughput_chart, saturates, within_factor
from repro.sim.cluster_sim import sweep_cluster

CLIENTS = [5, 10, 20, 40, 80, 160, 320, 640]


def run_both():
    si = sweep_cluster("si", "uniform", client_counts=CLIENTS, measure=8.0)
    wsi = sweep_cluster("wsi", "uniform", client_counts=CLIENTS, measure=8.0)
    return si, wsi


@pytest.mark.figure("fig6")
def test_e3_fig6_uniform_performance(benchmark, print_header):
    si, wsi = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_header("E3 — Figure 6: performance with uniform distribution")
    rows = [
        (
            a.num_clients,
            f"{a.throughput_tps:.0f}",
            f"{a.avg_latency_ms:.0f}",
            f"{b.throughput_tps:.0f}",
            f"{b.avg_latency_ms:.0f}",
            f"{100 * b.abort_rate:.2f}%",
        )
        for a, b in zip(si, wsi)
    ]
    print(
        format_table(
            ["clients", "SI TPS", "SI ms", "WSI TPS", "WSI ms", "WSI aborts"],
            rows,
            title="mixed workload, uniform on 20M rows (paper: saturates ~391 TPS)",
        )
    )
    print()
    print(latency_throughput_chart(
        "Figure 6 (reproduced): uniform distribution",
        {
            "WSI": [(r.throughput_tps, r.avg_latency_ms) for r in wsi],
            "SI": [(r.throughput_tps, r.avg_latency_ms) for r in si],
        },
    ))
    wsi_max = max(r.throughput_tps for r in wsi)
    print(f"\nWSI saturation: {wsi_max:.0f} TPS (paper: 391 TPS after 320 clients)")

    # Shape: saturation in the paper's range.
    assert saturates([r.throughput_tps for r in wsi])
    assert within_factor(wsi_max, 391, 1.5)
    # Abort rate ~ zero under uniform (paper: "close to zero").
    assert all(r.abort_rate < 0.01 for r in wsi)
    assert all(r.abort_rate < 0.01 for r in si)
    # SI and WSI have "almost the same performance": every point within
    # 25% of each other on throughput.
    for a, b in zip(si, wsi):
        assert within_factor(b.throughput_tps, a.throughput_tps, 1.25)
    # Latency rises steeply past saturation (queueing).
    assert wsi[-1].avg_latency_ms > 3 * wsi[0].avg_latency_ms
