"""Partitioned status oracles: the paper's scale-out footnote, implemented.

§6.3, footnote 6: "the reported performance is for one status oracle
implemented on a simple dual-core machine.  To get a higher throughput,
one could partition the database and use a status oracle for each
partition."

:class:`PartitionedOracle` shards the ``lastCommit`` state by row hash
across N independent conflict-detection partitions while keeping a
single shared timestamp oracle, so timestamps still form one global
commit order and snapshot semantics are unchanged.  Rows are placed with
a process-independent hash (:func:`~repro.core.sharding.stable_hash`,
pluggable via ``hash_fn=``): every frontend, replica and recovered
instance must agree on which partition owns a row, which Python's salted
builtin ``hash()`` cannot guarantee.  Commit handling:

* a transaction whose footprint touches **one** partition is decided by
  that partition alone — the common case the footnote envisions, and
  the source of the throughput scaling;
* a **cross-partition** transaction runs a two-phase decision: every
  involved partition validates its share of the checked rows through the
  shared bulk primitive
  (:meth:`~repro.core.status_oracle.StatusOracle.check_share`, phase 1);
  only if *all* shares pass is the commit timestamp assigned and every
  partition's ``lastCommit`` share installed (phase 2).  Because checks
  precede any update and the commit timestamp is allocated once, the
  outcome is identical to what a single monolithic oracle would decide —
  a property the test suite checks by differential execution.

* a **group-commit batch** (:meth:`PartitionedOracle.decide_batch`)
  decides the *whole* batch — single-partition and cross-partition
  requests alike — with one bulk protocol round per involved partition
  per flush, in three phases:

  1. **validate** — each involved partition checks all of its shares for
     the batch against its ``lastCommit`` in one round (one RPC per
     partition per flush in a distributed deployment), reporting the
     first conflicting row per share;
  2. **merge** — the coordinator resolves in-batch conflicts and
     assigns commit timestamps in batch order using only batch-local
     knowledge: rows written by an earlier *committed* batch member sit
     in their partition's *staged install share* until phase 3, and any
     checked row found there conflicts (every batch member began before
     any batch commit timestamp is issued, so the writer's Tc always
     exceeds the reader's Ts); the commit table, payloads and futures
     are filled along the way;
  3. **install** — every partition's staged share is bulk-installed
     once (one install RPC per partition per flush), each row at its
     last in-batch writer's Tc.

  ``lastCommit`` never holds a provisional value, so an error escaping
  mid-batch leaves only fully-applied prefixes behind, exactly like
  sequential :meth:`commit` calls.  Decisions, timestamps, conflict
  rows, per-partition stats, commit table — all land exactly as the
  sequential path would leave them; the hypothesis suite in
  ``tests/server`` pins this for mixed single/cross batches, client
  aborts, read-only requests and mid-batch commit-table errors.

The isolation policy (which rows are checked) is inherited per-partition
from the usual SI/WSI oracles, so the partitioned deployment serves
either level.

Two axes of the deployment are pluggable (the pluggable-executor PR),
and they are deliberately orthogonal — placement policy vs round
mechanism, the narrow interface the MetaSys line of work argues for:

* **who drives the rounds** — the batch protocol's per-partition
  validation and install rounds are extracted into closures dispatched
  through a :class:`~repro.core.executor.PartitionExecutor`.  Each
  partition shard carries its own lock, so rounds on *different*
  partitions are safe to overlap: :class:`~repro.core.executor.SerialExecutor`
  (default) runs them inline exactly as before, while
  :class:`~repro.core.executor.ParallelExecutor` fans them out over a
  thread pool and joins at the existing merge barrier.  Round work that
  releases the GIL — a real per-partition RPC, or the ``round_latency``
  sleep benchmark E21 injects to model one — then overlaps for real
  wall-clock; the executor choice never changes decisions.
* **where a row lives** — routing goes through a
  :class:`~repro.core.sharding.ShardingPolicy` (``sharding=``):
  :class:`~repro.core.sharding.HashSharding` (the default, identical to
  the old bare ``hash_fn=`` hook, which still works),
  :class:`~repro.core.sharding.RangeSharding` (contiguous key bands),
  or :class:`~repro.core.sharding.DirectorySharding` (explicit group
  affinity) — the lever that converts cross-partition traffic into
  aligned traffic instead of merely amortizing it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from time import perf_counter
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.racecheck import active_checker, make_lock
from repro.core.commit_table import CommitTable
from repro.core.errors import OracleClosed
from repro.core.executor import (
    PartitionExecutor,
    SerialExecutor,
    make_executor,
)
from repro.core.sharding import (
    INT_IDENTITY_BOUND,
    HashSharding,
    ShardingPolicy,
    stable_hash,
)
from repro.core.lastcommit import ArrayLastCommit
from repro.core.status_oracle import (
    CLIENT_ABORT,
    CommitRequest,
    CommitResult,
    OracleStats,
    StatusOracle,
    make_oracle,
)
from repro.core.timestamps import TimestampOracle

RowKey = Hashable


@dataclass
class BatchRounds:
    """Protocol-round counters of the batch-decide engine.

    One *check round* is one per-partition bulk validation pass (phase
    1) and one *install round* one per-partition bulk install (phase 3)
    — each maps to a single RPC per partition per flush in a distributed
    deployment, which is the whole point of the protocol: a flush of 32
    requests over 4 partitions costs at most 8 rounds instead of up to
    64 per-request partition visits.
    """

    flushes: int = 0
    check_rounds: int = 0
    install_rounds: int = 0
    single_requests: int = 0
    cross_requests: int = 0
    #: most rounds driven on any one partition this flush (<= 2 under
    #: the protocol: one validation plus one install) — the per-flush
    #: occupancy bound that makes E21's overlap claim observable: with a
    #: parallel executor the flush's round wall-clock tracks this, not
    #: check_rounds + install_rounds.
    max_partition_rounds: int = 0
    #: executor wall-clock of the phase-1 validation fan-out (seconds).
    validate_wall: float = 0.0
    #: executor wall-clock of the phase-3 install fan-out (seconds).
    install_wall: float = 0.0

    def add(self, other: "BatchRounds") -> None:
        self.flushes += other.flushes
        self.check_rounds += other.check_rounds
        self.install_rounds += other.install_rounds
        self.single_requests += other.single_requests
        self.cross_requests += other.cross_requests
        if other.max_partition_rounds > self.max_partition_rounds:
            self.max_partition_rounds = other.max_partition_rounds
        self.validate_wall += other.validate_wall
        self.install_wall += other.install_wall


class PartitionedOracle:
    """N conflict-detection partitions behind one timestamp oracle.

    Exposes the same ``begin`` / ``commit`` / ``abort`` surface as
    :class:`~repro.core.status_oracle.StatusOracle`, so the transaction
    client and the benchmarks can use it interchangeably.

    Args:
        level: isolation level, ``"si"`` or ``"wsi"``.
        num_partitions: how many conflict-detection shards.
        timestamp_oracle: the shared TSO (one is created if omitted).
        hash_fn: row-placement hash; must be deterministic across
            processes (the default,
            :func:`~repro.core.sharding.stable_hash`, is).  Kept as the
            legacy shim — it wraps into
            :class:`~repro.core.sharding.HashSharding`; prefer
            ``sharding=`` for anything beyond a custom hash.
        sharding: a :class:`~repro.core.sharding.ShardingPolicy`
            (mutually exclusive with ``hash_fn``); defaults to
            ``HashSharding()``, the seed behaviour.
        executor: who drives the batch protocol's per-partition rounds —
            ``"serial"`` (default), ``"parallel"``, or a
            :class:`~repro.core.executor.PartitionExecutor` instance.
            When omitted, the ``REPRO_EXECUTOR`` environment variable
            picks the default.  An executor *built here* is owned and
            shut down by :meth:`close`; a passed-in instance stays the
            caller's.  Executor choice never changes decisions.
        round_latency: injected latency (seconds) slept at the start of
            every batch-protocol validation/install round, modeling the
            per-partition commit-table RPC of a distributed deployment
            (``time.sleep`` releases the GIL, so a parallel executor
            overlaps it for real — benchmark E21's lever).  Zero
            (default) keeps rounds free; the per-request ``commit()``
            path never sleeps.
        batch_cross: ``True`` (default) decides group-commit batches
            through the cross-partition batch protocol; ``False``
            restores the pre-protocol engine — cross-partition items
            break the batch and fall back to per-request two-phase
            decisions — kept as benchmark E19's baseline.
    """

    def __init__(
        self,
        level: str = "wsi",
        num_partitions: int = 4,
        timestamp_oracle: Optional[TimestampOracle] = None,
        hash_fn: Optional[Callable[[RowKey], int]] = None,
        batch_cross: bool = True,
        sharding: Optional[ShardingPolicy] = None,
        executor: Any = None,
        round_latency: float = 0.0,
        lastcommit: Any = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if hash_fn is not None and sharding is not None:
            raise ValueError("pass hash_fn= or sharding=, not both")
        if round_latency < 0:
            raise ValueError("round_latency must be >= 0")
        if lastcommit is not None and not isinstance(lastcommit, str):
            # A concrete store instance would be *shared* across shards,
            # which breaks the per-shard interner premise — only a kind
            # string (resolved per shard) is meaningful here.
            raise ValueError(
                "PartitionedOracle takes a lastcommit kind string "
                "('dict'/'array'), not a store instance"
            )
        self.level = level
        self._tso = timestamp_oracle or TimestampOracle()
        self._sharding = sharding or HashSharding(hash_fn)
        self._hash = (
            self._sharding.hash_fn
            if isinstance(self._sharding, HashSharding)
            else None
        )
        # Routing fast path: hash placement over stable_hash lets the
        # per-row policy call inline away for small non-negative ints.
        self._fast_hash = self._hash is stable_hash
        self.round_latency = round_latency
        # The executor drives the batch protocol's per-partition rounds;
        # only an executor built *here* is owned (shut down on close).
        self._owns_executor = not isinstance(executor, PartitionExecutor)
        self._executor: PartitionExecutor = make_executor(
            executor, max_workers=num_partitions
        )
        # Every partition shares the TSO (one global commit order) and
        # gets its own lastCommit + stats; their private commit tables
        # are unused — the partitioned deployment keeps one authoritative
        # commit table, like the monolithic oracle.  Under the array
        # backend each shard gets its *own* interner (ids are per-shard
        # dense, never shared — the shared-nothing premise of the
        # partition-server design), built fresh per shard by
        # make_lastcommit inside make_oracle.
        self.partitions: List[StatusOracle] = [
            make_oracle(level, timestamp_oracle=self._tso,
                        lastcommit=lastcommit)
            for _ in range(num_partitions)
        ]
        # One lock per shard, held for the duration of that shard's
        # round closure: rounds on different partitions may overlap
        # freely (the parallel executor's licence), rounds on the same
        # partition serialize.  The coordinator itself (merge pass,
        # per-request commit()) stays single-threaded by construction.
        # Locks come from repro.analysis.racecheck, so REPRO_RACECHECK=1
        # runs lock-order/guard checking on the real protocol locks.
        # guarded-by: _last_commit -> _shard_locks
        self._shard_locks: List[threading.Lock] = [
            make_lock(f"shard[{i}]") for i in range(num_partitions)
        ]
        rc = active_checker()
        if rc is not None:
            for i in range(num_partitions):
                rc.register_state(f"shard[{i}].lastCommit", f"shard[{i}]")
                # The array backend's interner mutates on install (a new
                # row key assigns a slot id), so it shares the shard
                # lock's discipline and is checked as its own state.
                if isinstance(self.partitions[i]._last_commit,
                              ArrayLastCommit):
                    rc.register_state(
                        f"shard[{i}].interner", f"shard[{i}]"
                    )
        self.commit_table = CommitTable()
        self.stats = OracleStats()
        self.cross_partition_commits = 0
        self.cross_partition_aborts = 0
        self.single_partition_commits = 0
        self.single_partition_aborts = 0
        #: accumulated protocol rounds across every decide_batch call.
        self.round_stats = BatchRounds()
        #: rounds of the most recent decide_batch call (the frontend
        #: copies this onto its FlushedBatch).
        self.last_flush_rounds: Optional[BatchRounds] = None
        if not batch_cross:
            # The pre-protocol batch engine (cross-partition items fall
            # back to per-request two-phase decisions mid-batch), kept
            # as benchmark E19's baseline; the instance attribute
            # shadows the method, so the frontend picks it up.
            self._decide_batch = self._decide_batch_per_request_cross
        self._closed = False

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def partition_of(self, row: RowKey) -> int:
        return self._sharding.partition_of(row, len(self.partitions))

    def _split(self, rows: FrozenSet[RowKey]) -> Dict[int, List[RowKey]]:
        num = len(self.partitions)
        shares: Dict[int, List[RowKey]] = {}
        setdefault = shares.setdefault
        # _split is hot (E18/E19): with the default placement, small
        # non-negative integer rows hash to themselves, so the per-row
        # hash_fn call is inlined away for them (stable_hash's identity
        # rule, bound included so cross-type numeric equality holds).
        # Shares are lists (the input is a set, so rows are already
        # unique): they are cheaper to build and to scan than sets, and
        # their order — the footprint's iteration order restricted to
        # the partition — is what both decision paths scan, keeping
        # conflict rows identical across them.
        if self._fast_hash:
            for row in rows:
                if type(row) is int and 0 <= row < INT_IDENTITY_BOUND:
                    p = row % num
                else:
                    p = stable_hash(row) % num
                setdefault(p, []).append(row)
        elif self._hash is not None:
            h = self._hash
            for row in rows:
                setdefault(h(row) % num, []).append(row)
        else:
            p_of = self._sharding.partition_of
            for row in rows:
                setdefault(p_of(row, num), []).append(row)
        return shares

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    def begin(self) -> int:
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")
        return self._tso.next()

    def lease(self, n: int) -> Tuple[int, int]:
        """Lease a contiguous block of ``n`` start timestamps from the
        shared TSO (the begin-side counterpart of :meth:`decide_batch`;
        see :meth:`repro.core.status_oracle.StatusOracle.lease`).  The
        block stays one global commit order: every partition's commit
        timestamps are assigned from the same cursor, above the block."""
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")
        return self._tso.lease(n)

    def commit(self, request: CommitRequest) -> CommitResult:
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")

        # Read-only fast path, identical to the monolithic oracle
        # (§4.1 condition 3 / §5.1: an empty write set never aborts,
        # whether or not the client submitted its read set).
        if request.is_read_only:
            self.stats.commits += 1
            self.stats.read_only_commits += 1
            return CommitResult(True, request.start_ts, commit_ts=None)

        pid = self._single_partition_of(request)
        if pid >= 0:
            # The common case the §6.3 footnote envisions: the whole
            # footprint lives in one partition — decided there directly,
            # with no share splitting or share-request construction.
            return self._commit_single(request, pid)
        return self._commit_cross(request)

    def _single_partition_of(self, request: CommitRequest) -> int:
        """The single partition owning the whole footprint, or -1.

        Under SI the checked rows *are* the write set, so only WSI needs
        the second (read-set) scan.
        """
        num = len(self.partitions)
        if num == 1:
            return 0
        h = self._hash
        if h is None:
            # Non-hash policy: every row through partition_of.
            p_of = self._sharding.partition_of
            pid = -1
            for row in request.write_set:
                p = p_of(row, num)
                if pid < 0:
                    pid = p
                elif p != pid:
                    return -1
            if self.level == "wsi":
                for row in request.read_set:
                    p = p_of(row, num)
                    if pid < 0:
                        pid = p
                    elif p != pid:
                        return -1
            return pid
        # Same inlined integer fast path as _split: this scan runs for
        # every non-read-only request, batched or not.
        fast = self._fast_hash
        pid = -1
        for row in request.write_set:
            if fast and type(row) is int and 0 <= row < INT_IDENTITY_BOUND:
                p = row % num
            else:
                p = h(row) % num
            if pid < 0:
                pid = p
            elif p != pid:
                return -1
        if self.level == "wsi":
            for row in request.read_set:
                if fast and type(row) is int and 0 <= row < INT_IDENTITY_BOUND:
                    p = row % num
                else:
                    p = h(row) % num
                if pid < 0:
                    pid = p
                elif p != pid:
                    return -1
        return pid

    def _commit_single(self, request: CommitRequest, pid: int) -> CommitResult:
        """Decide a single-partition request against one shard directly."""
        partition = self.partitions[pid]
        lc = partition._last_commit
        lc_get = lc.get
        start = request.start_ts
        checked = 0
        conflict_row = None
        for row in self._rows_to_check(request):
            checked += 1
            last = lc_get(row)
            if last is not None and last > start:
                conflict_row = row
                break
        partition.stats.rows_checked += checked
        if conflict_row is not None:
            reason = "rw-conflict" if self.level == "wsi" else "ww-conflict"
            self.stats.aborts += 1
            self.stats.conflict_aborts += 1
            self.single_partition_aborts += 1
            self.commit_table.record_abort(start)
            return CommitResult(
                False, start, reason=reason, conflict_row=conflict_row
            )
        commit_ts = self._tso.next()
        for row in request.write_set:
            # lint: skip=guarded-by -- coordinator-only serial path; no
            # shard rounds are in flight during a direct commit().
            lc[row] = commit_ts
        self.stats.rows_updated += len(request.write_set)
        self.commit_table.record_commit(start, commit_ts)
        self.stats.commits += 1
        self.single_partition_commits += 1
        return CommitResult(True, start, commit_ts=commit_ts)

    def _commit_cross(self, request: CommitRequest) -> CommitResult:
        """Two-phase decision for one cross-partition footprint.

        Phase 1 hands each involved partition its share of the checked
        rows through the shared bulk primitive
        (:meth:`~repro.core.status_oracle.StatusOracle.check_share`);
        phase 2 assigns Tc once and installs every write share.  The
        batch engine runs the same share validation, amortized over a
        whole flush (one round per partition per batch instead of one
        visit per partition per request).
        """
        start = request.start_ts
        check_shares = self._split(self._rows_to_check(request))
        # Under SI the checked rows *are* the write set: one split
        # serves both phases.
        write_shares = (
            self._split(request.write_set)
            if self.level == "wsi"
            else check_shares
        )

        # Phase 1: every involved partition validates its share (for SI
        # the write share, for WSI the read share).
        for pid in sorted(check_shares):
            partition = self.partitions[pid]
            row, checked = partition.check_share(check_shares[pid], start)
            partition.stats.rows_checked += checked
            if row is not None:
                reason = "rw-conflict" if self.level == "wsi" else "ww-conflict"
                self.stats.aborts += 1
                self.stats.conflict_aborts += 1
                self.cross_partition_aborts += 1
                self.commit_table.record_abort(start)
                return CommitResult(
                    False, start, reason=reason, conflict_row=row
                )

        # Phase 2: decision is commit — assign Tc once, install shares.
        commit_ts = self._tso.next()
        for pid, rows in write_shares.items():
            self.partitions[pid]._install(rows, commit_ts)
            self.stats.rows_updated += len(rows)
        self.commit_table.record_commit(start, commit_ts)
        self.stats.commits += 1
        self.cross_partition_commits += 1
        return CommitResult(True, start, commit_ts=commit_ts)

    def abort(self, start_ts: int) -> None:
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")
        self.commit_table.record_abort(start_ts)
        self.stats.aborts += 1

    def _rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        if self.level == "si":
            return request.write_set
        return request.read_set

    # ------------------------------------------------------------------
    # per-partition round closures: the executor's unit of work
    # ------------------------------------------------------------------
    def _validation_round(self, pid: int, group: list) -> Callable[[], list]:
        """Build one partition's phase-1 bulk validation round.

        The closure sleeps the injected ``round_latency`` (the modeled
        per-partition RPC), takes its shard's lock, and scans every
        share of the batch against this shard's ``lastCommit`` — the
        :meth:`StatusOracle.check_share` scan inlined with locally-bound
        state plus the C-speed ``isdisjoint`` prefilter (a share
        touching no ever-written row, the common case under a large
        keyspace, costs one membership sweep).  It returns ``(entry,
        pid, conflict_row)`` verdicts instead of writing entry slots so
        all entry mutation stays on the coordinator thread.
        """
        partition = self.partitions[pid]
        lock = self._shard_locks[pid]
        delay = self.round_latency
        rc = active_checker()
        shard_state = f"shard[{pid}].lastCommit"

        def validation_round() -> list:
            if delay:
                time.sleep(delay)
            verdicts = []
            with lock:
                if rc is not None:
                    rc.access(shard_state)
                lc = partition._last_commit
                if lc.__class__ is ArrayLastCommit:
                    # Vectorised share scan: same first-conflict-in-
                    # share-order verdict as the probe loop below.
                    scan = lc.scan_conflict
                    for entry, share, start in group:
                        row, _ = scan(share, start)
                        if row is not None:
                            verdicts.append((entry, pid, row))
                    return verdicts
                lc_get = lc.get
                lc_isdisjoint = lc.keys().isdisjoint
                for entry, share, start in group:
                    if lc_isdisjoint(share):
                        continue
                    for row in share:
                        last = lc_get(row)
                        if last is not None and last > start:
                            verdicts.append((entry, pid, row))
                            break
            return verdicts

        return validation_round

    def _install_round(
        self, pid: int, staged: Dict[RowKey, int]
    ) -> Callable[[], None]:
        """Build one partition's phase-3 bulk install round: sleep the
        injected round latency, take the shard lock, land the staged
        share in one ``dict.update``."""
        partition = self.partitions[pid]
        lock = self._shard_locks[pid]
        delay = self.round_latency
        rc = active_checker()
        shard_state = f"shard[{pid}].lastCommit"

        def install_round() -> None:
            if delay:
                time.sleep(delay)
            with lock:
                if rc is not None:
                    rc.access(shard_state)
                partition._last_commit.update(staged)

        return install_round

    def _shard_decision_round(
        self, pid: int, group: List[list], reason_tag: str
    ) -> Callable[[], None]:
        """Build one shard's decide-and-stage round for the pre-protocol
        engine (``batch_cross=False``): decide a run of single-partition
        requests against this shard alone, writing each entry's decision
        slot in place.  Entries belong to exactly one shard group, so
        the writes are disjoint across rounds; the coordinator reads
        them only after the executor joins.  No injected round latency:
        this engine is benchmark E19's pre-protocol baseline, kept
        cost-faithful to what it replaced.
        """
        partition = self.partitions[pid]
        lock = self._shard_locks[pid]
        wsi = self.level == "wsi"
        rc = active_checker()
        shard_state = f"shard[{pid}].lastCommit"

        def shard_round() -> None:
            with lock:
                if rc is not None:
                    rc.access(shard_state)
                lc_get = partition._last_commit.get
                pending: Set[RowKey] = set()
                pending_update = pending.update
                shard_checked = 0
                for entry in group:
                    req = entry[1]
                    start = req.start_ts
                    conflict_row = None
                    for row in (req.read_set if wsi else req.write_set):
                        shard_checked += 1
                        if row in pending:
                            conflict_row = row
                            break
                        last = lc_get(row)
                        if last is not None and last > start:
                            conflict_row = row
                            break
                    if conflict_row is not None:
                        entry[4] = ("abort", reason_tag, conflict_row)
                    else:
                        entry[4] = True
                        pending_update(req.write_set)
                partition.stats.rows_checked += shard_checked

        return shard_round

    # ------------------------------------------------------------------
    # the batch-decide fast path: one bulk round per partition per flush
    # ------------------------------------------------------------------
    def decide_batch(self, requests) -> List[CommitResult]:
        """Decide a whole batch in one pass; see
        :meth:`repro.core.status_oracle.StatusOracle.decide_batch` for the
        contract (the partitioned oracle owns no WAL, so no record is
        written here — the group-commit frontend supplies durability)."""
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")
        payload_commits: List[Tuple[int, int, Any]] = []
        payload_aborts: List[int] = []
        errors: List[Tuple[int, BaseException]] = []
        results: List[Optional[CommitResult]] = []
        self._decide_batch(
            list(requests), payload_commits, payload_aborts, errors, results
        )
        if errors:
            raise errors[0][1]
        return results

    def _decide_batch(self, batch, payload_commits, payload_aborts, errors,
                      results=None):
        """Batch engine: the cross-partition batch protocol.

        The whole batch — single-partition, cross-partition, read-only
        and client-abort items alike — is decided with **one bulk round
        per involved partition per flush** (the module docstring walks
        through the three phases); no item falls back to a per-request
        decision.  In a distributed deployment this is one validation
        RPC and one install RPC per partition per flush, instead of one
        partition visit per request — §6.3 footnote 6's amortization,
        now independent of workload shape.

        Correctness of deferred timestamping: a check that hits a row
        written by an *earlier committed* batch member always conflicts
        regardless of the writer's commit timestamp — every batch member
        began before any batch commit timestamp is issued — so the merge
        pass consults each partition's *staged install share* (written
        rows awaiting the phase-3 bulk install, keyed exactly like
        ``lastCommit``) alongside the validation round's verdicts,
        scanning each request's checked rows in the sequential order
        (first conflicting row and per-partition ``rows_checked`` counts
        included).  Commit timestamps are assigned in batch order inside
        the same pass; a row written by several batch members ends
        staged at its last writer's Tc, which is the value the single
        bulk install lands — as sequential installs would leave it.
        ``lastCommit`` never holds a provisional value, so an error
        escaping mid-batch leaves only fully-applied prefixes behind,
        exactly like sequential :meth:`commit` calls.  Per-request
        commit-table errors are isolated to their request, as in the
        monolithic engines.
        """
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")
        tso = self._tso
        if tso._closed:
            raise OracleClosed("timestamp oracle is closed")
        ct = self.commit_table
        # Replicas subscribed to the commit table must see every decision,
        # so only bypass its record methods when nobody is listening (the
        # monolithic engines' fast path, duplicated here per the inline
        # convention).
        fast_ct = not ct._subscribers
        ct_commits = ct._commits
        ct_aborted = ct._aborted
        partitions = self.partitions
        num = len(partitions)
        wsi = self.level == "wsi"
        reason_tag = "rw-conflict" if wsi else "ww-conflict"
        pc_append = payload_commits.append
        pa_append = payload_aborts.append
        res_append = results.append if results is not None else None
        fromkeys = dict.fromkeys

        # ---- routing ------------------------------------------------
        # One entry per item: [kind, req, fut, route, lc_conflict].
        # kind: "ca" client abort | "ro" read-only | "sp"
        # single-partition | "xp" cross-partition.  Entry layout (flat —
        # one unpack per pass):
        #   sp: [kind, req, fut, pid,          check_rows, None,         lc]
        #   xp: [kind, req, fut, check_shares, check_pids, write_shares, lc]
        # where lc is filled by the validation round — the first
        # lastCommit-conflicting row (sp) or {pid: row} (xp).
        run: List[list] = []
        run_append = run.append
        # Per-partition work list of the validation round, batch order.
        shard_groups: List[Optional[list]] = [None] * num
        single_requests = cross_requests = 0
        for item in batch:
            req, fut = item if item.__class__ is tuple else (item, None)
            if req.__class__ is not CommitRequest:
                run_append(["ca", req, fut, None, None, None, None])
                continue
            if not req.write_set:
                run_append(["ro", req, fut, None, None, None, None])
                continue
            pid = self._single_partition_of(req)
            if pid >= 0:
                single_requests += 1
                rows = req.read_set if wsi else req.write_set
                entry = ["sp", req, fut, pid, rows, None, None]
                run_append(entry)
                group = shard_groups[pid]
                if group is None:
                    group = shard_groups[pid] = []
                group.append((entry, rows, req.start_ts))
                continue
            cross_requests += 1
            check_shares = self._split(
                req.read_set if wsi else req.write_set
            )
            write_shares = self._split(req.write_set) if wsi else check_shares
            entry = [
                "xp", req, fut,
                check_shares, sorted(check_shares), write_shares,
                None,
            ]
            run_append(entry)
            start = req.start_ts
            for spid, share in check_shares.items():
                group = shard_groups[spid]
                if group is None:
                    group = shard_groups[spid] = []
                group.append((entry, share, start))

        # ---- phase 1: one bulk validation round per partition -------
        # Each involved partition checks all of its shares for the batch
        # against lastCommit (the state as of batch start — installs
        # happen in phase 3, so round order between partitions is
        # irrelevant) in one round *closure* dispatched through the
        # executor — inline under SerialExecutor, overlapped across
        # partitions under ParallelExecutor (each round holds its own
        # shard lock and only reads its shard, so ordering between
        # partitions never matters).  Verdicts — the first conflicting
        # row per share — come back with the join and are applied to the
        # entries by the coordinator, single-threaded.  rows_checked is
        # NOT counted here: the merge pass attributes it in
        # sequential-equivalent order, stopping where a sequential scan
        # would have stopped.
        check_rounds = 0
        validate_wall = 0.0
        # Serial rounds with no injected latency take the pre-executor
        # inline loop — zero closure/dispatch cost on the measured hot
        # path (E18/E19), byte-identical state evolution; any other
        # executor/latency combination goes through the round closures.
        # Per the engines' inline convention this duplicates the
        # _validation_round scan: change one, change both (the
        # hypothesis suite pins serial ≡ parallel to keep it honest).
        serial_inline = (
            self.round_latency == 0.0
            and type(self._executor) is SerialExecutor
        )
        if serial_inline:
            t0 = perf_counter()
            for pid in range(num):
                group = shard_groups[pid]
                if group is None:
                    continue
                check_rounds += 1
                lc = partitions[pid]._last_commit
                lc_get = lc.get
                lc_isdisjoint = lc.keys().isdisjoint
                for entry, share, start in group:
                    if lc_isdisjoint(share):
                        continue
                    for row in share:
                        last = lc_get(row)
                        if last is not None and last > start:
                            if entry[0] == "sp":
                                entry[6] = row
                            else:
                                conf = entry[6]
                                if conf is None:
                                    conf = entry[6] = {}
                                conf[pid] = row
                            break
            validate_wall = perf_counter() - t0
        else:
            validate_tasks = []
            for pid in range(num):
                group = shard_groups[pid]
                if group is not None:
                    check_rounds += 1
                    validate_tasks.append(self._validation_round(pid, group))
            if validate_tasks:
                t0 = perf_counter()
                verdict_lists = self._executor.run(validate_tasks)
                validate_wall = perf_counter() - t0
                for verdicts in verdict_lists:
                    for entry, pid, row in verdicts:
                        if entry[0] == "sp":
                            entry[6] = row
                        else:
                            conf = entry[6]
                            if conf is None:
                                conf = entry[6] = {}
                            conf[pid] = row

        # ---- phase 2: merge + assignment in batch order -------------
        # installs[pid] doubles as the staged install share *and* the
        # in-batch pending state: a key is a row some earlier committed
        # batch member wrote, so finding a checked row there is a
        # conflict; its value is the last writer's Tc, which phase 3
        # bulk-installs.  checked_by[pid] counts rows examined exactly
        # as the sequential scan would (early stop at the first
        # conflict, later partitions of a cross request unvisited).
        installs: List[Optional[Dict[RowKey, int]]] = [None] * num
        # Union of every staged row across partitions: one C-speed
        # membership sweep decides the no-in-batch-conflict common case
        # per request (a row lives in exactly one partition, so a hit in
        # the union is always a hit in the row's own partition).
        staged: Set[RowKey] = set()
        staged_iso = staged.isdisjoint
        staged_update = staged.update
        checked_by = [0] * num
        st = self.stats
        commits = conflict_aborts = client_aborts = ro_commits = 0
        single_commits = single_aborts = cross_commits = cross_aborts = 0
        rows_updated = 0
        nxt = tso._next
        reserved = tso._reserved_until
        issued = 0
        try:
            for kind, req, fut, a, b, c, lc_conf in run:
                if kind == "ca":
                    try:
                        if fast_ct:
                            if req in ct_commits:
                                raise ValueError(
                                    f"txn {req} already committed; "
                                    "cannot abort"
                                )
                            ct_aborted.add(req)
                        else:
                            ct.record_abort(req)
                    except Exception as exc:
                        errors.append((req, exc))
                        if fut is not None:
                            fut._error = exc
                        if res_append is not None:
                            res_append(None)
                        continue
                    client_aborts += 1
                    pa_append(req)
                    if fut is not None:
                        fut._reason = CLIENT_ABORT
                    if res_append is not None:
                        res_append(
                            CommitResult(False, req, reason=CLIENT_ABORT)
                        )
                    continue
                start = req.start_ts
                if kind == "ro":
                    ro_commits += 1
                    if fut is not None:
                        fut._committed = True
                    if res_append is not None:
                        res_append(CommitResult(True, start, commit_ts=None))
                    continue
                # merge: decide against the validation verdict plus the
                # staged installs of earlier committed batch members.
                conflict_row = None
                if kind == "sp":
                    pid = a
                    rows = b
                    if lc_conf is None and staged_iso(rows):
                        checked_by[pid] += len(rows)
                    else:
                        inst = installs[pid]
                        checked = 0
                        for row in rows:
                            checked += 1
                            if (inst is not None and row in inst) or (
                                lc_conf is not None and row == lc_conf
                            ):
                                conflict_row = row
                                break
                        checked_by[pid] += checked
                else:
                    check_shares, check_pids, write_shares = a, b, c
                    if lc_conf is None and staged_iso(
                        req.read_set if wsi else req.write_set
                    ):
                        for pid in check_pids:
                            checked_by[pid] += len(check_shares[pid])
                    else:
                        # Suspected conflict: re-scan in the sequential
                        # order (sorted partitions, share order within)
                        # so the conflict row and per-partition
                        # rows_checked land exactly as commit() would.
                        for pid in check_pids:
                            share = check_shares[pid]
                            lc_row = (
                                None if lc_conf is None else lc_conf.get(pid)
                            )
                            inst = installs[pid]
                            checked = 0
                            for row in share:
                                checked += 1
                                if (inst is not None and row in inst) or (
                                    lc_row is not None and row == lc_row
                                ):
                                    conflict_row = row
                                    break
                            checked_by[pid] += checked
                            if conflict_row is not None:
                                break
                if conflict_row is not None:
                    try:
                        if fast_ct:
                            if start in ct_commits:
                                raise ValueError(
                                    f"txn {start} already committed; "
                                    "cannot abort"
                                )
                            ct_aborted.add(start)
                        else:
                            ct.record_abort(start)
                    except Exception as exc:
                        errors.append((start, exc))
                        if fut is not None:
                            fut._error = exc
                        if res_append is not None:
                            res_append(None)
                        continue
                    conflict_aborts += 1
                    if kind == "sp":
                        single_aborts += 1
                    else:
                        cross_aborts += 1
                    pa_append(start)
                    if fut is not None:
                        fut._reason = reason_tag
                        fut._row = conflict_row
                    if res_append is not None:
                        res_append(
                            CommitResult(
                                False, start,
                                reason=reason_tag, conflict_row=conflict_row,
                            )
                        )
                    continue
                # commit: assign Tc (inlined tso.next with the same
                # reservation protocol), stage the install shares.
                if nxt > reserved:
                    tso._next = nxt
                    tso._reserve()
                    reserved = tso._reserved_until
                cts = nxt
                nxt += 1
                issued += 1
                ws = req.write_set
                staged_update(ws)
                if kind == "sp":
                    inst = installs[a]
                    if inst is None:
                        installs[a] = fromkeys(ws, cts)
                    else:
                        inst.update(fromkeys(ws, cts))
                else:
                    # write shares are tiny (a few rows each): direct
                    # assignment beats a fromkeys dict per share.
                    for pid, share in write_shares.items():
                        inst = installs[pid]
                        if inst is None:
                            inst = installs[pid] = {}
                        for row in share:
                            inst[row] = cts
                rows_updated += len(ws)
                try:
                    if fast_ct:
                        if cts <= start:
                            raise ValueError(
                                f"commit_ts {cts} must exceed start_ts {start}"
                            )
                        if start in ct_aborted:
                            raise ValueError(
                                f"txn {start} already aborted; cannot commit"
                            )
                        ct_commits[start] = cts
                    else:
                        ct.record_commit(start, cts)
                except Exception as exc:
                    # Same partial effects as the unbatched oracle, which
                    # installs the write set and consumes Tc before its
                    # commit-table write raises — but here the error stays
                    # with this request instead of killing the batch.
                    errors.append((start, exc))
                    if fut is not None:
                        fut._error = exc
                    if res_append is not None:
                        res_append(None)
                    continue
                commits += 1
                if kind == "sp":
                    single_commits += 1
                else:
                    cross_commits += 1
                pc_append((start, cts, ws))
                if fut is not None:
                    fut._committed = True
                    fut._commit_ts = cts
                if res_append is not None:
                    res_append(CommitResult(True, start, commit_ts=cts))
        finally:
            # ---- phase 3: one bulk install round per partition ------
            # As in the monolithic engines, this runs even if an error
            # escapes mid-batch (e.g. a timestamp-reservation WAL
            # failure): the staged prefix is exactly what sequential
            # commit() calls would have installed before failing.  Each
            # install is a round closure (disjoint shard, own lock) —
            # the second executor fan-out; rows_checked attribution is
            # coordinator-side accounting, not an RPC, so it stays
            # inline after the join.
            install_rounds = 0
            install_wall = 0.0
            max_partition_rounds = 0
            if serial_inline:
                # Inline twin of _install_round (see the phase-1 note).
                t0 = perf_counter()
                for pid in range(num):
                    inst = installs[pid]
                    if inst is not None:
                        install_rounds += 1
                        # lint: skip=guarded-by -- serial_inline twin of
                        # _install_round: single-threaded by its guard.
                        partitions[pid]._last_commit.update(inst)
                    occupancy = (
                        (shard_groups[pid] is not None) + (inst is not None)
                    )
                    if occupancy > max_partition_rounds:
                        max_partition_rounds = occupancy
                install_wall = perf_counter() - t0
            else:
                install_tasks = []
                for pid in range(num):
                    inst = installs[pid]
                    if inst is not None:
                        install_rounds += 1
                        install_tasks.append(self._install_round(pid, inst))
                    occupancy = (
                        (shard_groups[pid] is not None) + (inst is not None)
                    )
                    if occupancy > max_partition_rounds:
                        max_partition_rounds = occupancy
                if install_tasks:
                    t0 = perf_counter()
                    self._executor.run(install_tasks)
                    install_wall = perf_counter() - t0
            for pid in range(num):
                n = checked_by[pid]
                if n:
                    partitions[pid].stats.rows_checked += n
            tso._next = nxt
            tso._issued += issued
            st.commits += commits + ro_commits
            st.read_only_commits += ro_commits
            st.aborts += conflict_aborts + client_aborts
            st.conflict_aborts += conflict_aborts
            st.rows_updated += rows_updated
            self.single_partition_commits += single_commits
            self.cross_partition_commits += cross_commits
            self.single_partition_aborts += single_aborts
            self.cross_partition_aborts += cross_aborts
            rounds = BatchRounds(
                flushes=1,
                check_rounds=check_rounds,
                install_rounds=install_rounds,
                single_requests=single_requests,
                cross_requests=cross_requests,
                max_partition_rounds=max_partition_rounds,
                validate_wall=validate_wall,
                install_wall=install_wall,
            )
            self.last_flush_rounds = rounds
            self.round_stats.add(rounds)
        return (
            commits + ro_commits,
            conflict_aborts + client_aborts,
            sum(checked_by),
            rows_updated,
        )

    def _decide_batch_per_request_cross(self, batch, payload_commits,
                                        payload_aborts, errors, results=None):
        """The pre-protocol batch engine, kept as benchmark E19's baseline.

        This is the engine shape the cross-partition batch protocol
        replaced (selected via ``batch_cross=False``), preserved — like
        the frontend's per-request flush is for E18 — to quantify what
        the protocol removes: the batch is processed as runs of
        consecutive single-partition (plus read-only and client-abort)
        items decided with one bulk round per shard, but every
        **cross-partition** request breaks the run and takes a
        per-request two-phase decision in place — one share-request
        construction and one ``_check`` visit per involved partition
        per request, one ``tso.next()`` and commit-table call per
        request.  Decisions and final state are identical to the batch
        protocol's; only the cost differs (plus scan-order detail: a
        conflicting share is scanned in the share-request's frozenset
        order here, so the reported conflict row and the rows-examined
        count may differ from the protocol's footprint-order scan).
        """
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")
        tso = self._tso
        if tso._closed:
            raise OracleClosed("timestamp oracle is closed")
        # No protocol rounds to report for this engine.
        self.last_flush_rounds = None
        ct = self.commit_table
        partitions = self.partitions
        wsi = self.level == "wsi"
        reason_tag = "rw-conflict" if wsi else "ww-conflict"
        pc_append = payload_commits.append
        pa_append = payload_aborts.append
        res_append = results.append if results is not None else None
        st = self.stats
        commits = conflict_aborts = client_aborts = ro_commits = 0
        single_commits = single_aborts = rows_updated = 0
        # Whole-batch delta of the per-partition rows_checked counters
        # (covers shard rounds and cross-partition checks alike).
        checked_at_start = sum(p.stats.rows_checked for p in partitions)

        # One run entry per item: [kind, req, fut, pid, decision].
        run: List[list] = []

        def flush_run():
            nonlocal commits, conflict_aborts, client_aborts, ro_commits
            nonlocal single_commits, single_aborts, rows_updated
            if not run:
                return
            groups: Dict[int, List[list]] = {}
            for entry in run:
                if entry[0] == "sp":
                    groups.setdefault(entry[3], []).append(entry)
            # One decide-and-stage round closure per shard, dispatched
            # through the executor like the batch protocol's rounds
            # (each writes only its own group's decision slots).
            self._executor.run(
                [
                    self._shard_decision_round(pid, group, reason_tag)
                    for pid, group in groups.items()
                ]
            )
            nxt = tso._next
            reserved = tso._reserved_until
            issued = 0
            try:
                for kind, req, fut, pid, decision in run:
                    if kind == "ca":
                        try:
                            ct.record_abort(req)
                        except Exception as exc:
                            errors.append((req, exc))
                            if fut is not None:
                                fut._error = exc
                            if res_append is not None:
                                res_append(None)
                            continue
                        client_aborts += 1
                        pa_append(req)
                        if fut is not None:
                            fut._reason = CLIENT_ABORT
                        if res_append is not None:
                            res_append(
                                CommitResult(False, req, reason=CLIENT_ABORT)
                            )
                        continue
                    start = req.start_ts
                    if kind == "ro":
                        ro_commits += 1
                        if fut is not None:
                            fut._committed = True
                        if res_append is not None:
                            res_append(
                                CommitResult(True, start, commit_ts=None)
                            )
                        continue
                    if decision is not True:
                        _, reason, row = decision
                        try:
                            ct.record_abort(start)
                        except Exception as exc:
                            errors.append((start, exc))
                            if fut is not None:
                                fut._error = exc
                            if res_append is not None:
                                res_append(None)
                            continue
                        conflict_aborts += 1
                        single_aborts += 1
                        pa_append(start)
                        if fut is not None:
                            fut._reason = reason
                            fut._row = row
                        if res_append is not None:
                            res_append(
                                CommitResult(
                                    False, start,
                                    reason=reason, conflict_row=row,
                                )
                            )
                        continue
                    if nxt > reserved:
                        tso._next = nxt
                        tso._reserve()
                        reserved = tso._reserved_until
                    cts = nxt
                    nxt += 1
                    issued += 1
                    ws = req.write_set
                    # lint: skip=guarded-by -- coordinator flush after the
                    # executor join: shard rounds have all completed.
                    partitions[pid]._last_commit.update(dict.fromkeys(ws, cts))
                    rows_updated += len(ws)
                    try:
                        ct.record_commit(start, cts)
                    except Exception as exc:
                        errors.append((start, exc))
                        if fut is not None:
                            fut._error = exc
                        if res_append is not None:
                            res_append(None)
                        continue
                    commits += 1
                    single_commits += 1
                    pc_append((start, cts, ws))
                    if fut is not None:
                        fut._committed = True
                        fut._commit_ts = cts
                    if res_append is not None:
                        res_append(CommitResult(True, start, commit_ts=cts))
            finally:
                tso._next = nxt
                tso._issued += issued
            run.clear()

        def commit_cross_per_request(request):
            # The pre-protocol two-phase decision: one share request and
            # one _check visit per involved partition, per request.
            check_shares = self._split(self._rows_to_check(request))
            write_shares = self._split(request.write_set)
            involved = set(check_shares) | set(write_shares)
            for pid in sorted(involved):
                partition = partitions[pid]
                share_request = CommitRequest(
                    request.start_ts,
                    write_set=frozenset(write_shares.get(pid, ())),
                    read_set=(
                        frozenset(check_shares.get(pid, ()))
                        if wsi
                        else frozenset()
                    ),
                )
                conflict = partition._check(share_request)
                if conflict is not None:
                    reason, row = conflict
                    st.aborts += 1
                    st.conflict_aborts += 1
                    self.cross_partition_aborts += 1
                    ct.record_abort(request.start_ts)
                    return CommitResult(
                        False, request.start_ts,
                        reason=reason, conflict_row=row,
                    )
            commit_ts = tso.next()
            for pid, rows in write_shares.items():
                partitions[pid]._install(rows, commit_ts)
                st.rows_updated += len(rows)
            ct.record_commit(request.start_ts, commit_ts)
            st.commits += 1
            self.cross_partition_commits += 1
            return CommitResult(True, request.start_ts, commit_ts=commit_ts)

        cross_commits = cross_aborts = cross_rows_updated = 0
        try:
            for item in batch:
                req, fut = item if item.__class__ is tuple else (item, None)
                if req.__class__ is not CommitRequest:
                    run.append(["ca", req, fut, -1, None])
                    continue
                if not req.write_set:
                    run.append(["ro", req, fut, -1, None])
                    continue
                pid = self._single_partition_of(req)
                if pid >= 0:
                    run.append(["sp", req, fut, pid, None])
                    continue
                # Cross-partition request: decide in place (two-phase),
                # after everything queued before it has taken effect.
                flush_run()
                try:
                    result = commit_cross_per_request(req)
                except Exception as exc:
                    errors.append((req.start_ts, exc))
                    if fut is not None:
                        fut._error = exc
                    if res_append is not None:
                        res_append(None)
                    continue
                if result.committed:
                    cross_commits += 1
                    cross_rows_updated += len(req.write_set)
                    pc_append((req.start_ts, result.commit_ts, req.write_set))
                    if fut is not None:
                        fut._committed = True
                        fut._commit_ts = result.commit_ts
                else:
                    cross_aborts += 1
                    pa_append(req.start_ts)
                    if fut is not None:
                        fut._reason = result.reason
                        fut._row = result.conflict_row
                if res_append is not None:
                    res_append(result)
            flush_run()
        finally:
            st.commits += commits + ro_commits
            st.read_only_commits += ro_commits
            st.aborts += conflict_aborts + client_aborts
            st.conflict_aborts += conflict_aborts
            st.rows_updated += rows_updated
            self.single_partition_commits += single_commits
            self.single_partition_aborts += single_aborts
        rows_checked = (
            sum(p.stats.rows_checked for p in partitions) - checked_at_start
        )
        return (
            commits + ro_commits + cross_commits,
            conflict_aborts + client_aborts + cross_aborts,
            rows_checked,
            rows_updated + cross_rows_updated,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def last_commit(self, row: RowKey) -> Optional[int]:
        return self.partitions[self.partition_of(row)].last_commit(row)

    @property
    def timestamp_oracle(self) -> TimestampOracle:
        return self._tso

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def sharding(self) -> ShardingPolicy:
        return self._sharding

    @property
    def executor(self) -> PartitionExecutor:
        return self._executor

    def cross_partition_fraction(self) -> float:
        """Fraction of *decisions* (commits and conflict aborts alike)
        whose footprint crossed partitions.  Counting only commits would
        report a misleading ~0 on a heavily-conflicting cross-partition
        workload; read-only commits and client aborts involve no
        partition and are excluded."""
        cross = self.cross_partition_commits + self.cross_partition_aborts
        total = (
            cross
            + self.single_partition_commits
            + self.single_partition_aborts
        )
        return cross / total if total else 0.0

    def shutdown_executor(self) -> None:
        """Join an *owned* executor's worker threads (idempotent).

        The oracle stays usable afterwards: rounds fall back to a fresh
        :class:`~repro.core.executor.SerialExecutor`, which decides
        identically (executor choice is performance policy, never
        semantics).  A passed-in executor instance is left running — its
        creator owns its lifecycle.  :meth:`close` calls this, and
        :meth:`repro.server.OracleFrontend.close` propagates it, so no
        worker thread dangles after tests tear a deployment down.
        """
        if self._owns_executor and not isinstance(self._executor, SerialExecutor):
            self._executor.shutdown()
            self._executor = SerialExecutor()

    def close(self) -> None:
        self._closed = True
        self.shutdown_executor()
