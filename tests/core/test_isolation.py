"""Unit tests for the isolation-level registry and system factory."""

import pytest

from repro.core.isolation import IsolationLevel, create_system
from repro.core.status_oracle import (
    BoundedStatusOracle,
    SnapshotIsolationOracle,
    WriteSnapshotIsolationOracle,
)


class TestIsolationLevel:
    def test_values(self):
        assert IsolationLevel.SNAPSHOT.value == "si"
        assert IsolationLevel.WRITE_SNAPSHOT.value == "wsi"

    def test_serializability_flags(self):
        # §3.1 and Theorem 1.
        assert not IsolationLevel.SNAPSHOT.is_serializable
        assert IsolationLevel.WRITE_SNAPSHOT.is_serializable

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("si", IsolationLevel.SNAPSHOT),
            ("SI", IsolationLevel.SNAPSHOT),
            ("snapshot", IsolationLevel.SNAPSHOT),
            ("snapshot-isolation", IsolationLevel.SNAPSHOT),
            ("wsi", IsolationLevel.WRITE_SNAPSHOT),
            ("write-snapshot", IsolationLevel.WRITE_SNAPSHOT),
            ("serializable", IsolationLevel.WRITE_SNAPSHOT),
        ],
    )
    def test_parse_aliases(self, alias, expected):
        assert IsolationLevel.parse(alias) is expected

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            IsolationLevel.parse("read-uncommitted")


class TestCreateSystem:
    def test_default_is_wsi(self):
        system = create_system()
        assert isinstance(system.oracle, WriteSnapshotIsolationOracle)

    def test_si_system(self):
        system = create_system("si")
        assert isinstance(system.oracle, SnapshotIsolationOracle)

    def test_enum_accepted(self):
        system = create_system(IsolationLevel.SNAPSHOT)
        assert system.level is IsolationLevel.SNAPSHOT

    def test_bounded_oracle(self):
        system = create_system("wsi", bounded=True, max_rows=128)
        assert isinstance(system.oracle, BoundedStatusOracle)
        assert system.oracle.max_rows == 128
        assert system.oracle.level == "wsi"

    def test_durable_system_has_wal(self):
        system = create_system("wsi", durable=True)
        assert system.wal is not None
        txn = system.manager.begin()
        txn.write("x", 1)
        txn.commit()
        system.wal.flush()
        records = list(system.wal.replay())
        assert any(r.kind == "commit" for r in records)

    def test_non_durable_system_has_no_wal(self):
        assert create_system("wsi").wal is None

    def test_systems_are_independent(self):
        a, b = create_system("wsi"), create_system("wsi")
        t = a.manager.begin()
        t.write("x", 1)
        t.commit()
        assert b.manager.begin().read("x") is None

    def test_manager_reports_level(self):
        assert create_system("si").manager.isolation_level == "si"
        assert create_system("wsi").manager.isolation_level == "wsi"
