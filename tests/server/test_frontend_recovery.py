"""Crash-recovery coverage for the group-commit frontend.

Two crash points matter for a batched frontend:

1. **before flush** — requests still coalescing in the frontend's batch
   buffer were never decided, never acknowledged, and are simply gone;
2. **after flush, before WAL durability** — the batch's group-commit
   record sat in the BookKeeperWAL buffer; the decisions were computed
   but never became durable, so recovery must not see them either.

In both cases ``recover_from`` must restore exactly the durable prefix.
Plus the §5.1 regression: read-only traffic writes no WAL record at all.
"""

import pytest

from repro.core.status_oracle import CommitRequest, make_oracle
from repro.server import OracleFrontend
from repro.wal.bookkeeper import GROUP_COMMIT_RECORD, BookKeeperWAL


def req(start, writes=(), reads=()):
    return CommitRequest(start, write_set=frozenset(writes), read_set=frozenset(reads))


def durable_decisions(wal):
    return [
        record
        for batch in wal._ledger.replay()
        for record in batch
        if record.kind == GROUP_COMMIT_RECORD
    ]


class TestMidBatchCrash:
    def _frontend(self, max_batch=100):
        # Large WAL batch_bytes keeps group records buffered until we
        # decide their fate explicitly — the crash window under test.
        wal = BookKeeperWAL(batch_bytes=1 << 20)
        oracle = make_oracle("wsi", wal=wal)
        return OracleFrontend(oracle, max_batch=max_batch), oracle, wal

    def test_unflushed_frontend_batch_is_lost(self):
        frontend, oracle, wal = self._frontend()
        durable = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        frontend.flush()
        wal.flush()  # batch 1 fully durable
        frontend.submit_commit(req(frontend.begin(), writes={"b"}))
        # crash: the second request never flushed out of the frontend
        fresh = make_oracle("wsi")
        fresh.recover_from(wal)
        assert fresh.last_commit("a") == durable.commit_ts
        assert fresh.last_commit("b") is None
        assert fresh.commit_table.is_committed(durable.start_ts)

    def test_flushed_batch_without_wal_durability_is_lost(self):
        frontend, oracle, wal = self._frontend()
        first = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        frontend.flush()
        wal.flush()  # durable point
        second = frontend.submit_commit(req(frontend.begin(), writes={"b"}))
        frontend.flush()  # decision computed, group record only buffered
        assert second.committed  # the live oracle did decide it...
        assert wal.pending_count == 1
        wal.drop_pending()  # ...but the host crashed before durability
        fresh = make_oracle("wsi")
        fresh.recover_from(wal)
        assert fresh.last_commit("a") == first.commit_ts
        assert fresh.last_commit("b") is None

    def test_recovery_restores_exactly_the_durable_prefix(self):
        frontend, oracle, wal = self._frontend(max_batch=4)
        futures = []
        for i in range(10):  # 2 full batches flushed, 2 requests pending
            futures.append(
                frontend.submit_commit(req(frontend.begin(), writes={f"r{i}"}))
            )
        wal.flush()
        assert len(durable_decisions(wal)) == 2
        fresh = make_oracle("wsi")
        fresh.recover_from(wal)
        for i, future in enumerate(futures[:8]):
            assert fresh.last_commit(f"r{i}") == future.commit_ts
        for i in range(8, 10):
            assert fresh.last_commit(f"r{i}") is None
            assert not futures[i].done

    def test_recovered_oracle_continues_detecting_conflicts(self):
        frontend, oracle, wal = self._frontend()
        stale = frontend.begin()  # snapshot predating the crash
        writer = frontend.begin()
        frontend.submit_commit(req(writer, writes={"x"}))
        frontend.flush()
        wal.flush()
        fresh = make_oracle("wsi")
        fresh.recover_from(wal)
        result = fresh.commit(req(stale, writes={"y"}, reads={"x"}))
        assert not result.committed and result.reason == "rw-conflict"

    def test_group_record_aborts_recovered(self):
        frontend, oracle, wal = self._frontend()
        aborted = frontend.begin()
        stale = frontend.begin()
        writer = frontend.begin()
        frontend.submit_commit(req(writer, writes={"x"}))
        frontend.submit_abort(aborted)
        frontend.submit_commit(req(stale, writes={"y"}, reads={"x"}))  # conflict
        frontend.flush()
        wal.flush()
        fresh = make_oracle("wsi")
        fresh.recover_from(wal)
        assert fresh.commit_table.is_aborted(aborted)
        assert fresh.commit_table.is_aborted(stale)
        assert fresh.commit_table.is_committed(writer)

    def test_recovered_timestamps_above_group_records(self):
        frontend, oracle, wal = self._frontend(max_batch=2)
        used = set()
        for _ in range(6):
            start = frontend.begin()
            used.add(start)
            future = frontend.submit_commit(req(start, writes={"k"}))
            if future.done and future.commit_ts is not None:
                used.add(future.commit_ts)
        frontend.close()
        fresh = make_oracle("wsi")
        fresh.recover_from(wal)
        for _ in range(10):
            assert fresh.begin() not in used


class TestBeginLeaseCrash:
    """A frontend crash mid-lease must never lead to timestamp reuse:
    the lease block was durably reserved before any begin was served, so
    recovery resumes strictly above the whole block — the unserved
    remainder becomes a gap."""

    def test_crash_mid_lease_recovery_never_reissues(self):
        wal = BookKeeperWAL(batch_bytes=1 << 20)
        oracle = make_oracle("wsi", wal=wal)
        frontend = OracleFrontend(oracle, max_batch=4, begin_lease=16)
        issued = set()
        for i in range(10):  # mid-lease: 10 of 16 served
            start = frontend.begin()
            issued.add(start)
            frontend.submit_commit(req(start, writes={f"r{i}"}))
        frontend.flush()
        wal.flush()
        issued.update(oracle.commit_table._commits.values())
        assert frontend.begin_lease_remaining > 0  # the crash window

        fresh = make_oracle("wsi")
        fresh.recover_from(wal)
        # strictly above everything the crashed deployment could have
        # served — including the unserved lease remainder
        floor = oracle.timestamp_oracle.reserved_high_water
        for _ in range(20):
            ts = fresh.begin()
            assert ts > floor
            assert ts not in issued

    def test_partitioned_backend_leases_are_recoverable(self):
        # The partitioned oracle's shared TSO persists nothing on its
        # own; the frontend adopts its reservation stream into the
        # frontend WAL, so served begins (and unserved lease remainders)
        # survive a crash as gaps, never reuse.
        from repro.core.partitioned import PartitionedOracle

        wal = BookKeeperWAL(batch_bytes=1 << 20)
        oracle = PartitionedOracle(level="wsi", num_partitions=3)
        frontend = OracleFrontend(oracle, max_batch=8, wal=wal, begin_lease=16)
        issued = set()
        for i in range(6):  # begins served, none committed yet: the
            issued.add(frontend.begin())  # worst case for replay-only recovery
        future = frontend.submit_commit(req(min(issued), writes={0, 1, 2}))
        frontend.flush()
        wal.flush()
        issued.add(future.commit_ts)

        fresh = make_oracle("wsi")
        fresh.recover_from(wal)
        for _ in range(20):
            assert fresh.begin() not in issued

    def test_lease_refills_during_commits_stay_recoverable(self):
        # Leases interleaved with group-commit flushes: every block is
        # covered by a ts-reserve record that replay honours.
        wal = BookKeeperWAL(batch_bytes=1 << 20)
        oracle = make_oracle("wsi", wal=wal)
        frontend = OracleFrontend(oracle, max_batch=2, begin_lease=3)
        issued = set()
        for i in range(9):  # 3 lease refills, 4+ flushes interleaved
            start = frontend.begin()
            issued.add(start)
            future = frontend.submit_commit(req(start, writes={f"k{i}"}))
            if future.done:
                issued.add(future.commit_ts)
        frontend.close()
        issued.update(oracle.commit_table._commits.values())

        fresh = make_oracle("wsi")
        fresh.recover_from(wal)
        for _ in range(20):
            assert fresh.begin() not in issued


class TestReadOnlyRegression:
    def test_read_only_batch_writes_no_wal_record(self):
        """§5.1: a batch containing only read-only transactions costs no
        WAL write — there is literally nothing to persist."""
        wal = BookKeeperWAL()
        oracle = make_oracle("wsi", wal=wal)
        frontend = OracleFrontend(oracle, max_batch=4)
        frontend.begin()  # prime the timestamp reservation (ts-reserve
        before = wal.record_count  # record) so only decisions count below
        for _ in range(8):
            future = frontend.submit_commit(req(frontend.begin()))
            assert future.committed
        assert frontend.flush() is None
        frontend.close()
        assert wal.record_count == before
        assert durable_decisions(wal) == []
        assert oracle.stats.read_only_commits == 8

    def test_mixed_batch_persists_only_decisions(self):
        wal = BookKeeperWAL()
        oracle = make_oracle("wsi", wal=wal)
        frontend = OracleFrontend(oracle, max_batch=100)
        for _ in range(5):
            frontend.submit_commit(req(frontend.begin()))  # read-only
        writer = frontend.submit_commit(req(frontend.begin(), writes={"w"}))
        frontend.close()
        (record,) = durable_decisions(wal)
        commits, aborts = record.payload
        assert len(commits) == 1 and aborts == ()
        assert commits[0][0] == writer.start_ts


@pytest.mark.parametrize("bounded", [False, True])
def test_recovery_survives_bookie_crash(bounded):
    from repro.wal.ledger import LedgerManager

    manager = LedgerManager(num_bookies=3, write_quorum=2, ack_quorum=2)
    wal = BookKeeperWAL(ledger_manager=manager)
    oracle = make_oracle("wsi", bounded=bounded, wal=wal)
    frontend = OracleFrontend(oracle, max_batch=2)
    futures = [
        frontend.submit_commit(req(frontend.begin(), writes={f"r{i}"}))
        for i in range(4)
    ]
    frontend.close()
    manager.bookies[0].crash()  # one replica lost; quorum survives
    fresh = make_oracle("wsi")
    fresh.recover_from(wal)
    for i, future in enumerate(futures):
        assert fresh.last_commit(f"r{i}") == future.commit_ts
