"""Integration tests for the interleaved execution harness."""

import pytest

from repro.core import create_system
from repro.bench import run_interleaved, run_sequential
from repro.workload import complex_workload, mixed_workload


class TestSequentialBaseline:
    @pytest.mark.parametrize("level", ["si", "wsi"])
    def test_serial_execution_never_aborts(self, level):
        system = create_system(level)
        wl = complex_workload(keyspace=100, seed=1)  # tiny keyspace: max contention
        result = run_sequential(system.manager, wl.batch(300))
        assert result.aborted == 0
        assert result.committed == 300


class TestInterleavedExecution:
    def test_conflicts_arise_under_concurrency(self):
        system = create_system("wsi")
        wl = complex_workload(keyspace=50, seed=2)
        result = run_interleaved(system.manager, wl.batch(500), concurrency=16, seed=3)
        assert result.aborted > 0
        assert result.abort_reasons.get("rw-conflict", 0) == result.aborted

    def test_si_reports_ww_conflicts(self):
        system = create_system("si")
        wl = complex_workload(keyspace=50, seed=2)
        result = run_interleaved(system.manager, wl.batch(500), concurrency=16, seed=3)
        assert result.abort_reasons.get("ww-conflict", 0) == result.aborted

    def test_read_only_transactions_always_commit(self):
        system = create_system("wsi")
        wl = mixed_workload(keyspace=20, seed=4)  # brutal contention
        specs = wl.batch(400)
        result = run_interleaved(system.manager, specs, concurrency=12, seed=5)
        ro_specs = sum(1 for s in specs if s.read_only)
        assert result.read_only_committed == ro_specs  # none aborted

    def test_determinism(self):
        def run():
            system = create_system("wsi")
            wl = complex_workload(keyspace=100, seed=6)
            return run_interleaved(
                system.manager, wl.batch(300), concurrency=8, seed=7
            )

        a, b = run(), run()
        assert (a.committed, a.aborted) == (b.committed, b.aborted)

    def test_result_merge(self):
        from repro.bench import HarnessResult

        a = HarnessResult(committed=5, aborted=1, abort_reasons={"x": 1})
        b = HarnessResult(committed=3, aborted=2, abort_reasons={"x": 1, "y": 1})
        merged = a.merge(b)
        assert merged.committed == 8
        assert merged.aborted == 3
        assert merged.abort_reasons == {"x": 2, "y": 1}
        assert merged.abort_rate == pytest.approx(3 / 11)

    def test_invalid_concurrency(self):
        system = create_system("wsi")
        with pytest.raises(ValueError):
            run_interleaved(system.manager, [], concurrency=0)


class TestCommittedStateConsistency:
    def test_store_reflects_only_committed_writes(self):
        system = create_system("wsi")
        wl = complex_workload(keyspace=30, seed=8)
        run_interleaved(system.manager, wl.batch(400), concurrency=10, seed=9)
        # every value in a fresh snapshot must come from a *committed* txn
        reader = system.manager.begin()
        commit_source = system.manager.commit_source
        for row in range(30):
            version = system.manager.reader.read(row, reader.start_ts)
            if version is not None:
                assert commit_source.commit_timestamp(version.timestamp) is not None
