"""Unit tests for the ZooKeeper-style coordination service."""

import pytest

from repro.coord.zookeeper import (
    BadVersionError,
    EventType,
    LeaderElection,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    SessionExpiredError,
    ZKError,
    ZooKeeper,
)


@pytest.fixture
def zk():
    return ZooKeeper()


class TestZnodes:
    def test_create_get(self, zk):
        s = zk.connect()
        s.create("/config", b"hello")
        data, version = s.get("/config")
        assert data == b"hello"
        assert version == 0

    def test_create_requires_parent(self, zk):
        s = zk.connect()
        with pytest.raises(NoNodeError):
            s.create("/a/b", b"")

    def test_duplicate_create_rejected(self, zk):
        s = zk.connect()
        s.create("/node")
        with pytest.raises(NodeExistsError):
            s.create("/node")

    def test_set_bumps_version(self, zk):
        s = zk.connect()
        s.create("/n", b"v0")
        assert s.set("/n", b"v1") == 1
        assert s.get("/n") == (b"v1", 1)

    def test_versioned_set_rejects_stale(self, zk):
        s = zk.connect()
        s.create("/n", b"v0")
        s.set("/n", b"v1")
        with pytest.raises(BadVersionError):
            s.set("/n", b"v2", version=0)

    def test_delete(self, zk):
        s = zk.connect()
        s.create("/n")
        s.delete("/n")
        assert not s.exists("/n")

    def test_delete_nonempty_rejected(self, zk):
        s = zk.connect()
        s.create("/parent")
        s.create("/parent/child")
        with pytest.raises(NotEmptyError):
            s.delete("/parent")

    def test_get_children_sorted(self, zk):
        s = zk.connect()
        s.create("/dir")
        for name in ("zeta", "alpha", "mid"):
            s.create(f"/dir/{name}")
        assert s.get_children("/dir") == ["alpha", "mid", "zeta"]

    def test_invalid_paths(self, zk):
        s = zk.connect()
        with pytest.raises(ZKError):
            s.create("no-slash")
        with pytest.raises(ZKError):
            s.create("/trailing/")


class TestSequential:
    def test_sequence_numbers_monotonic(self, zk):
        s = zk.connect()
        s.create("/queue")
        paths = [s.create("/queue/item-", sequence=True) for _ in range(3)]
        assert paths == [
            "/queue/item-0000000000",
            "/queue/item-0000000001",
            "/queue/item-0000000002",
        ]

    def test_counter_survives_deletion(self, zk):
        s = zk.connect()
        s.create("/q")
        first = s.create("/q/n-", sequence=True)
        s.delete(first)
        second = s.create("/q/n-", sequence=True)
        assert second > first  # numbers never reused


class TestEphemerals:
    def test_ephemeral_dies_with_session(self, zk):
        s1 = zk.connect()
        s2 = zk.connect()
        s1.create("/lock", ephemeral=True)
        assert s2.exists("/lock")
        s1.close()
        assert not s2.exists("/lock")

    def test_expired_session_rejected(self, zk):
        s = zk.connect()
        zk.expire_session(s.session_id)
        with pytest.raises(SessionExpiredError):
            s.create("/x")

    def test_ephemeral_cannot_have_children(self, zk):
        s = zk.connect()
        s.create("/e", ephemeral=True)
        with pytest.raises(ZKError):
            s.create("/e/child")

    def test_persistent_survives_session(self, zk):
        s1 = zk.connect()
        s1.create("/durable", b"stays")
        s1.close()
        s2 = zk.connect()
        assert s2.get("/durable")[0] == b"stays"


class TestWatches:
    def test_data_watch_fires_once(self, zk):
        s = zk.connect()
        s.create("/n", b"v0")
        events = []
        s.get("/n", watch=events.append)
        s.set("/n", b"v1")
        s.set("/n", b"v2")  # watch already consumed
        assert len(events) == 1
        assert events[0].type is EventType.DATA_CHANGED

    def test_exists_watch_sees_creation(self, zk):
        s = zk.connect()
        events = []
        assert not s.exists("/future", watch=events.append)
        s.create("/future")
        assert [e.type for e in events] == [EventType.CREATED]

    def test_children_watch(self, zk):
        s = zk.connect()
        s.create("/dir")
        events = []
        s.get_children("/dir", watch=events.append)
        s.create("/dir/new")
        assert [e.type for e in events] == [EventType.CHILDREN_CHANGED]

    def test_delete_fires_data_watch(self, zk):
        s = zk.connect()
        s.create("/n")
        events = []
        s.get("/n", watch=events.append)
        s.delete("/n")
        assert [e.type for e in events] == [EventType.DELETED]


class TestLeaderElection:
    def test_first_candidate_wins(self, zk):
        s = zk.connect()
        election = LeaderElection(s)
        assert election.is_leader

    def test_second_candidate_waits(self, zk):
        e1 = LeaderElection(zk.connect())
        e2 = LeaderElection(zk.connect())
        assert e1.is_leader
        assert not e2.is_leader

    def test_succession_on_session_death(self, zk):
        s1, s2, s3 = zk.connect(), zk.connect(), zk.connect()
        e1, e2, e3 = LeaderElection(s1), LeaderElection(s2), LeaderElection(s3)
        s1.close()
        assert e2.is_leader
        assert not e3.is_leader
        s2.close()
        assert e3.is_leader

    def test_middle_death_no_false_promotion(self, zk):
        # killing a middle candidate must not elect the tail (no herd).
        s1, s2, s3 = zk.connect(), zk.connect(), zk.connect()
        e1, e2, e3 = LeaderElection(s1), LeaderElection(s2), LeaderElection(s3)
        s2.close()
        assert e1.is_leader
        assert not e3.is_leader
        s1.close()
        assert e3.is_leader

    def test_elected_callback(self, zk):
        fired = []
        e1 = LeaderElection(zk.connect(), on_elected=lambda: fired.append(1))
        s2 = zk.connect()
        e2 = LeaderElection(s2, on_elected=lambda: fired.append(2))
        assert fired == [1]
        e1.resign()
        assert fired == [1, 2]
        assert e2.is_leader

    def test_resign_is_idempotent(self, zk):
        e = LeaderElection(zk.connect())
        e.resign()
        e.resign()
        assert not e.is_leader


class TestElectionVanishedPredecessor:
    """Regression: the predecessor can vanish between ``get_children``
    and the ``exists`` watch registration.  The watch then sits on a
    sequence-numbered node that can never be re-created, so the old
    single-shot ``_check`` wedged the follower out of the election
    forever.  ``_check`` must loop against fresh children instead.
    """

    def test_follower_recovers_when_predecessor_dies_mid_check(self, zk):
        s1 = zk.connect()
        e1 = LeaderElection(s1)
        s2 = zk.connect()
        e2 = LeaderElection(s2)
        s3 = zk.connect()
        # Rig s3's first get_children to return a snapshot in which s2's
        # candidate still exists, then expire s2 before exists() runs.
        real_get_children = s3.get_children
        state = {"armed": True}

        def racy_get_children(path, watch=None):
            children = real_get_children(path, watch=watch)
            if state["armed"]:
                state["armed"] = False
                s2.close()  # predecessor vanishes after the snapshot
            return children

        s3.get_children = racy_get_children
        e3 = LeaderElection(s3)
        # Pre-fix this wedged: exists() on the vanished predecessor
        # returned False, registered an unfireable watch, and e3 never
        # re-checked.  Post-fix e3 loops, watches e1 instead:
        assert not e3.is_leader
        s1.close()
        assert e3.is_leader

    def test_follower_wins_outright_if_all_predecessors_die_mid_check(self, zk):
        s1 = zk.connect()
        e1 = LeaderElection(s1)
        s2 = zk.connect()
        real_get_children = s2.get_children
        state = {"armed": True}

        def racy_get_children(path, watch=None):
            children = real_get_children(path, watch=watch)
            if state["armed"]:
                state["armed"] = False
                s1.close()  # the only predecessor — also the leader
            return children

        s2.get_children = racy_get_children
        e2 = LeaderElection(s2)
        assert e2.is_leader
