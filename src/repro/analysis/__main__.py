"""CLI: ``python -m repro.analysis [path ...]`` — run the invariant lint.

With no arguments, lints the installed ``repro`` package source tree
with path-scoped passes (what ``make lint`` runs).  Explicit paths may
be files or directories; directories are linted as trees rooted at
themselves.  Exit status 1 when any finding survives suppression.
"""

from __future__ import annotations

import os
import sys
from typing import List

from repro.analysis.lint import ALL_PASSES, LintFinding, lint_file, lint_tree


def main(argv: List[str]) -> int:
    findings: List[LintFinding] = []
    if argv:
        for arg in argv:
            if os.path.isdir(arg):
                findings.extend(lint_tree(arg))
            else:
                findings.extend(lint_file(arg))
    else:
        findings.extend(lint_tree())
    for finding in sorted(findings):
        print(finding)
    passes = ", ".join(p.name for p in ALL_PASSES)
    if findings:
        print(f"lint: {len(findings)} finding(s) [{passes}]")
        return 1
    print(f"lint: clean [{passes}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
