"""Unit tests for the YCSB key distributions."""

import math

import pytest

from repro.workload.distributions import (
    LatestDistribution,
    ScrambledZipfianDistribution,
    UniformDistribution,
    ZipfianDistribution,
    fnv1a_64,
    make_distribution,
)


class TestUniform:
    def test_keys_in_range(self):
        dist = UniformDistribution(100, seed=1)
        keys = [dist.next_key() for _ in range(1000)]
        assert all(0 <= k < 100 for k in keys)

    def test_roughly_flat(self):
        dist = UniformDistribution(10, seed=2)
        counts = [0] * 10
        for _ in range(10_000):
            counts[dist.next_key()] += 1
        assert max(counts) < 2 * min(counts)

    def test_deterministic_with_seed(self):
        a = UniformDistribution(100, seed=7)
        b = UniformDistribution(100, seed=7)
        assert [a.next_key() for _ in range(50)] == [b.next_key() for _ in range(50)]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            UniformDistribution(0)


class TestZipfian:
    def test_keys_in_range(self):
        dist = ZipfianDistribution(1000, seed=1)
        assert all(0 <= dist.next_key() < 1000 for _ in range(5000))

    def test_head_heavy(self):
        dist = ZipfianDistribution(10_000, seed=3)
        draws = [dist.next_key() for _ in range(20_000)]
        top10_share = sum(1 for k in draws if k < 10) / len(draws)
        assert top10_share > 0.2  # zipf-0.99: the head dominates

    def test_rank_zero_most_popular(self):
        dist = ZipfianDistribution(1000, seed=4)
        counts = {}
        for _ in range(50_000):
            k = dist.next_key()
            counts[k] = counts.get(k, 0) + 1
        assert counts[0] == max(counts.values())

    def test_zeta_exact_small(self):
        expected = sum(1 / i ** 0.99 for i in range(1, 101))
        assert ZipfianDistribution.zeta(100, 0.99) == pytest.approx(expected)

    def test_zeta_approximation_accurate(self):
        # Compare the integral tail approximation with a direct sum at a
        # size just above the exact limit.
        n = 150_000
        exact = sum(1 / i ** 0.99 for i in range(1, n + 1))
        assert ZipfianDistribution.zeta(n, 0.99) == pytest.approx(exact, rel=1e-9)

    def test_precomputed_zetan_accepted(self):
        zetan = ZipfianDistribution.zeta(1000, 0.99)
        dist = ZipfianDistribution(1000, seed=5, zetan=zetan)
        assert 0 <= dist.next_key() < 1000

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            ZipfianDistribution(100, theta=1.0)
        with pytest.raises(ValueError):
            ZipfianDistribution(100, theta=0.0)


class TestScrambledZipfian:
    def test_keys_in_range(self):
        dist = ScrambledZipfianDistribution(1000, seed=1)
        assert all(0 <= dist.next_key() < 1000 for _ in range(5000))

    def test_hot_keys_spread_over_keyspace(self):
        dist = ScrambledZipfianDistribution(100_000, seed=2)
        draws = [dist.next_key() for _ in range(20_000)]
        # unlike plain zipfian, the popular keys are NOT clustered at 0:
        low_share = sum(1 for k in draws if k < 1000) / len(draws)
        assert low_share < 0.10

    def test_still_skewed(self):
        dist = ScrambledZipfianDistribution(100_000, seed=3)
        counts = {}
        for _ in range(30_000):
            k = dist.next_key()
            counts[k] = counts.get(k, 0) + 1
        top = sorted(counts.values(), reverse=True)
        assert top[0] > 300  # one scrambled key is still extremely hot

    def test_fnv_deterministic(self):
        assert fnv1a_64(12345) == fnv1a_64(12345)
        assert fnv1a_64(1) != fnv1a_64(2)


class TestLatest:
    def test_keys_in_range(self):
        dist = LatestDistribution(1000, seed=1)
        assert all(0 <= dist.next_key() < 1000 for _ in range(5000))

    def test_ordered_layout_clusters_near_frontier(self):
        dist = LatestDistribution(100_000, seed=2, layout="ordered")
        draws = [dist.next_key() for _ in range(10_000)]
        near = sum(1 for k in draws if k > 90_000) / len(draws)
        assert near > 0.5  # popularity hugs the newest (highest) keys

    def test_hashed_layout_scatters(self):
        dist = LatestDistribution(100_000, seed=2, layout="hashed")
        draws = [dist.next_key() for _ in range(10_000)]
        near = sum(1 for k in draws if k > 90_000) / len(draws)
        assert near < 0.2

    def test_advance_shifts_popularity(self):
        dist = LatestDistribution(1000, seed=3, layout="ordered")
        before = dist.frontier
        dist.advance(10)
        assert dist.frontier == (before + 10) % 1000

    def test_hot_set_follows_frontier(self):
        dist = LatestDistribution(10_000, seed=4, layout="ordered")
        first = {dist.next_key() for _ in range(200)}
        dist.advance(5_000)
        second = {dist.next_key() for _ in range(200)}
        # the hot sets barely overlap after a big frontier move
        assert len(first & second) < len(first) / 4

    def test_invalid_layout(self):
        with pytest.raises(ValueError):
            LatestDistribution(100, layout="sorted")


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("uniform", UniformDistribution),
            ("zipfian", ScrambledZipfianDistribution),
            ("zipfianLatest", LatestDistribution),
            ("latest", LatestDistribution),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(make_distribution(name, 100, seed=1), cls)

    def test_ordered_latest_variant(self):
        dist = make_distribution("latest-ordered", 100, seed=1)
        assert isinstance(dist, LatestDistribution)
        assert dist.layout == "ordered"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_distribution("gaussian", 100)
