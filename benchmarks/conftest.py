"""Shared configuration for the figure-regeneration benchmarks.

Every benchmark in this directory regenerates one table or figure from
the paper's evaluation (§6) — see DESIGN.md's experiment index.  Each
prints its measured series next to the paper's anchors and asserts the
qualitative *shape* (who wins, where the knee falls, how curves order);
absolute TPS values are simulator-calibrated, not hardware-faithful.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from pathlib import Path

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as regenerating a paper figure"
    )


def pytest_collection_modifyitems(items):
    """Every figure benchmark is slow by construction: mark the whole
    directory so ``pytest -m "not slow"`` (make test-fast) skips it."""
    here = Path(__file__).parent
    for item in items:
        if Path(str(item.fspath)).parent == here:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def print_header():
    def _print(title: str) -> None:
        print()
        print("=" * 78)
        print(title)
        print("=" * 78)

    return _print
