"""Client retry policy: bounded exponential backoff.

Two serving-tier failure modes resolve with a *retry*, not an error:

* **overload** — admission control shed the request with a typed
  :class:`~repro.core.errors.Overloaded` rejection (the queue-depth
  bound, benchmark E22's degradation leg).  The correct client response
  is to back off and resubmit once the frontend has drained.
* **failover** — the serving host died mid-request; the request was
  never made durable, so the replicated tier resubmits it against the
  next leader (:mod:`repro.server.ha`), pacing the retries so a slow
  election is not hammered.

Both share one policy object.  The backoff schedule is deterministic
(no jitter): the repo's clocks are injected/simulated, and benchmarks
pin the exact delay sequence — ``base_delay * multiplier**(attempt-1)``
capped at ``max_delay``, for at most ``max_attempts`` attempts.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple, Type


class RetryPolicy:
    """Bounded exponential backoff schedule.

    Args:
        max_attempts: total tries including the first (>=1); the final
            failure is re-raised to the caller.
        base_delay: backoff before the first retry (seconds, injected
            time).
        multiplier: growth factor per retry (>=1).
        max_delay: cap on any single backoff.
    """

    def __init__(
        self,
        max_attempts: int = 5,
        base_delay: float = 0.005,
        multiplier: float = 2.0,
        max_delay: float = 0.1,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay

    def delay_for(self, attempt: int) -> float:
        """Backoff to wait after failed attempt number ``attempt``
        (1-based) before the next try."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )

    def delays(self) -> Iterator[float]:
        """The full backoff schedule (``max_attempts - 1`` delays)."""
        for attempt in range(1, self.max_attempts):
            yield self.delay_for(attempt)

    def total_backoff(self) -> float:
        """Worst-case injected time spent backing off before giving up."""
        return sum(self.delays())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier}, "
            f"max_delay={self.max_delay})"
        )


def call_with_retry(
    fn: Callable[[], "object"],
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...],
    sleep: Optional[Callable[[float], None]] = None,
    on_backoff: Optional[Callable[[int, float], None]] = None,
):
    """Run ``fn`` under the policy; re-raise the last error when spent.

    ``sleep`` receives each backoff delay (the integration layer decides
    what a delay *means* — advance a manual clock and tick the frontend,
    or time out in the simulator).  ``on_backoff(attempt, delay)`` is a
    metrics hook.  Errors outside ``retry_on`` propagate immediately.
    """
    attempt = 1
    while True:
        try:
            return fn()
        except retry_on:
            if attempt >= policy.max_attempts:
                raise
            delay = policy.delay_for(attempt)
            if on_backoff is not None:
                on_backoff(attempt, delay)
            if sleep is not None:
                sleep(delay)
            attempt += 1
