"""Failure-injection tests: the lock-recovery problem the paper critiques.

§2.1 / §7.2: "the locks held by a failed or slow transaction prevent the
others from making progress until the full recovery from the failure."
These tests exercise that behaviour and the primary-lock resolution
protocol that eventually unblocks the system.
"""

import pytest

from repro.core.errors import ConflictAbort
from repro.percolator import LockPolicy, PercolatorTransactionManager
from repro.percolator.percolator import PercoState


@pytest.fixture
def manager():
    return PercolatorTransactionManager()


class TestCrashBeforeCommitPoint:
    def test_crashed_client_leaves_locks(self, manager):
        txn = manager.begin()
        txn.write("x", "doomed")
        txn.prewrite(primary="x")
        txn.crash()
        assert manager.store.lock_of("x") is not None  # the dangling lock

    def test_reader_resolves_crashed_txn_by_rollback(self, manager):
        txn = manager.begin()
        txn.write("x", "doomed")
        txn.write("y", "doomed")
        txn.prewrite(primary=sorted(["x", "y"], key=repr)[0])
        txn.crash()
        reader = manager.begin()
        # Reading triggers resolution: primary has no commit record and
        # the holder is known-crashed -> roll back.
        assert reader.read("x") is None
        assert reader.read("y") is None
        assert manager.store.lock_of("x") is None
        assert manager.store.lock_of("y") is None

    def test_writer_blocked_until_resolution(self, manager):
        crashed = manager.begin()
        crashed.write("x", "doomed")
        crashed.prewrite(primary="x")
        crashed.crash()
        writer = manager.begin(lock_policy=LockPolicy.WAIT)
        writer.write("x", "next")
        writer.commit()  # WAIT policy resolves the dead lock and proceeds
        assert manager.begin().read("x") == "next"


class TestCrashAfterCommitPoint:
    def test_secondaries_rolled_forward(self, manager):
        """Crash between primary commit and secondary cleanup: the txn IS
        committed; readers must roll secondaries forward, not back."""
        txn = manager.begin()
        txn.write("a", 1)
        txn.write("b", 2)
        rows = sorted(["a", "b"], key=repr)
        primary = rows[0]
        txn.prewrite(primary, rows)
        # Manually run only the primary part of phase 2 to simulate the
        # crash window.
        store = manager.store
        from repro.percolator.percolator import WriteRecord

        commit_ts = manager.tso.next()
        store.add_write_record(primary, WriteRecord(commit_ts, txn.start_ts))
        store.release_lock(primary, txn.start_ts)
        txn.crash()

        reader = manager.begin()
        secondary = rows[1]
        value = reader.read(secondary)
        assert value == {"a": 1, "b": 2}[secondary]
        assert store.lock_of(secondary) is None  # rolled forward


class TestSlowClient:
    def test_slow_transaction_blocks_writers_but_not_snapshot_reads(self, manager):
        slow = manager.begin()
        slow.write("x", "slow")
        slow.prewrite(primary="x")  # holds lock, client is just slow

        # A snapshot reader is fine: no committed version to see.
        reader = manager.begin()
        assert reader.read("x") is None

        # A writer with ABORT_SELF policy pays the price.
        writer = manager.begin(lock_policy=LockPolicy.ABORT_SELF)
        writer.write("x", "blocked")
        with pytest.raises(ConflictAbort):
            writer.commit()

        # The slow client eventually finishes successfully.
        slow.finalize(primary="x")
        assert slow.state is PercoState.COMMITTED
        assert manager.begin().read("x") == "slow"

    def test_resolution_counter_tracks_cleanup_load(self, manager):
        # The paper notes lock maintenance puts "extra load on data
        # servers"; the resolution counter exposes it.
        crashed = manager.begin()
        crashed.write("x", 1)
        crashed.prewrite(primary="x")
        crashed.crash()
        before = manager.resolution_count
        manager.begin().read("x")
        assert manager.resolution_count == before + 1


class TestContrastWithLockFree:
    def test_lock_free_oracle_has_no_dangling_state(self):
        """The lock-free design's advantage: a dead client leaves nothing
        that blocks others (its writes are simply never committed)."""
        from repro.core import create_system

        system = create_system("wsi")
        dead = system.manager.begin()
        dead.write("x", "doomed")
        # client dies here: no commit request ever sent; no cleanup done

        writer = system.manager.begin()
        writer.write("x", "alive")
        writer.commit()  # no lock to wait on: commits immediately
        assert system.manager.begin().read("x") == "alive"
