"""The commit table: start-timestamp -> commit-timestamp mapping.

Line 6 of Algorithms 1 and 2 "maintains the mapping between the
transaction start and commit timestamps.  This data could be used later
to process queries about the transaction statuses."  Readers need this
mapping to decide version visibility (the snapshot skip rule).  The paper
lists three places the mapping can live: the status oracle itself, the
data servers ("written back into the database"), or replicated on the
clients — the paper's experiments, and this reproduction, use the client
replica.

:class:`CommitTable` is the authoritative copy inside the status oracle;
:class:`ClientCommitView` is a read-only replica a client keeps in sync by
applying the oracle's broadcast stream.  Both satisfy the
:class:`repro.mvcc.snapshot.CommitStatusSource` protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.core.errors import InvariantViolation


class CommitTable:
    """Authoritative commit/abort state, owned by the status oracle."""

    def __init__(self) -> None:
        self._commits: Dict[int, int] = {}  # start_ts -> commit_ts
        self._aborted: Set[int] = set()
        self._subscribers: List[Callable[[str, int, Optional[int]], None]] = []

    # ------------------------------------------------------------------
    # updates (status-oracle side)
    # ------------------------------------------------------------------
    def record_commit(self, start_ts: int, commit_ts: int) -> None:
        if start_ts in self._aborted:
            raise ValueError(f"txn {start_ts} already aborted; cannot commit")
        if commit_ts <= start_ts:
            raise ValueError(
                f"commit_ts {commit_ts} must exceed start_ts {start_ts}"
            )
        self._commits[start_ts] = commit_ts
        self._publish("commit", start_ts, commit_ts)

    def record_abort(self, start_ts: int) -> None:
        if start_ts in self._commits:
            raise ValueError(f"txn {start_ts} already committed; cannot abort")
        self._aborted.add(start_ts)
        self._publish("abort", start_ts, None)

    # ------------------------------------------------------------------
    # CommitStatusSource protocol
    # ------------------------------------------------------------------
    def commit_timestamp(self, start_ts: int) -> Optional[int]:
        return self._commits.get(start_ts)

    def is_aborted(self, start_ts: int) -> bool:
        return start_ts in self._aborted

    def is_committed(self, start_ts: int) -> bool:
        return start_ts in self._commits

    # ------------------------------------------------------------------
    # replication to clients
    # ------------------------------------------------------------------
    def subscribe(
        self, callback: Callable[[str, int, Optional[int]], None]
    ) -> None:
        """Register a replica feed: callback(kind, start_ts, commit_ts)."""
        self._subscribers.append(callback)

    def _publish(self, kind: str, start_ts: int, commit_ts: Optional[int]) -> None:
        for callback in self._subscribers:
            callback(kind, start_ts, commit_ts)

    def snapshot_entries(self) -> Iterator[Tuple[str, int, Optional[int]]]:
        """Dump current state (bootstrap for a late-joining replica)."""
        for start_ts, commit_ts in self._commits.items():
            yield "commit", start_ts, commit_ts
        for start_ts in self._aborted:
            yield "abort", start_ts, None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def commit_count(self) -> int:
        return len(self._commits)

    @property
    def abort_count(self) -> int:
        return len(self._aborted)


class ClientCommitView:
    """A client-side replica of the commit table (paper's configuration).

    The client applies the oracle's broadcast stream; visibility decisions
    are made against this local copy, avoiding a round trip to the oracle
    per read ("replicated on the clients [17]", §2.2).

    A view can be constructed *attached* (live subscription) or *detached*
    and fed manually — the latter lets tests model replication lag, which
    is safe for SI/WSI: a lagging replica makes recently-committed
    versions look uncommitted, so a reader may skip data it could have
    seen, but it never reads data outside its snapshot.
    """

    def __init__(self, source: Optional[CommitTable] = None) -> None:
        self._commits: Dict[int, int] = {}
        self._aborted: Set[int] = set()
        if source is not None:
            for kind, start_ts, commit_ts in source.snapshot_entries():
                self.apply(kind, start_ts, commit_ts)
            source.subscribe(self.apply)

    def apply(self, kind: str, start_ts: int, commit_ts: Optional[int]) -> None:
        """Apply one replication record."""
        if kind == "commit":
            if commit_ts is None:
                raise InvariantViolation(
                    f"commit record for txn {start_ts} carries no commit_ts"
                )
            self._commits[start_ts] = commit_ts
        elif kind == "abort":
            self._aborted.add(start_ts)
        else:
            raise ValueError(f"unknown commit-table record kind {kind!r}")

    # CommitStatusSource protocol -------------------------------------
    def commit_timestamp(self, start_ts: int) -> Optional[int]:
        return self._commits.get(start_ts)

    def is_aborted(self, start_ts: int) -> bool:
        return start_ts in self._aborted

    @property
    def size(self) -> int:
        return len(self._commits) + len(self._aborted)
