"""Unit tests for Algorithms 1 and 2 (the status oracle)."""

import pytest

from repro.core.errors import OracleClosed
from repro.core.status_oracle import (
    CommitRequest,
    SnapshotIsolationOracle,
    WriteSnapshotIsolationOracle,
    make_oracle,
)


def req(start, writes=(), reads=()):
    return CommitRequest(
        start, write_set=frozenset(writes), read_set=frozenset(reads)
    )


class TestAlgorithm1SI:
    """Algorithm 1: write-write conflict detection."""

    def test_first_writer_commits(self):
        oracle = SnapshotIsolationOracle()
        ts = oracle.begin()
        result = oracle.commit(req(ts, writes={"r"}))
        assert result.committed
        assert result.commit_ts is not None and result.commit_ts > ts

    def test_conflicting_writer_aborts(self):
        oracle = SnapshotIsolationOracle()
        t1 = oracle.begin()
        t2 = oracle.begin()
        assert oracle.commit(req(t1, writes={"r"})).committed
        result = oracle.commit(req(t2, writes={"r"}))
        assert not result.committed
        assert result.reason == "ww-conflict"
        assert result.conflict_row == "r"

    def test_serial_writers_both_commit(self):
        oracle = SnapshotIsolationOracle()
        t1 = oracle.begin()
        assert oracle.commit(req(t1, writes={"r"})).committed
        t2 = oracle.begin()  # starts after t1 committed
        assert oracle.commit(req(t2, writes={"r"})).committed

    def test_disjoint_writes_both_commit(self):
        oracle = SnapshotIsolationOracle()
        t1, t2 = oracle.begin(), oracle.begin()
        assert oracle.commit(req(t1, writes={"x"})).committed
        assert oracle.commit(req(t2, writes={"y"})).committed

    def test_si_ignores_read_set(self):
        # SI checks only writes: a concurrent read-write crossover commits.
        oracle = SnapshotIsolationOracle()
        t1, t2 = oracle.begin(), oracle.begin()
        assert oracle.commit(req(t1, writes={"x"}, reads={"y"})).committed
        assert oracle.commit(req(t2, writes={"y"}, reads={"x"})).committed

    def test_lastcommit_updated_to_commit_ts(self):
        oracle = SnapshotIsolationOracle()
        t1 = oracle.begin()
        result = oracle.commit(req(t1, writes={"r"}))
        assert oracle.last_commit("r") == result.commit_ts

    def test_induction_only_latest_needed(self):
        # Checking only the latest committed writer suffices (the
        # induction argument of §2.2): a transaction whose snapshot
        # predates several generations of writers is still caught.
        oracle = SnapshotIsolationOracle()
        stale = oracle.begin()  # snapshot taken before any writer commits
        for _ in range(3):
            ts = oracle.begin()
            assert oracle.commit(req(ts, writes={"r"})).committed
        result = oracle.commit(req(stale, writes={"r"}))
        assert not result.committed


class TestAlgorithm2WSI:
    """Algorithm 2: read-write conflict detection."""

    def test_read_set_checked_not_write_set(self):
        oracle = WriteSnapshotIsolationOracle()
        t1, t2 = oracle.begin(), oracle.begin()
        # t1 writes x; t2 also writes x but never read it (blind write):
        # allowed under WSI (History 4).
        assert oracle.commit(req(t1, writes={"x"})).committed
        assert oracle.commit(req(t2, writes={"x"})).committed

    def test_rw_conflict_aborts(self):
        oracle = WriteSnapshotIsolationOracle()
        t1, t2 = oracle.begin(), oracle.begin()
        assert oracle.commit(req(t1, writes={"x"})).committed
        result = oracle.commit(req(t2, writes={"y"}, reads={"x"}))
        assert not result.committed
        assert result.reason == "rw-conflict"

    def test_write_skew_prevented(self):
        # History 2: both read {x, y}; t1 writes x, t2 writes y.
        oracle = WriteSnapshotIsolationOracle()
        t1, t2 = oracle.begin(), oracle.begin()
        assert oracle.commit(req(t1, writes={"x"}, reads={"x", "y"})).committed
        result = oracle.commit(req(t2, writes={"y"}, reads={"x", "y"}))
        assert not result.committed

    def test_reader_committing_first_wins(self):
        oracle = WriteSnapshotIsolationOracle()
        t1, t2 = oracle.begin(), oracle.begin()
        # t2 (the reader) commits first; t1's later write cannot hurt it.
        assert oracle.commit(req(t2, writes={"y"}, reads={"x"})).committed
        assert oracle.commit(req(t1, writes={"x"})).committed

    def test_update_uses_write_set(self):
        oracle = WriteSnapshotIsolationOracle()
        t1 = oracle.begin()
        result = oracle.commit(req(t1, writes={"w"}, reads={"r"}))
        assert oracle.last_commit("w") == result.commit_ts
        assert oracle.last_commit("r") is None


class TestReadOnlyFastPath:
    @pytest.mark.parametrize("level", ["si", "wsi"])
    def test_empty_sets_commit_without_work(self, level):
        oracle = make_oracle(level)
        ts = oracle.begin()
        result = oracle.commit(req(ts))
        assert result.committed
        assert result.commit_ts is None  # no commit timestamp consumed
        assert oracle.stats.read_only_commits == 1
        assert oracle.stats.rows_checked == 0

    @pytest.mark.parametrize("level", ["si", "wsi"])
    def test_read_only_never_aborts_even_after_conflicting_writes(self, level):
        oracle = make_oracle(level)
        reader = oracle.begin()
        writer = oracle.begin()
        assert oracle.commit(req(writer, writes={"x"})).committed
        # The read-only client submits empty sets per §5.1.
        assert oracle.commit(req(reader)).committed

    def test_read_only_with_submitted_read_set_still_commits(self):
        # §4.1 condition 3: an empty write set never aborts — even when
        # the client (wastefully) submitted its read set, the oracle
        # short-circuits: no check, no commit timestamp, no WAL.
        oracle = WriteSnapshotIsolationOracle()
        reader = oracle.begin()
        writer = oracle.begin()
        assert oracle.commit(req(writer, writes={"x"})).committed
        result = oracle.commit(req(reader, reads={"x"}))
        assert result.committed
        assert result.commit_ts is None
        assert oracle.stats.read_only_commits == 1
        assert oracle.stats.rows_checked == 0

    def test_wsi_naive_read_only_with_read_set_can_abort(self):
        # Documents why condition 3 matters: under the E16 ablation
        # switch (`naive_read_only=True`) Algorithm 2 checks the
        # submitted read set and aborts the reader on conflict — the §1
        # "naive implementation" that "greatly reduce[s] the level of
        # concurrency".
        oracle = WriteSnapshotIsolationOracle(naive_read_only=True)
        reader = oracle.begin()
        writer = oracle.begin()
        assert oracle.commit(req(writer, writes={"x"})).committed
        result = oracle.commit(req(reader, reads={"x"}))
        assert not result.committed


class TestCommitTableIntegration:
    def test_commit_recorded(self):
        oracle = make_oracle("wsi")
        ts = oracle.begin()
        result = oracle.commit(req(ts, writes={"x"}))
        assert oracle.commit_table.commit_timestamp(ts) == result.commit_ts

    def test_abort_recorded(self):
        oracle = make_oracle("wsi")
        t1, t2 = oracle.begin(), oracle.begin()
        oracle.commit(req(t1, writes={"x"}))
        oracle.commit(req(t2, reads={"x"}, writes={"y"}))
        assert oracle.commit_table.is_aborted(t2)

    def test_client_abort_recorded(self):
        oracle = make_oracle("si")
        ts = oracle.begin()
        oracle.abort(ts)
        assert oracle.commit_table.is_aborted(ts)


class TestStats:
    def test_counters(self):
        oracle = make_oracle("wsi")
        t1, t2, t3 = oracle.begin(), oracle.begin(), oracle.begin()
        oracle.commit(req(t1, writes={"x"}))
        oracle.commit(req(t2, reads={"x"}, writes={"y"}))  # aborts
        oracle.commit(req(t3))  # read-only
        stats = oracle.stats
        assert stats.commits == 2
        assert stats.aborts == 1
        assert stats.conflict_aborts == 1
        assert stats.read_only_commits == 1
        assert stats.total_requests == 3
        assert stats.abort_rate == pytest.approx(1 / 3)


class TestLifecycle:
    def test_closed_oracle_rejects(self):
        oracle = make_oracle("si")
        oracle.close()
        with pytest.raises(OracleClosed):
            oracle.begin()
        with pytest.raises(OracleClosed):
            oracle.commit(req(1, writes={"x"}))

    def test_factory_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            make_oracle("read-committed")

    def test_factory_levels(self):
        assert make_oracle("si").level == "si"
        assert make_oracle("wsi").level == "wsi"
