"""The ``CommitEngine`` contract: what the serving stack needs from a
commit protocol.

The paper's claim is comparative — write-snapshot isolation against
Percolator-style SI locking against SSI — but PRs 1–6 gave only the
status-oracle engine the serving-stack treatment (group commit,
``decide_batch``, begin leases, admission control, HA).  This module
extracts the *interface* those layers actually consume, so that any
commit protocol — the lock-free status oracle (Algorithms 1–3), the
Percolator two-phase locking port, Cahill-style SSI — can sit behind
the same batched/replicated frontend.

The contract
============

A commit engine is the decision tier of one commit protocol.  The
serving stack (:mod:`repro.server`, :mod:`repro.sim`,
:mod:`repro.bench`, :mod:`repro.coord`) touches engines **only**
through this surface:

Timestamps
    ``begin() -> int`` serves a start timestamp; ``lease(n)``
    (optional — may be absent or ``None``) leases a contiguous block
    for the frontend's begin-lease fast path; ``timestamp_oracle``
    exposes the TSO so a WAL-owning frontend can adopt its
    reservation stream (``persists_reservations`` /
    ``attach_wal``).  An engine without ``lease`` degrades the
    frontend to per-call begins — Cahill SSI needs exactly this,
    because every begin must be observed for its concurrency window.

Decisions
    ``commit(request) -> CommitResult`` decides one
    :class:`~repro.core.status_oracle.CommitRequest`;
    ``abort(start_ts)`` records a client-initiated abort;
    ``rows_to_check(request)`` names the rows the protocol validates
    (the SI/WSI/SSI policy hook, also used by the partition router).
    ``_decide_batch(batch, payload_commits, payload_aborts, errors,
    results=None)`` is the group-commit hot path: one bulk pass over a
    whole flush, observationally equivalent to the sequential calls in
    batch order — same decisions, commit timestamps, engine state and
    stats.  Batch items are ``CommitRequest`` | ``int`` (client abort)
    | ``(request_or_ts, future)``; futures get their outcome written
    directly via the ``_committed``/``_commit_ts``/``_reason``/
    ``_row``/``_error`` attributes.  The method returns ``(commits,
    aborts, rows_checked, rows_updated)`` for the frontend's batch
    accounting.  The hypothesis suite in ``tests/engines`` pins
    ``decide_batch ≡ sequential`` per engine.

Durability and recovery
    ``_wal`` is the engine-owned write-ahead log (or ``None`` when a
    frontend logs on the engine's behalf — one group-commit record
    per flush).  ``apply_wal_record(record) -> int`` applies one
    durable record and returns the highest timestamp it mentions;
    ``recover_from(wal)`` replays a log through it;
    ``seal_recovery(max_ts)`` re-seeds the timestamp oracle above
    everything recovered.  These three are what make an engine
    HA-capable: :class:`~repro.coord.failover.OracleHost` warm
    standbys tail the shared WAL through the same hooks.

Observability
    ``stats`` is an :class:`~repro.core.status_oracle.OracleStats`;
    ``commit_table`` the transaction-status table; ``level`` the
    protocol tag; ``naive_read_only`` tells the frontend whether
    read-only requests *with read sets* must still reach the engine
    (SSI: yes — they are rw-edge sources; the status oracle: only
    under the E16 ablation).

Implementations
===============

* :class:`~repro.core.status_oracle.StatusOracle` and subclasses —
  the paper's Algorithms 1–3 plus the partitioned deployment.
* :class:`~repro.percolator.engine.PercolatorEngine` — group-committed
  prewrite/finalize over the Percolator lock/write columns.
* :class:`~repro.ssi.engine.SSIEngine` — Cahill SSI with a bulk
  rw-antidependency pass per batch.

:func:`make_engine` is the one-call factory keyed by the
``REPRO_ENGINE`` environment variable — the axis ``make check`` sweeps.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, List, Optional, Tuple

from repro.core.errors import OracleClosed

#: Engine kinds :func:`make_engine` understands.
ENGINE_KINDS = ("oracle", "percolator", "ssi")


class CommitEngine:
    """Base class / structural contract for commit-protocol engines.

    Deliberately *not* an ``abc.ABC``: the serving stack duck-types
    against this surface (so foreign backends keep working), and the
    class exists to (a) document the contract, (b) host the shared
    ``decide_batch`` / ``recover_from`` templates, and (c) give the
    frontend a positive ``isinstance`` signal that a backend's
    sequential path writes its own per-decision WAL records.
    """

    #: protocol tag ("si" / "wsi" / "ssi" / "percolator" / ...).
    level: str = "base"

    #: When True, the frontend must route read-only requests that carry
    #: a read set through the engine instead of fast-pathing them.
    naive_read_only: bool = False

    #: Engine-owned WAL (None when the frontend logs for the engine).
    _wal: Any = None
    _closed: bool = False

    # ------------------------------------------------------------------
    # required surface (see module docstring for the full contract)
    # ------------------------------------------------------------------
    def begin(self) -> int:
        raise NotImplementedError

    def commit(self, request) -> Any:
        raise NotImplementedError

    def abort(self, start_ts: int) -> None:
        raise NotImplementedError

    def rows_to_check(self, request):
        raise NotImplementedError

    def _decide_batch(self, batch, payload_commits, payload_aborts, errors,
                      results=None):
        raise NotImplementedError

    @property
    def timestamp_oracle(self):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # the batch surface (shared template)
    # ------------------------------------------------------------------
    def decide_batch(self, requests: Iterable[Any]) -> List[Any]:
        """Decide a whole group-commit batch in one pass.

        ``requests`` is a sequence of
        :class:`~repro.core.status_oracle.CommitRequest` objects,
        optionally interleaved with bare start timestamps (``int``)
        that denote client-initiated aborts.  Returns one
        :class:`~repro.core.status_oracle.CommitResult` per item, in
        order; a client abort yields
        ``CommitResult(False, start_ts, reason=CLIENT_ABORT)``.

        Semantics are identical to feeding the items one at a time
        through :meth:`commit` / :meth:`abort` — same decisions, commit
        timestamps, engine state and stats (the property suites in
        ``tests/server`` and ``tests/engines`` pin this for every
        engine) — but the per-request interpreter overhead is
        amortized by the engine's ``_decide_batch`` loop, and the whole
        batch persists as a **single** group-commit WAL record instead
        of one record per decision (replayed by :meth:`recover_from`).

        Protocol misuse (e.g. committing an already-aborted
        transaction) is isolated to the offending request: the rest of
        the batch is still decided and persisted, then the first such
        error re-raises.
        """
        if self._closed:
            raise OracleClosed(f"{type(self).__name__} is closed")
        payload_commits: List[Tuple[int, int, Any]] = []
        payload_aborts: List[int] = []
        errors: List[Tuple[int, BaseException]] = []
        results: List[Optional[Any]] = []
        try:
            self._decide_batch(
                list(requests), payload_commits, payload_aborts, errors, results
            )
        finally:
            # Mirror the sequential path: decisions made before an error
            # were already appended per-record there, so they must be
            # durable here too.
            if self._wal is not None and (payload_commits or payload_aborts):
                self._wal.append_decisions(payload_commits, payload_aborts)
        if errors:
            raise errors[0][1]
        return results

    # ------------------------------------------------------------------
    # durability / recovery (shared template over the per-record hook)
    # ------------------------------------------------------------------
    def apply_wal_record(self, record) -> int:
        raise NotImplementedError

    def seal_recovery(self, max_recovered_ts: int) -> None:
        raise NotImplementedError

    def recover_from(self, wal) -> int:
        """Rebuild engine state by WAL replay.

        "if the status oracle server fails ... another fresh instance
        of the status oracle could still recreate the memory state from
        the write-ahead log and continue servicing the commit requests"
        (Appendix A) — generalized to any engine that can apply one
        durable record at a time.

        Returns the number of records replayed — counted during this
        one pass, because the pass *is* the failover cost the caller
        wants to report (a second counting replay would double recovery
        time).
        """
        max_ts = 0
        replayed = 0
        for record in wal.replay():
            max_ts = max(max_ts, self.apply_wal_record(record))
            replayed += 1
        self.seal_recovery(max_ts)
        return replayed

    def close(self) -> None:
        if self._wal is not None:
            self._wal.flush()
        self._closed = True


def default_engine_kind() -> str:
    """The engine kind the serving stack assumes when none is given:
    the ``REPRO_ENGINE`` environment variable, then ``"oracle"``.

    The protocol-agnostic entry points (:class:`ReplicatedFrontend`,
    :class:`OracleReplicaSet`, :class:`GroupCommitSim`) resolve their
    ``engine=None`` default through this, so ``make check`` can sweep
    the whole serving stack across protocols by exporting the
    variable.  Layers with a protocol-specific contract (e.g.
    ``create_system``'s isolation-level API) pin ``engine="oracle"``
    explicitly instead.
    """
    return os.environ.get("REPRO_ENGINE", "oracle").strip().lower()


def make_engine(kind: Optional[str] = None, **kwargs) -> CommitEngine:
    """Build a commit engine by protocol kind.

    ``kind`` defaults to the ``REPRO_ENGINE`` environment variable
    (then ``"oracle"``) — the axis ``make check`` sweeps so the fast
    suite runs once per protocol.  Recognized kinds:

    * ``"oracle"`` — the status oracle; ``level=`` selects "si"/"wsi"
      (default "wsi") and the remaining kwargs go to
      :func:`~repro.core.status_oracle.make_oracle`.
    * ``"si"`` / ``"wsi"`` — shorthand for the oracle at that level.
    * ``"percolator"`` — :class:`~repro.percolator.engine.PercolatorEngine`.
    * ``"ssi"`` — :class:`~repro.ssi.engine.SSIEngine`.

    Imports are deliberately lazy: ``repro.percolator`` and
    ``repro.ssi`` import :mod:`repro.core`, not the other way around.
    """
    if kind is None:
        kind = default_engine_kind()
    kind = kind.strip().lower()
    if kind in ("oracle", "si", "wsi"):
        from repro.core.status_oracle import make_oracle

        level = kwargs.pop("level", None) or ("wsi" if kind == "oracle" else kind)
        return make_oracle(level, **kwargs)
    kwargs.pop("level", None)
    if kind == "percolator":
        from repro.percolator.engine import PercolatorEngine

        return PercolatorEngine(**kwargs)
    if kind in ("ssi", "serializable"):
        from repro.ssi.engine import SSIEngine

        return SSIEngine(**kwargs)
    raise ValueError(
        f"unknown engine kind {kind!r}; expected one of {ENGINE_KINDS}"
    )
