"""Legacy setup shim: lets ``pip install -e .`` work offline.

The environment has no network access and no ``wheel`` package, so the
PEP 660 editable path (which shells out to ``bdist_wheel``) is
unavailable; pip falls back to ``setup.py develop`` when invoked with
``--no-use-pep517``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
