"""Multi-version storage substrate (the paper's HBase data model).

Public surface:

* :class:`MVCCStore` — versioned key-value map.
* :class:`Version` / :data:`TOMBSTONE` — timestamped cell values.
* :class:`SnapshotReader` — the paper's snapshot-read skip rule.
* :class:`Region` / :class:`RegionMap` — key-range sharding.
"""

from repro.mvcc.region import Region, RegionMap
from repro.mvcc.snapshot import CommitStatusSource, SnapshotReader
from repro.mvcc.store import MVCCStore
from repro.mvcc.version import TOMBSTONE, Version

__all__ = [
    "MVCCStore",
    "Version",
    "TOMBSTONE",
    "SnapshotReader",
    "CommitStatusSource",
    "Region",
    "RegionMap",
]
