"""E18 — the batch-decide engine: ``decide_batch`` vs per-request flush.

Not a paper figure: this isolates the cost §6.3 says must stay "in the
order of microseconds" — the critical section itself.  Benchmark E17
showed that *entering* the critical section and *persisting* decisions
amortize over a batch; E18 shows that the work **inside** the critical
section amortizes too.  Both sides of every pair run the same frontend
with the same one-group-WAL-record-per-batch durability; the only
difference is the decision loop:

* ``batched-per-request`` — the PR 1 frontend shape: one
  ``backend.commit()`` call per batch item (per-request wrapper, policy
  hooks, per-request stats bumps, result allocation);
* ``batched`` — :meth:`StatusOracle.decide_batch`: one bulk pass with
  locally-bound lookups, a C-speed ``isdisjoint`` sweep for the
  no-conflict common case, dict-bulk write-set installs, and stats
  counted once per batch.

Acceptance: the batch-decide frontend sustains >= 1.5x the per-request
frontend's throughput at batch size 32 (WSI, uniform complex workload,
median of paired runs — E17's protocol).

A second table sweeps batch size x partition count through
``PartitionedOracle.decide_batch`` (one bulk check/install round per
shard per flush).  On the uniform workload most multi-row transactions
are cross-partition (hash sharding scatters rows), so the bulk path can
only match the two-phase per-request cost there; the partition-aligned
workload (zero cross traffic — the co-located-schema deployment the
§6.3 footnote envisions) is where the per-shard grouping wins.

Set ``REPRO_BENCH_SMOKE=1`` (the ``make bench-smoke`` target) for a
tiny-sized sanity run with correspondingly relaxed bars.
"""

import os

import pytest

from repro.bench import format_table
from repro.bench.snapshot import record
from repro.bench.frontend_bench import (
    bench_batched,
    bench_partition_aligned,
    make_specs,
    median_speedup,
    paired_decide_speedups,
    sweep_batch_partitions,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NUM_REQUESTS = 5_000 if SMOKE else 30_000
PAIRS = 2 if SMOKE else 5
REPEATS = 1 if SMOKE else 2
#: the smoke bar is ratcheted to ~25% below the measured smoke ratio
#: (BENCH_smoke.json), so hot-path regressions fail fast at tiny sizes.
SPEEDUP_BAR = 1.5 if SMOKE else 1.5
BATCH_SIZES = (8, 32, 128)
PARTITION_COUNTS = (0, 2, 4) if SMOKE else (0, 2, 4, 8)


@pytest.mark.figure("e18")
def test_e18_batch_decide_speedup(benchmark, print_header):
    ratios = benchmark.pedantic(
        lambda: paired_decide_speedups(
            level="wsi", batch_size=32, pairs=PAIRS, num_requests=NUM_REQUESTS
        ),
        rounds=1,
        iterations=1,
    )
    print_header("E18 — decide_batch vs per-request frontend (wall clock)")

    specs = make_specs(NUM_REQUESTS)
    rows = []
    for level in ("si", "wsi"):
        for batch_size in BATCH_SIZES:
            rows.append(
                bench_batched(
                    level,
                    specs,
                    batch_size=batch_size,
                    per_request=True,
                    repeats=REPEATS,
                ).as_row()
            )
            rows.append(
                bench_batched(
                    level, specs, batch_size=batch_size, repeats=REPEATS
                ).as_row()
            )
    print(
        format_table(
            ["level", "mode", "batch", "ops/s", "us/op", "wal recs", "ledger writes"],
            rows,
            title=f"uniform complex workload, 2M rows, {NUM_REQUESTS} commit requests",
        )
    )
    print()
    print("paired WSI speedups at batch 32 (decide_batch vs per-request):")
    print("  " + "  ".join(f"{r:.2f}x" for r in ratios))
    print(
        f"  median: {median_speedup(ratios):.2f}x "
        f"(acceptance bar: {SPEEDUP_BAR}x)"
    )

    # Acceptance: batch-decide >= 1.5x the per-request frontend at batch
    # 32 (WSI, uniform workload), median of paired runs.
    assert median_speedup(ratios) >= SPEEDUP_BAR
    record("e18", median_speedup=median_speedup(ratios), bar=SPEEDUP_BAR)


@pytest.mark.figure("e18")
def test_e18_decisions_identical_across_modes(print_header):
    """Zero-tolerance leg: both flush modes must produce byte-identical
    decision counts at every batch size (the hypothesis suite pins the
    full state; this pins it at benchmark scale)."""
    print_header("E18b — decision equality, per-request vs decide_batch")
    specs = make_specs(NUM_REQUESTS)
    for level in ("si", "wsi"):
        per_request = bench_batched(
            level, specs, batch_size=32, per_request=True, repeats=1
        )
        for batch_size in BATCH_SIZES:
            decided = bench_batched(
                level, specs, batch_size=batch_size, repeats=1
            )
            assert decided.commits == per_request.commits
            assert decided.aborts == per_request.aborts
        print(
            f"  {level}: {per_request.commits} commits / "
            f"{per_request.aborts} aborts in every mode"
        )


@pytest.mark.figure("e18")
def test_e18_batch_partition_sweep(print_header):
    print_header("E18c — batch size x partitions (decide_batch frontend)")
    results = sweep_batch_partitions(
        "wsi",
        batch_sizes=BATCH_SIZES,
        partition_counts=PARTITION_COUNTS,
        num_requests=NUM_REQUESTS,
        repeats=REPEATS,
    )
    print(
        format_table(
            ["parts", "batch", "ops/s", "us/op", "commits", "aborts"],
            [
                (
                    r.partitions,
                    r.batch_size,
                    f"{r.ops_per_sec:,.0f}",
                    f"{r.us_per_op:.2f}",
                    r.commits,
                    r.aborts,
                )
                for r in results
            ],
            title="uniform complex workload (hash sharding: mostly cross-partition)",
        )
    )
    # Partitioning must never change what is decided.
    baseline = results[0]
    for r in results[1:]:
        assert r.commits == baseline.commits
        assert r.aborts == baseline.aborts


@pytest.mark.figure("e18")
def test_e18_partition_aligned_workload(print_header):
    """The per-shard bulk round pays off when transactions are
    partition-aligned (zero cross traffic): decide_batch must at least
    match — and typically beat — the per-request partitioned flush."""
    print_header("E18d — partition-aligned workload, 4 partitions")
    specs = make_specs(NUM_REQUESTS // 2)
    per_request = bench_partition_aligned(
        "wsi", specs, partitions=4, per_request=True, repeats=REPEATS
    )
    decided = bench_partition_aligned(
        "wsi", specs, partitions=4, repeats=REPEATS
    )
    ratio = decided.ops_per_sec / per_request.ops_per_sec
    print(
        format_table(
            ["mode", "ops/s", "us/op", "commits", "aborts"],
            [
                (
                    r.mode,
                    f"{r.ops_per_sec:,.0f}",
                    f"{r.us_per_op:.2f}",
                    r.commits,
                    r.aborts,
                )
                for r in (per_request, decided)
            ],
        )
    )
    print(f"  aligned decide_batch speedup: {ratio:.2f}x")
    assert decided.commits == per_request.commits
    assert decided.aborts == per_request.aborts
    # Parity bar (noise-tolerant); the typical win is ~1.1x.
    assert ratio >= 0.9
