"""Unit tests for the exception hierarchy."""

import pytest

from repro.core.errors import (
    AbortException,
    ConflictAbort,
    InvalidTransactionState,
    LedgerClosedError,
    LockConflict,
    NotEnoughBookiesError,
    OracleClosed,
    RecoveryError,
    TmaxAbort,
    TransactionError,
    WALError,
)


class TestHierarchy:
    def test_everything_is_a_transaction_error(self):
        for exc_cls in (
            AbortException,
            ConflictAbort,
            TmaxAbort,
            LockConflict,
            InvalidTransactionState,
            OracleClosed,
            RecoveryError,
            WALError,
            LedgerClosedError,
            NotEnoughBookiesError,
        ):
            assert issubclass(exc_cls, TransactionError)

    def test_abort_family(self):
        assert issubclass(ConflictAbort, AbortException)
        assert issubclass(TmaxAbort, AbortException)
        # catching AbortException is the client retry contract
        with pytest.raises(AbortException):
            raise ConflictAbort(5, "rw-conflict", row="x")
        with pytest.raises(AbortException):
            raise TmaxAbort(5, tmax=100)

    def test_wal_family(self):
        assert issubclass(LedgerClosedError, WALError)
        assert issubclass(NotEnoughBookiesError, WALError)


class TestPayloads:
    def test_abort_exception_fields(self):
        exc = AbortException(7, "client")
        assert exc.txn_id == 7
        assert exc.reason == "client"
        assert "7" in str(exc) and "client" in str(exc)

    def test_conflict_abort_row(self):
        exc = ConflictAbort(7, "ww-conflict", row="hot")
        assert exc.row == "hot"
        assert exc.reason == "ww-conflict"

    def test_tmax_abort_fields(self):
        exc = TmaxAbort(7, tmax=1234)
        assert exc.tmax == 1234
        assert exc.reason == "tmax"

    def test_lock_conflict_fields(self):
        exc = LockConflict("row1", holder=99)
        assert exc.row == "row1"
        assert exc.holder == 99
        assert "99" in str(exc)
