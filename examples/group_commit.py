"""Group commit in action: batched conflict detection + one WAL write.

Three client sessions push transfers at a WSI oracle through the
:mod:`repro.server` frontend.  Watch for the three §6.3/Appendix A
effects:

1. decisions are identical to the unbatched oracle's (we run one as a
   shadow and compare);
2. a whole batch of decisions costs one group-commit WAL record;
3. after a crash, replaying the WAL restores exactly the durable prefix.

Run:  PYTHONPATH=src python examples/group_commit.py
"""

from repro.core.status_oracle import CommitRequest, make_oracle
from repro.server import OracleFrontend
from repro.wal.bookkeeper import BookKeeperWAL


def request(start_ts, writes=(), reads=()):
    return CommitRequest(
        start_ts, write_set=frozenset(writes), read_set=frozenset(reads)
    )


def main() -> None:
    wal = BookKeeperWAL()
    oracle = make_oracle("wsi", wal=wal)
    frontend = OracleFrontend(oracle, max_batch=4)
    shadow = make_oracle("wsi")  # unbatched reference

    print("== three sessions, one batch ==")
    alice = frontend.session(name="alice")
    bob = frontend.session(name="bob")
    carol = frontend.session(name="carol")

    # alice moves money; bob reads the same accounts concurrently (his
    # snapshot predates alice's commit -> rw-conflict under WSI); carol
    # touches different rows and sails through.
    a = alice.begin()
    b = bob.begin()
    c = carol.begin()
    futures = {
        "alice": alice.commit(write_set={"acct:1", "acct:2"}, start_ts=a),
        "bob": bob.commit(
            write_set={"acct:3"}, read_set={"acct:1"}, start_ts=b
        ),
        "carol": carol.commit(write_set={"acct:9"}, start_ts=c),
    }
    print(f"  submitted 3 commit requests; pending={frontend.pending_count}, "
          f"none decided yet: {all(not f.done for f in futures.values())}")

    flushed = frontend.flush()
    print(f"  flushed one batch: {flushed.commits} commits, "
          f"{flushed.aborts} aborts, 1 group-commit WAL record")
    for name, future in futures.items():
        outcome = "committed" if future.committed else (
            f"aborted ({future.result().reason})")
        print(f"    {name:>5}: {outcome}")

    # the unbatched shadow oracle, fed the same requests in batch order
    # (same begins, same submission order), decides identically
    assert [shadow.begin() for _ in "abc"] == [a, b, c]
    for name, start, writes, reads in (
        ("alice", a, {"acct:1", "acct:2"}, ()),
        ("bob", b, {"acct:3"}, {"acct:1"}),
        ("carol", c, {"acct:9"}, ()),
    ):
        result = shadow.commit(request(start, writes, reads))
        assert result == futures[name].result()
    print("  shadow unbatched oracle agrees on every decision")

    print("\n== crash and recovery ==")
    survivor = frontend.submit_commit(
        request(frontend.begin(), writes={"acct:42"})
    )
    frontend.flush()
    wal.flush()  # durable point
    lost = frontend.submit_commit(request(frontend.begin(), writes={"acct:666"}))
    print(f"  durable batch committed acct:42 (Tc={survivor.commit_ts}); "
          f"acct:666 still pending in the frontend buffer")
    # host crashes: the pending request never reached the WAL
    fresh = make_oracle("wsi")
    fresh.recover_from(wal)
    assert fresh.last_commit("acct:42") == survivor.commit_ts
    assert fresh.last_commit("acct:666") is None
    assert not lost.done
    print("  recovered oracle: acct:42 present, acct:666 gone — "
          "exactly the durable prefix")

    stats = frontend.stats
    print(f"\noracle stats: {oracle.stats.commits} commits, "
          f"{oracle.stats.aborts} aborts; "
          f"frontend: {stats.batches} batches, "
          f"avg batch {stats.avg_batch_size():.1f}")


if __name__ == "__main__":
    main()
