"""Fixture for the ``deterministic-protocol`` pass.

Wall-clock reads, randomness, and hash-order iteration in what poses as
a decision path; ``time.sleep``/``time.monotonic`` stay legal.
"""

import random  # EXPECT: deterministic-protocol
import time


def decide(requests):
    deadline = time.time() + 1.0  # EXPECT: deterministic-protocol
    jitter = random.random()  # EXPECT: deterministic-protocol
    order = []
    for row in {"a", "b", "c"}:  # EXPECT: deterministic-protocol
        order.append(row)
    winners = [r for r in set(requests)]  # EXPECT: deterministic-protocol
    return deadline, jitter, order, winners


def allowed_latency_modeling(delay):
    time.sleep(delay)
    return time.monotonic(), time.perf_counter()


def allowed_sorted_iteration(rows):
    return [row for row in sorted(set(rows))]


def reviewed():
    return time.time()  # lint: skip=deterministic-protocol -- fixture
