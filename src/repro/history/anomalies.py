"""Anomaly detectors: the named phenomena of §3.

The ANSI anomalies the paper lists (dirty read, fuzzy read, phantom) plus
the two central to its argument — **lost update** (prevented by SI's
write-write check, H3) and **write skew** (allowed by SI, H2).  Each
detector takes a :class:`~repro.history.history.History` and reports
whether the anomaly manifests, with the witnessing transactions.

Phantoms concern predicate reads; at the paper's row granularity a
history has no predicates, so :func:`has_phantom` operates on an optional
predicate map supplied by the caller (item -> predicate membership) and
is primarily exercised by the tests documenting the limitation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.errors import InvariantViolation
from repro.history.history import History


@dataclass(frozen=True)
class AnomalyWitness:
    """Evidence that an anomaly manifests."""

    anomaly: str
    transactions: Tuple[int, ...]
    item: Optional[str] = None

    def __str__(self) -> str:
        txns = ", ".join(f"txn{t}" for t in self.transactions)
        where = f" on {self.item}" if self.item else ""
        return f"{self.anomaly}({txns}){where}"


# ----------------------------------------------------------------------
# ANSI anomalies (all prevented by *any* snapshot-reading system)
# ----------------------------------------------------------------------
def find_dirty_reads(history: History) -> List[AnomalyWitness]:
    """Dirty read: reading a value whose writer had not committed at the
    time of the read (and is not the reader itself).

    Uses *physical* read semantics: an MVCC snapshot reader can never
    exhibit this, which is the point of §3.2 — "these anomalies do not
    manifest even if we do not prevent any kind of conflicts".
    """
    witnesses = []
    for idx, op in enumerate(history.operations):
        if op.kind != "r":
            continue
        writer = history._physical_writer(op.item, idx)  # noqa: SLF001 - deliberate
        if writer is None or writer == op.txn:
            continue
        commit_pos = history.commit_position(writer)
        if commit_pos is None or commit_pos > idx:
            witnesses.append(
                AnomalyWitness("dirty-read", (op.txn, writer), op.item)
            )
    return witnesses


def find_fuzzy_reads(history: History) -> List[AnomalyWitness]:
    """Fuzzy (non-repeatable) read: txn reads an item, a concurrent txn
    commits a new version of it, and the first txn reads it again seeing
    a different version — only possible without snapshot reads.

    Detected under physical semantics: two reads of the same item by one
    transaction that would observe different writers.
    """
    witnesses = []
    seen: Dict[Tuple[int, str], Optional[int]] = {}
    for idx, op in enumerate(history.operations):
        if op.kind != "r":
            continue
        writer = history._physical_writer(op.item, idx)  # noqa: SLF001
        key = (op.txn, op.item)
        if key in seen and seen[key] != writer:
            if op.item is None:
                raise InvariantViolation(f"read op by txn {op.txn} has no item")
            witnesses.append(
                AnomalyWitness(
                    "fuzzy-read",
                    (op.txn,) + ((writer,) if writer is not None else ()),
                    op.item,
                )
            )
        seen.setdefault(key, writer)
    return witnesses


def has_phantom(
    history: History, predicate_items: Optional[FrozenSet[str]] = None
) -> bool:
    """Phantom: the membership of a search predicate changes between two
    evaluations inside one transaction.

    With snapshot reads the predicate is evaluated against a fixed
    snapshot, so this returns False whenever every reader re-evaluates on
    its own snapshot — the caller supplies ``predicate_items`` (the items
    the predicate covers) to model a predicate read over them.
    """
    if predicate_items is None:
        return False
    # Under snapshot semantics the same snapshot serves both evaluations.
    # A phantom would need physical semantics: check if any txn reads a
    # predicate item twice with different physical writers in between.
    for witness in find_fuzzy_reads(history):
        if witness.item in predicate_items:
            return True
    return False


# ----------------------------------------------------------------------
# lost update (H3) — prevented by SI and by WSI
# ----------------------------------------------------------------------
def find_lost_updates(history: History) -> List[AnomalyWitness]:
    """Lost update (§3.2, H3): committed txn A reads item x, concurrent
    committed txn B also reads x and commits a write to x *between A's
    read and A's commit of its own write to x* — so A's update is based
    on a stale value and B's committed update is effectively lost.

    Precisely (per Berenson et al. / the paper's H3): A and B both read
    x and write x; their lifetimes overlap; both commit.  A blind write
    (no read of x, H4) is *not* a lost update — the paper stresses this.
    """
    witnesses = []
    committed = history.committed_transactions()
    for i, a in enumerate(committed):
        for b in committed[i + 1:]:
            if not history.are_concurrent(a, b):
                continue
            shared = (
                history.read_set(a) & history.write_set(a)
                & history.read_set(b) & history.write_set(b)
            )
            for item in sorted(shared):
                witnesses.append(AnomalyWitness("lost-update", (a, b), item))
    return witnesses


# ----------------------------------------------------------------------
# write skew (H2) — allowed by SI, prevented by WSI
# ----------------------------------------------------------------------
def find_write_skew(history: History) -> List[AnomalyWitness]:
    """Write skew (§3.1, H2): concurrent committed txns A and B where A
    reads an item B writes, B reads an item A writes, and their write
    sets are disjoint (so SI's write-write check cannot see it).
    """
    witnesses = []
    committed = history.committed_transactions()
    for i, a in enumerate(committed):
        for b in committed[i + 1:]:
            if not history.are_concurrent(a, b):
                continue
            if history.write_set(a) & history.write_set(b):
                continue  # SI would catch this pair
            a_reads_b = history.read_set(a) & history.write_set(b)
            b_reads_a = history.read_set(b) & history.write_set(a)
            if a_reads_b and b_reads_a:
                witnesses.append(
                    AnomalyWitness(
                        "write-skew",
                        (a, b),
                        item=sorted(a_reads_b)[0],
                    )
                )
    return witnesses


def check_constraint_violation(
    history: History,
    initial: Dict[str, int],
    apply_write: "WriteSemantics",
    constraint,
) -> bool:
    """Execute the history's dataflow and test a database constraint.

    This makes §3.1's motivating scenario executable: "the write set of
    the interleaving transactions could be related by a constraint in the
    database.  Even if each transaction validates the constraint before
    its commit, two concurrent transactions could still violate it."

    Args:
        history: the interleaving.
        initial: item -> initial integer value.
        apply_write: callable(txn, item, snapshot_values) -> new value,
            defining what each write computes from the values the writer
            *observed in its snapshot*.
        constraint: callable(final_values: Dict[str, int]) -> bool.

    Returns True if the constraint HOLDS in the final state.
    """
    reads = history.reads_from(snapshot_reads=True)
    committed = set(history.committed_transactions())
    # Resolve each committed transaction's observed values, then each
    # item's final value from its final writer.
    values_written: Dict[Tuple[int, str], int] = {}

    def observed(txn: int, item: str) -> int:
        writer = reads.get((txn, item))
        if writer is None or writer not in committed:
            return initial[item]
        if (writer, item) in values_written:
            return values_written[(writer, item)]
        # Writer wrote item but its value not yet computed -> compute.
        return compute_write(writer, item)

    def compute_write(txn: int, item: str) -> int:
        snapshot = {
            it: observed(txn, it)
            for it in sorted(history.read_set(txn) | {item})
            if it in initial
        }
        value = apply_write(txn, item, snapshot)
        values_written[(txn, item)] = value
        return value

    final: Dict[str, int] = dict(initial)
    for item in sorted(history.items()):
        if item not in initial:
            continue
        writer = history.final_writer(item)
        if writer is not None:
            final[item] = compute_write(writer, item)
    return bool(constraint(final))


# Protocol alias for documentation purposes.
WriteSemantics = object
