"""Partitioned status oracles: the paper's scale-out footnote, implemented.

§6.3, footnote 6: "the reported performance is for one status oracle
implemented on a simple dual-core machine.  To get a higher throughput,
one could partition the database and use a status oracle for each
partition."

:class:`PartitionedOracle` shards the ``lastCommit`` state by row hash
across N independent conflict-detection partitions while keeping a
single shared timestamp oracle, so timestamps still form one global
commit order and snapshot semantics are unchanged.  Commit handling:

* a transaction whose footprint touches **one** partition is decided by
  that partition alone — the common case the footnote envisions, and
  the source of the throughput scaling;
* a **cross-partition** transaction runs a two-phase decision: every
  involved partition checks its share of the rows (phase 1); only if
  *all* pass is the commit timestamp assigned and every partition's
  ``lastCommit`` updated (phase 2).  Because checks precede any update
  and the commit timestamp is allocated once, the outcome is identical
  to what a single monolithic oracle would decide — a property the test
  suite checks by differential execution.

* a **group-commit batch** (:meth:`PartitionedOracle.decide_batch`)
  groups its single-partition requests per shard and gives every
  involved partition one bulk check/install round per flush — in a
  distributed deployment, one RPC per partition per batch instead of
  one per request.  Cross-partition requests break the batch into runs
  and take the two-phase path in place, preserving batch order exactly.

The isolation policy (which rows are checked) is inherited per-partition
from the usual SI/WSI oracles, so the partitioned deployment serves
either level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.core.commit_table import CommitTable
from repro.core.errors import OracleClosed
from repro.core.status_oracle import (
    CLIENT_ABORT,
    CommitRequest,
    CommitResult,
    OracleStats,
    StatusOracle,
    make_oracle,
)
from repro.core.timestamps import TimestampOracle

RowKey = Hashable


class PartitionedOracle:
    """N conflict-detection partitions behind one timestamp oracle.

    Exposes the same ``begin`` / ``commit`` / ``abort`` surface as
    :class:`~repro.core.status_oracle.StatusOracle`, so the transaction
    client and the benchmarks can use it interchangeably.
    """

    def __init__(
        self,
        level: str = "wsi",
        num_partitions: int = 4,
        timestamp_oracle: Optional[TimestampOracle] = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.level = level
        self._tso = timestamp_oracle or TimestampOracle()
        # Every partition shares the TSO (one global commit order) and
        # gets its own lastCommit + stats; their private commit tables
        # are unused — the partitioned deployment keeps one authoritative
        # commit table, like the monolithic oracle.
        self.partitions: List[StatusOracle] = [
            make_oracle(level, timestamp_oracle=self._tso)
            for _ in range(num_partitions)
        ]
        self.commit_table = CommitTable()
        self.stats = OracleStats()
        self.cross_partition_commits = 0
        self.single_partition_commits = 0
        self._closed = False

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def partition_of(self, row: RowKey) -> int:
        return hash(row) % len(self.partitions)

    def _split(self, rows: FrozenSet[RowKey]) -> Dict[int, Set[RowKey]]:
        num = len(self.partitions)  # hash inlined: _split is hot (E18)
        shares: Dict[int, Set[RowKey]] = {}
        setdefault = shares.setdefault
        for row in rows:
            setdefault(hash(row) % num, set()).add(row)
        return shares

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    def begin(self) -> int:
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")
        return self._tso.next()

    def commit(self, request: CommitRequest) -> CommitResult:
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")

        # Read-only fast path, identical to the monolithic oracle
        # (§4.1 condition 3 / §5.1: an empty write set never aborts,
        # whether or not the client submitted its read set).
        if request.is_read_only:
            self.stats.commits += 1
            self.stats.read_only_commits += 1
            return CommitResult(True, request.start_ts, commit_ts=None)

        pid = self._single_partition_of(request)
        if pid >= 0:
            # The common case the §6.3 footnote envisions: the whole
            # footprint lives in one partition — decided there directly,
            # with no share splitting or share-request construction.
            return self._commit_single(request, pid)
        return self._commit_cross(request)

    def _single_partition_of(self, request: CommitRequest) -> int:
        """The single partition owning the whole footprint, or -1.

        Under SI the checked rows *are* the write set, so only WSI needs
        the second (read-set) scan.
        """
        num = len(self.partitions)
        if num == 1:
            return 0
        pid = -1
        for row in request.write_set:
            p = hash(row) % num
            if pid < 0:
                pid = p
            elif p != pid:
                return -1
        if self.level == "wsi":
            for row in request.read_set:
                p = hash(row) % num
                if pid < 0:
                    pid = p
                elif p != pid:
                    return -1
        return pid

    def _commit_single(self, request: CommitRequest, pid: int) -> CommitResult:
        """Decide a single-partition request against one shard directly."""
        partition = self.partitions[pid]
        lc = partition._last_commit
        lc_get = lc.get
        start = request.start_ts
        checked = 0
        conflict_row = None
        for row in self._rows_to_check(request):
            checked += 1
            last = lc_get(row)
            if last is not None and last > start:
                conflict_row = row
                break
        partition.stats.rows_checked += checked
        if conflict_row is not None:
            reason = "rw-conflict" if self.level == "wsi" else "ww-conflict"
            self.stats.aborts += 1
            self.stats.conflict_aborts += 1
            self.commit_table.record_abort(start)
            return CommitResult(
                False, start, reason=reason, conflict_row=conflict_row
            )
        commit_ts = self._tso.next()
        for row in request.write_set:
            lc[row] = commit_ts
        self.stats.rows_updated += len(request.write_set)
        self.commit_table.record_commit(start, commit_ts)
        self.stats.commits += 1
        self.single_partition_commits += 1
        return CommitResult(True, start, commit_ts=commit_ts)

    def _commit_cross(self, request: CommitRequest) -> CommitResult:
        """Two-phase decision for a cross-partition footprint."""
        check_shares = self._split(self._rows_to_check(request))
        write_shares = self._split(request.write_set)
        involved = set(check_shares) | set(write_shares)

        # Phase 1: every involved partition validates its share.  For SI
        # the checked rows are the write share (== check share); for WSI
        # the read share — partition.rows_to_check dispatches correctly.
        for pid in sorted(involved):
            partition = self.partitions[pid]
            share_request = CommitRequest(
                request.start_ts,
                write_set=frozenset(write_shares.get(pid, ())),
                read_set=(
                    frozenset(check_shares.get(pid, ()))
                    if self.level == "wsi"
                    else frozenset()
                ),
            )
            conflict = partition._check(share_request)
            if conflict is not None:
                reason, row = conflict
                self.stats.aborts += 1
                self.stats.conflict_aborts += 1
                self.commit_table.record_abort(request.start_ts)
                return CommitResult(
                    False, request.start_ts, reason=reason, conflict_row=row
                )

        # Phase 2: decision is commit — assign Tc once, install shares.
        commit_ts = self._tso.next()
        for pid, rows in write_shares.items():
            self.partitions[pid]._install(rows, commit_ts)
            self.stats.rows_updated += len(rows)
        self.commit_table.record_commit(request.start_ts, commit_ts)
        self.stats.commits += 1
        self.cross_partition_commits += 1
        return CommitResult(True, request.start_ts, commit_ts=commit_ts)

    def abort(self, start_ts: int) -> None:
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")
        self.commit_table.record_abort(start_ts)
        self.stats.aborts += 1

    def _rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        if self.level == "si":
            return request.write_set
        return request.read_set

    # ------------------------------------------------------------------
    # the batch-decide fast path: one bulk round per partition per flush
    # ------------------------------------------------------------------
    def decide_batch(self, requests) -> List[CommitResult]:
        """Decide a whole batch in one pass; see
        :meth:`repro.core.status_oracle.StatusOracle.decide_batch` for the
        contract (the partitioned oracle owns no WAL, so no record is
        written here — the group-commit frontend supplies durability)."""
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")
        payload_commits: List[Tuple[int, int, Any]] = []
        payload_aborts: List[int] = []
        errors: List[Tuple[int, BaseException]] = []
        results: List[Optional[CommitResult]] = []
        self._decide_batch(
            list(requests), payload_commits, payload_aborts, errors, results
        )
        if errors:
            raise errors[0][1]
        return results

    def _decide_batch(self, batch, payload_commits, payload_aborts, errors,
                      results=None):
        """Batch engine: group single-partition requests per shard.

        The batch is processed as runs of consecutive single-partition
        (plus read-only and client-abort) items; each run is decided with
        **one bulk check/install round per involved partition** — the
        scale-out amortization of §6.3 footnote 6: in a distributed
        deployment this is one RPC per partition per flush instead of one
        per request.  A cross-partition request ends the run and takes the
        two-phase path in place, so batch order is fully preserved.

        Correctness of deferred timestamping: requests of *different*
        partitions never read each other's state, and within a partition
        the run preserves batch order.  A check that hits a row written
        earlier in the same run always conflicts regardless of the
        writer's (not yet assigned) commit timestamp — every batch member
        began before any batch commit timestamp is issued — so the shard
        round tracks earlier in-run write rows in a plain *pending* set
        and consults it alongside ``lastCommit``; the assignment pass
        then installs each committed write set exactly once, with its
        real commit timestamp, in batch order.  ``lastCommit`` never
        holds a provisional value, so an error escaping mid-batch leaves
        only fully-applied prefixes behind, exactly like sequential
        :meth:`commit` calls.  Decisions, timestamps, ``lastCommit``,
        commit table and stats all land exactly as the sequential path
        would leave them.
        """
        if self._closed:
            raise OracleClosed("partitioned oracle is closed")
        tso = self._tso
        if tso._closed:
            raise OracleClosed("timestamp oracle is closed")
        ct = self.commit_table
        partitions = self.partitions
        num = len(partitions)
        wsi = self.level == "wsi"
        reason_tag = "rw-conflict" if wsi else "ww-conflict"
        pc_append = payload_commits.append
        pa_append = payload_aborts.append
        res_append = results.append if results is not None else None
        st = self.stats
        commits = conflict_aborts = client_aborts = ro_commits = 0
        single_commits = rows_updated = 0
        # Whole-batch delta of the per-partition rows_checked counters
        # (covers shard rounds and cross-partition checks alike) — summed
        # once per batch, not once per item.
        checked_at_start = sum(p.stats.rows_checked for p in partitions)

        # One run entry per item: [kind, req, fut, pid, decision]
        # kind: "ca" client abort | "ro" read-only | "sp" single-partition
        # decision (sp only): None until checked, then True (commit) or
        # ("abort", reason, row).
        run: List[list] = []

        def flush_run():
            nonlocal commits, conflict_aborts, client_aborts, ro_commits
            nonlocal single_commits, rows_updated
            if not run:
                return
            # Phase A: group the run's commit requests per shard,
            # preserving batch order within each shard.
            groups: Dict[int, List[list]] = {}
            for entry in run:
                if entry[0] == "sp":
                    groups.setdefault(entry[3], []).append(entry)
            # Phase B: one bulk check round per involved shard.  Rows
            # written by earlier committed-in-run requests live in the
            # shard's `pending` set until the assignment pass installs
            # them — any hit there is a conflict (the writer's commit
            # timestamp, once assigned, exceeds every batch start).
            for pid, group in groups.items():
                partition = partitions[pid]
                lc_get = partition._last_commit.get
                pending: Set[RowKey] = set()
                pending_update = pending.update
                shard_checked = 0
                for entry in group:
                    req = entry[1]
                    start = req.start_ts
                    conflict_row = None
                    for row in (req.read_set if wsi else req.write_set):
                        shard_checked += 1
                        if row in pending:
                            conflict_row = row
                            break
                        last = lc_get(row)
                        if last is not None and last > start:
                            conflict_row = row
                            break
                    if conflict_row is not None:
                        entry[4] = ("abort", reason_tag, conflict_row)
                    else:
                        entry[4] = True
                        pending_update(req.write_set)
                partition.stats.rows_checked += shard_checked
            # Phase C: assignment in batch order — commit timestamps,
            # the (single) real installs, commit table, payloads,
            # futures/results.
            nxt = tso._next
            reserved = tso._reserved_until
            issued = 0
            try:
                for kind, req, fut, pid, decision in run:
                    if kind == "ca":
                        try:
                            ct.record_abort(req)
                        except Exception as exc:
                            errors.append((req, exc))
                            if fut is not None:
                                fut._error = exc
                            if res_append is not None:
                                res_append(None)
                            continue
                        client_aborts += 1
                        pa_append(req)
                        if fut is not None:
                            fut._reason = CLIENT_ABORT
                        if res_append is not None:
                            res_append(
                                CommitResult(False, req, reason=CLIENT_ABORT)
                            )
                        continue
                    start = req.start_ts
                    if kind == "ro":
                        ro_commits += 1
                        if fut is not None:
                            fut._committed = True
                        if res_append is not None:
                            res_append(
                                CommitResult(True, start, commit_ts=None)
                            )
                        continue
                    if decision is not True:
                        _, reason, row = decision
                        try:
                            ct.record_abort(start)
                        except Exception as exc:
                            errors.append((start, exc))
                            if fut is not None:
                                fut._error = exc
                            if res_append is not None:
                                res_append(None)
                            continue
                        conflict_aborts += 1
                        pa_append(start)
                        if fut is not None:
                            fut._reason = reason
                            fut._row = row
                        if res_append is not None:
                            res_append(
                                CommitResult(
                                    False, start,
                                    reason=reason, conflict_row=row,
                                )
                            )
                        continue
                    # committed single-partition request
                    if nxt > reserved:
                        tso._next = nxt
                        tso._reserve()
                        reserved = tso._reserved_until
                    cts = nxt
                    nxt += 1
                    issued += 1
                    ws = req.write_set
                    partitions[pid]._last_commit.update(dict.fromkeys(ws, cts))
                    rows_updated += len(ws)
                    try:
                        ct.record_commit(start, cts)
                    except Exception as exc:
                        errors.append((start, exc))
                        if fut is not None:
                            fut._error = exc
                        if res_append is not None:
                            res_append(None)
                        continue
                    commits += 1
                    single_commits += 1
                    pc_append((start, cts, ws))
                    if fut is not None:
                        fut._committed = True
                        fut._commit_ts = cts
                    if res_append is not None:
                        res_append(CommitResult(True, start, commit_ts=cts))
            finally:
                tso._next = nxt
                tso._issued += issued
            run.clear()

        # Cross-partition items go through _commit_cross, which counts
        # itself in self.stats / cross_partition_commits directly; these
        # tallies only feed the returned whole-batch counters.
        cross_commits = cross_aborts = cross_rows_updated = 0

        try:
            for item in batch:
                req, fut = item if item.__class__ is tuple else (item, None)
                if req.__class__ is not CommitRequest:
                    run.append(["ca", req, fut, -1, None])
                    continue
                if not req.write_set:
                    run.append(["ro", req, fut, -1, None])
                    continue
                pid = self._single_partition_of(req)
                if pid >= 0:
                    run.append(["sp", req, fut, pid, None])
                    continue
                # Cross-partition request: decide in place (two-phase),
                # after everything queued before it has taken effect.
                flush_run()
                try:
                    result = self._commit_cross(req)
                except Exception as exc:
                    errors.append((req.start_ts, exc))
                    if fut is not None:
                        fut._error = exc
                    if res_append is not None:
                        res_append(None)
                    continue
                if result.committed:
                    cross_commits += 1
                    cross_rows_updated += len(req.write_set)
                    pc_append((req.start_ts, result.commit_ts, req.write_set))
                    if fut is not None:
                        fut._committed = True
                        fut._commit_ts = result.commit_ts
                else:
                    cross_aborts += 1
                    pa_append(req.start_ts)
                    if fut is not None:
                        fut._reason = result.reason
                        fut._row = result.conflict_row
                if fut is not None:
                    fut._result = result
                if res_append is not None:
                    res_append(result)
            flush_run()
        finally:
            # As in the monolithic engines: even if an error escapes
            # mid-batch (e.g. a timestamp-reservation WAL failure), the
            # work already applied stays counted.
            st.commits += commits + ro_commits
            st.read_only_commits += ro_commits
            st.aborts += conflict_aborts + client_aborts
            st.conflict_aborts += conflict_aborts
            st.rows_updated += rows_updated
            self.single_partition_commits += single_commits
        rows_checked = (
            sum(p.stats.rows_checked for p in partitions) - checked_at_start
        )
        return (
            commits + ro_commits + cross_commits,
            conflict_aborts + client_aborts + cross_aborts,
            rows_checked,
            rows_updated + cross_rows_updated,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def last_commit(self, row: RowKey) -> Optional[int]:
        return self.partitions[self.partition_of(row)].last_commit(row)

    @property
    def timestamp_oracle(self) -> TimestampOracle:
        return self._tso

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def cross_partition_fraction(self) -> float:
        total = self.cross_partition_commits + self.single_partition_commits
        return self.cross_partition_commits / total if total else 0.0

    def close(self) -> None:
        self._closed = True
