"""Core contribution: write-snapshot isolation and the lock-free oracle.

Public surface:

* :class:`CommitEngine`, :func:`make_engine` — the protocol-agnostic
  engine contract the serving stack depends on.
* :class:`IsolationLevel`, :func:`create_system` — one-call assembly.
* :class:`TransactionManager`, :class:`Transaction` — the client API.
* :class:`SnapshotIsolationOracle` (Alg. 1),
  :class:`WriteSnapshotIsolationOracle` (Alg. 2),
  :class:`BoundedStatusOracle` (Alg. 3), :func:`make_oracle`.
* :class:`TimestampOracle` — batched-durability timestamp server.
* :class:`CommitTable`, :class:`ClientCommitView` — commit-state replicas.
* :class:`LastCommitStore` backends — :class:`ArrayLastCommit` /
  :class:`BoundedArrayLastCommit` over :class:`KeyInterner` dense ids,
  selected per oracle via ``lastcommit=`` or globally via
  ``REPRO_LASTCOMMIT`` (:func:`make_lastcommit`).
* :class:`PartitionedOracle` with pluggable
  :class:`~repro.core.executor.PartitionExecutor` round drivers
  (:class:`SerialExecutor` / :class:`ParallelExecutor`) and
  :class:`~repro.core.sharding.ShardingPolicy` placement
  (:class:`HashSharding` / :class:`RangeSharding` /
  :class:`DirectorySharding`).
* conflict predicates — the paper's §2/§4 definitions as functions.
* the exception hierarchy in :mod:`repro.core.errors`.
"""

from repro.core.analytics import (
    AnalyticalCommitRequest,
    AnalyticalOracle,
    RangeReadSet,
    RowRange,
)
from repro.core.commit_table import ClientCommitView, CommitTable
from repro.core.engine import ENGINE_KINDS, CommitEngine, make_engine
from repro.core.conflicts import (
    TxnFootprint,
    conflicts_under,
    rw_conflict,
    rw_spatial_overlap,
    rw_temporal_overlap,
    spatial_overlap,
    temporal_overlap,
    ww_conflict,
)
from repro.core.errors import (
    AbortException,
    ConflictAbort,
    DecisionPending,
    InvalidTransactionState,
    LockConflict,
    OracleClosed,
    RecoveryError,
    TmaxAbort,
    TransactionError,
    WALError,
)
from repro.core.executor import (
    ParallelExecutor,
    PartitionExecutor,
    SerialExecutor,
    make_executor,
)
from repro.core.isolation import IsolationLevel, TransactionalSystem, create_system
from repro.core.keyspace import KeyInterner
from repro.core.lastcommit import (
    ArrayLastCommit,
    BoundedArrayLastCommit,
    LastCommitStore,
    make_lastcommit,
)
from repro.core.partitioned import BatchRounds, PartitionedOracle
from repro.core.sharding import (
    DirectorySharding,
    HashSharding,
    RangeSharding,
    ShardingPolicy,
    make_sharding,
    stable_hash,
)
from repro.core.status_oracle import (
    BoundedStatusOracle,
    CommitRequest,
    CommitResult,
    OracleStats,
    SnapshotIsolationOracle,
    StatusOracle,
    WriteSnapshotIsolationOracle,
    make_oracle,
)
from repro.core.timestamps import TimestampOracle
from repro.core.transaction import Transaction, TransactionManager, TxnState

__all__ = [
    "CommitEngine",
    "make_engine",
    "ENGINE_KINDS",
    "AnalyticalOracle",
    "AnalyticalCommitRequest",
    "RangeReadSet",
    "RowRange",
    "IsolationLevel",
    "TransactionalSystem",
    "create_system",
    "TransactionManager",
    "Transaction",
    "TxnState",
    "StatusOracle",
    "SnapshotIsolationOracle",
    "WriteSnapshotIsolationOracle",
    "BoundedStatusOracle",
    "make_oracle",
    "CommitRequest",
    "CommitResult",
    "OracleStats",
    "KeyInterner",
    "LastCommitStore",
    "ArrayLastCommit",
    "BoundedArrayLastCommit",
    "make_lastcommit",
    "PartitionedOracle",
    "BatchRounds",
    "PartitionExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "ShardingPolicy",
    "HashSharding",
    "RangeSharding",
    "DirectorySharding",
    "make_sharding",
    "stable_hash",
    "TimestampOracle",
    "CommitTable",
    "ClientCommitView",
    "TxnFootprint",
    "ww_conflict",
    "rw_conflict",
    "spatial_overlap",
    "temporal_overlap",
    "rw_spatial_overlap",
    "rw_temporal_overlap",
    "conflicts_under",
    "TransactionError",
    "AbortException",
    "ConflictAbort",
    "DecisionPending",
    "TmaxAbort",
    "LockConflict",
    "InvalidTransactionState",
    "OracleClosed",
    "RecoveryError",
    "WALError",
]
