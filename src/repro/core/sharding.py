"""Deterministic row hashing for shard and block routing.

Python's builtin ``hash()`` is salted per process for ``str``/``bytes``
(``PYTHONHASHSEED``), so any placement derived from it — which conflict
partition owns a row, which cache block a row falls into — silently
changes from one process to the next.  For a single in-process oracle
that is merely a reproducibility nuisance; for the distributed
deployment §6.3 footnote 6 envisions it is a correctness bug: two
frontends hashing the same row to *different* partitions would each
consult a ``lastCommit`` shard that never saw the other's commits.

:func:`stable_hash` is the process-independent replacement used by
:class:`~repro.core.partitioned.PartitionedOracle` and the HBase-model
block cache.  Properties:

* deterministic across processes, interpreters and ``PYTHONHASHSEED``
  values (pinned by ``tests/core/test_sharding.py`` via subprocesses);
* **equal keys hash equal**, numeric cross-type equality included:
  ``2 == 2.0 == Decimal(2)`` must all route to the same shard, exactly
  as builtin ``hash()`` guarantees — otherwise a conflict between two
  transactions writing the "same" row under different numeric types
  would be checked against different ``lastCommit`` shards and missed.
  Numbers therefore defer to Python's *numeric* hash, which is
  cross-type consistent and never salted; small non-negative integers
  (below CPython's numeric-hash modulus, :data:`INT_IDENTITY_BOUND`)
  are their own hash, so integer keyspaces shard exactly like
  ``row % num_partitions`` and benchmark workloads can *construct* a
  row for a target shard (see ``make_aligned_requests``);
* strings and bytes go through ``zlib.crc32`` over their UTF-8 bytes —
  cheap, stable, and well-mixed for modulo placement; tuples hash
  recursively over their elements (so ``(1,)`` and ``(1.0,)`` — equal
  keys — share a shard, like every other equal pair);
* any other hashable key falls back to CRC-32 of its ``repr()``, which
  is canonical for the scalar keys used in this repository (containers
  whose ``repr`` order is itself salt-dependent, e.g. a frozenset of
  strings, should not be used as row keys).

Callers that need a different placement (locality-aware sharding, a
keyspace already pre-hashed) pass their own ``hash_fn=`` — or, since the
pluggable-executor PR, a :class:`ShardingPolicy`:

* :class:`HashSharding` — ``stable_hash`` (or a custom ``hash_fn``)
  modulo the partition count: uniform spread, zero locality.  The
  default, and exactly what the bare ``hash_fn=`` hook always did.
* :class:`RangeSharding` — contiguous key bands (HBase's
  consecutive-row regions): integer row ``r`` in a declared keyspace
  lands on partition ``r * N // keyspace``, so co-accessed *nearby*
  keys share a partition and range scans stay aligned.
* :class:`DirectorySharding` — an explicit affinity map pinning
  configured key groups to one partition each (unmapped keys fall back
  to another policy).  This is the policy that converts a group-local
  workload's cross-partition traffic into aligned traffic outright —
  benchmark E21 measures ``cross_partition_fraction()`` collapsing to
  ~0 under it.

Every policy must be deterministic across processes (the subprocess
pins in ``tests/core/test_sharding.py`` cover all three): placement is
*routing state* shared by every frontend and replica, exactly like
``stable_hash`` itself.  Policies are placement only — mechanism (the
protocol rounds) never changes with the policy, which is the narrow
policy/mechanism interface the MetaSys line of work argues for.
"""

from __future__ import annotations

import numbers
import zlib
from typing import Callable, Dict, Hashable, Iterable, Mapping, Optional, Union

__all__ = [
    "INT_IDENTITY_BOUND",
    "stable_hash",
    "ShardingPolicy",
    "HashSharding",
    "RangeSharding",
    "DirectorySharding",
    "make_sharding",
]

#: CPython's numeric-hash modulus (2**61 - 1): below it, a non-negative
#: int is its own ``hash()``, so identity-hashing stays consistent with
#: the numeric hash every other number type reduces to.
INT_IDENTITY_BOUND = (1 << 61) - 1


def stable_hash(row: Hashable) -> int:
    """A non-negative, process-independent hash of a row key."""
    tp = type(row)
    if tp is int:
        if 0 <= row < INT_IDENTITY_BOUND:
            return row
        # Huge or negative ints join the numeric-hash rule below so
        # they agree with any equal float/Decimal/Fraction key.
        h = hash(row)  # lint: skip=no-builtin-hash -- numeric hash is unsalted
        return h if h >= 0 else -h
    if tp is str:
        return zlib.crc32(row.encode("utf-8"))
    if tp is bytes:
        return zlib.crc32(row)
    if isinstance(row, numbers.Number):
        # Python's numeric hash is unsalted and equal across numeric
        # types for equal values (2 == 2.0 == Decimal(2) == Fraction(2)
        # share one hash) — the invariant shard routing depends on.
        h = hash(row)  # lint: skip=no-builtin-hash -- numeric hash is unsalted
        return h if h >= 0 else -h
    if isinstance(row, tuple):
        # Recurse so equal tuples hash equal even when elements differ
        # in numeric type — (1,) == (1.0,) must share a shard; a repr()
        # of the tuple would split them.  Every stable_hash result fits
        # 8 bytes (crc32 < 2**32, numeric hashes < 2**61), so the
        # element hashes concatenate into a canonical byte string.
        return zlib.crc32(
            b"".join(stable_hash(item).to_bytes(8, "little") for item in row)
        )
    if isinstance(row, str):
        return zlib.crc32(row.encode("utf-8"))
    if isinstance(row, bytes):
        return zlib.crc32(row)
    return zlib.crc32(repr(row).encode("utf-8"))


# ----------------------------------------------------------------------
# sharding policies: pluggable placement over the same protocol rounds
# ----------------------------------------------------------------------

class ShardingPolicy:
    """Row-placement policy for partitioned deployments.

    Two duties, both of which must be process-independent:

    * :meth:`partition_of` — which conflict partition owns a row (the
      :class:`~repro.core.partitioned.PartitionedOracle` routing rule).
      Equal keys must land on the same partition (see
      :func:`stable_hash`'s numeric cross-type invariant).
    * :meth:`placement_hash` — a stable non-negative placement value for
      bucket-style consumers (the HBase-model
      :class:`~repro.hbase.region_server.BlockCache` derives block ids
      from it).  Defaults to :func:`stable_hash`.
    """

    #: short tag used in tables and factory specs.
    name = "base"

    def partition_of(self, row: Hashable, num_partitions: int) -> int:
        raise NotImplementedError

    def placement_hash(self, row: Hashable) -> int:
        return stable_hash(row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class HashSharding(ShardingPolicy):
    """``hash_fn(row) % num_partitions`` — uniform, locality-blind.

    The default placement, identical to the bare ``hash_fn=`` hook it
    generalizes: with the default :func:`stable_hash`, integer keyspaces
    shard exactly like ``row % num_partitions``.
    """

    name = "hash"

    def __init__(self, hash_fn: Optional[Callable[[Hashable], int]] = None) -> None:
        self._hash = hash_fn or stable_hash

    @property
    def hash_fn(self) -> Callable[[Hashable], int]:
        return self._hash

    def partition_of(self, row: Hashable, num_partitions: int) -> int:
        return self._hash(row) % num_partitions

    def placement_hash(self, row: Hashable) -> int:
        return self._hash(row)


class RangeSharding(ShardingPolicy):
    """Contiguous key bands over a declared integer keyspace.

    Integer row ``r`` with ``0 <= r < keyspace`` lands on partition
    ``r * N // keyspace`` — N equal bands in key order, so nearby keys
    (HBase's consecutive-row regions, range scans, group-local YCSB
    keys drawn from one contiguous group) share a partition.  Rows at
    or above the keyspace clamp into the last band (insert frontiers
    keep appending locally); non-integer rows route through
    ``fallback`` (default :class:`HashSharding`).  Placement hashes are
    the identity for non-negative integers, so block placement keeps
    consecutive rows in one block.
    """

    name = "range"

    def __init__(
        self, keyspace: int, fallback: Optional[ShardingPolicy] = None
    ) -> None:
        if keyspace < 1:
            raise ValueError("keyspace must be >= 1")
        self._keyspace = keyspace
        self._fallback = fallback or HashSharding()

    @property
    def keyspace(self) -> int:
        return self._keyspace

    def partition_of(self, row: Hashable, num_partitions: int) -> int:
        # bool is an int subclass and equals 0/1 — the numeric-equality
        # invariant routes it like the equal integer automatically.
        if type(row) is not int and isinstance(row, numbers.Number):
            # Equal keys must share a partition across numeric types
            # (10 == 10.0 == Decimal(10) is ONE row key — the stable_hash
            # invariant): an integral-valued number takes the int band
            # rule below; everything else (non-integral, nan/inf,
            # complex) falls back, where stable_hash keeps equal keys
            # together.
            try:
                as_int = int(row)
            except (TypeError, ValueError, OverflowError):
                return self._fallback.partition_of(row, num_partitions)
            if as_int != row:
                return self._fallback.partition_of(row, num_partitions)
            row = as_int
        if isinstance(row, int) and row >= 0:
            if row >= self._keyspace:
                return num_partitions - 1
            return row * num_partitions // self._keyspace
        return self._fallback.partition_of(row, num_partitions)

    def placement_hash(self, row: Hashable) -> int:
        if isinstance(row, int) and row >= 0:
            return row
        return self._fallback.placement_hash(row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangeSharding(keyspace={self._keyspace})"


class DirectorySharding(ShardingPolicy):
    """An explicit affinity directory: configured keys pin to a chosen
    partition; everything else falls back to another policy.

    The locality-aware endpoint of the hierarchy: a workload whose
    transactions stay inside known key *groups* (one user's rows, one
    tenant's schema) pins each group to one partition and its traffic
    becomes single-partition outright — the cross-partition fraction
    collapses to the unmapped remainder (benchmark E21's second bar).
    The directory stores partition ids, applied modulo the live
    partition count so one directory serves any deployment size that
    preserves group identity.
    """

    name = "directory"

    def __init__(
        self,
        directory: Optional[Mapping[Hashable, int]] = None,
        fallback: Optional[ShardingPolicy] = None,
    ) -> None:
        self._directory: Dict[Hashable, int] = dict(directory or {})
        self._fallback = fallback or HashSharding()

    def pin(self, rows: Iterable[Hashable], partition: int) -> "DirectorySharding":
        """Pin a key group to one partition; returns self for chaining."""
        if partition < 0:
            raise ValueError("partition must be >= 0")
        for row in rows:
            self._directory[row] = partition
        return self

    @property
    def pinned_count(self) -> int:
        return len(self._directory)

    def partition_of(self, row: Hashable, num_partitions: int) -> int:
        pid = self._directory.get(row)
        if pid is None:
            return self._fallback.partition_of(row, num_partitions)
        return pid % num_partitions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirectorySharding(pinned={len(self._directory)})"


ShardingSpec = Union[None, str, ShardingPolicy]


def make_sharding(
    spec: ShardingSpec = None,
    keyspace: Optional[int] = None,
    directory: Optional[Mapping[Hashable, int]] = None,
) -> ShardingPolicy:
    """Resolve a sharding spec (``"hash"``/``"range"``/``"directory"``,
    an instance, or ``None`` for the default) to a policy.  ``range``
    needs ``keyspace``; ``directory`` starts from ``directory`` (or
    empty, to be filled via :meth:`DirectorySharding.pin`)."""
    if isinstance(spec, ShardingPolicy):
        return spec
    kind = (spec or HashSharding.name).strip().lower()
    if kind == HashSharding.name:
        return HashSharding()
    if kind == RangeSharding.name:
        if keyspace is None:
            raise ValueError("range sharding needs keyspace=")
        return RangeSharding(keyspace)
    if kind == DirectorySharding.name:
        return DirectorySharding(directory)
    raise ValueError(
        f"unknown sharding policy {spec!r}; "
        "choose 'hash', 'range' or 'directory'"
    )
