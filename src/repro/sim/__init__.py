"""Discrete-event simulation of the paper's testbed (§6).

Public surface:

* :class:`Engine`, :class:`Resource`, :class:`Event` — the simulation core.
* :class:`LatencyModel` / :func:`paper_latency_model` — §6.2-calibrated
  timing constants.
* :class:`OracleBenchSim` / :func:`sweep_clients` — Figure 5.
* :class:`ClusterSim` / :func:`sweep_cluster` — Figures 6–10.
* :func:`run_microbench` — the §6.2 latency-breakdown table.
"""

from repro.sim.cluster_sim import (
    PAPER_CLIENT_SWEEP,
    ClusterSim,
    ClusterSimResult,
    sweep_cluster,
)
from repro.sim.engine import Engine, Event, Resource
from repro.sim.frontend_sim import (
    GroupCommitSim,
    GroupCommitSimResult,
    sweep_group_commit,
)
from repro.sim.latency import LatencyModel, paper_latency_model
from repro.sim.microbench import MicrobenchResult, run_microbench
from repro.sim.oracle_bench import (
    OUTSTANDING_PER_CLIENT,
    OracleBenchResult,
    OracleBenchSim,
    sweep_clients,
)

__all__ = [
    "Engine",
    "Event",
    "Resource",
    "LatencyModel",
    "paper_latency_model",
    "OracleBenchSim",
    "OracleBenchResult",
    "sweep_clients",
    "OUTSTANDING_PER_CLIENT",
    "ClusterSim",
    "ClusterSimResult",
    "sweep_cluster",
    "PAPER_CLIENT_SWEEP",
    "MicrobenchResult",
    "run_microbench",
    "GroupCommitSim",
    "GroupCommitSimResult",
    "sweep_group_commit",
]
