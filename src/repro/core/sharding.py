"""Deterministic row hashing for shard and block routing.

Python's builtin ``hash()`` is salted per process for ``str``/``bytes``
(``PYTHONHASHSEED``), so any placement derived from it — which conflict
partition owns a row, which cache block a row falls into — silently
changes from one process to the next.  For a single in-process oracle
that is merely a reproducibility nuisance; for the distributed
deployment §6.3 footnote 6 envisions it is a correctness bug: two
frontends hashing the same row to *different* partitions would each
consult a ``lastCommit`` shard that never saw the other's commits.

:func:`stable_hash` is the process-independent replacement used by
:class:`~repro.core.partitioned.PartitionedOracle` and the HBase-model
block cache.  Properties:

* deterministic across processes, interpreters and ``PYTHONHASHSEED``
  values (pinned by ``tests/core/test_sharding.py`` via subprocesses);
* **equal keys hash equal**, numeric cross-type equality included:
  ``2 == 2.0 == Decimal(2)`` must all route to the same shard, exactly
  as builtin ``hash()`` guarantees — otherwise a conflict between two
  transactions writing the "same" row under different numeric types
  would be checked against different ``lastCommit`` shards and missed.
  Numbers therefore defer to Python's *numeric* hash, which is
  cross-type consistent and never salted; small non-negative integers
  (below CPython's numeric-hash modulus, :data:`INT_IDENTITY_BOUND`)
  are their own hash, so integer keyspaces shard exactly like
  ``row % num_partitions`` and benchmark workloads can *construct* a
  row for a target shard (see ``make_aligned_requests``);
* strings and bytes go through ``zlib.crc32`` over their UTF-8 bytes —
  cheap, stable, and well-mixed for modulo placement; tuples hash
  recursively over their elements (so ``(1,)`` and ``(1.0,)`` — equal
  keys — share a shard, like every other equal pair);
* any other hashable key falls back to CRC-32 of its ``repr()``, which
  is canonical for the scalar keys used in this repository (containers
  whose ``repr`` order is itself salt-dependent, e.g. a frozenset of
  strings, should not be used as row keys).

Callers that need a different placement (locality-aware sharding, a
keyspace already pre-hashed) pass their own ``hash_fn=`` instead.
"""

from __future__ import annotations

import numbers
import zlib
from typing import Hashable

__all__ = ["INT_IDENTITY_BOUND", "stable_hash"]

#: CPython's numeric-hash modulus (2**61 - 1): below it, a non-negative
#: int is its own ``hash()``, so identity-hashing stays consistent with
#: the numeric hash every other number type reduces to.
INT_IDENTITY_BOUND = (1 << 61) - 1


def stable_hash(row: Hashable) -> int:
    """A non-negative, process-independent hash of a row key."""
    tp = type(row)
    if tp is int:
        if 0 <= row < INT_IDENTITY_BOUND:
            return row
        # Huge or negative ints join the numeric-hash rule below so
        # they agree with any equal float/Decimal/Fraction key.
        h = hash(row)
        return h if h >= 0 else -h
    if tp is str:
        return zlib.crc32(row.encode("utf-8"))
    if tp is bytes:
        return zlib.crc32(row)
    if isinstance(row, numbers.Number):
        # Python's numeric hash is unsalted and equal across numeric
        # types for equal values (2 == 2.0 == Decimal(2) == Fraction(2)
        # share one hash) — the invariant shard routing depends on.
        h = hash(row)
        return h if h >= 0 else -h
    if isinstance(row, tuple):
        # Recurse so equal tuples hash equal even when elements differ
        # in numeric type — (1,) == (1.0,) must share a shard; a repr()
        # of the tuple would split them.  Every stable_hash result fits
        # 8 bytes (crc32 < 2**32, numeric hashes < 2**61), so the
        # element hashes concatenate into a canonical byte string.
        return zlib.crc32(
            b"".join(stable_hash(item).to_bytes(8, "little") for item in row)
        )
    if isinstance(row, str):
        return zlib.crc32(row.encode("utf-8"))
    if isinstance(row, bytes):
        return zlib.crc32(row)
    return zlib.crc32(repr(row).encode("utf-8"))
