"""Unit tests for the snapshot-read skip rule (§2.2)."""

import pytest

from repro.core.commit_table import CommitTable
from repro.mvcc.snapshot import SnapshotReader
from repro.mvcc.store import MVCCStore
from repro.mvcc.version import TOMBSTONE


@pytest.fixture
def setup():
    store = MVCCStore()
    commits = CommitTable()
    reader = SnapshotReader(store, commits)
    return store, commits, reader


class TestSkipRules:
    def test_rule_i_uncommitted_skipped(self, setup):
        store, commits, reader = setup
        store.put("r", 5, "dirty")  # writer never committed
        assert reader.read("r", snapshot_ts=10) is None

    def test_rule_ii_aborted_skipped(self, setup):
        store, commits, reader = setup
        store.put("r", 5, "junk")
        commits.record_abort(5)
        assert reader.read("r", snapshot_ts=10) is None

    def test_rule_iii_late_commit_skipped(self, setup):
        store, commits, reader = setup
        store.put("r", 5, "future")
        commits.record_commit(5, 15)  # commits after our snapshot at 10
        assert reader.read("r", snapshot_ts=10) is None

    def test_committed_before_snapshot_visible(self, setup):
        store, commits, reader = setup
        store.put("r", 5, "visible")
        commits.record_commit(5, 8)
        version = reader.read("r", snapshot_ts=10)
        assert version is not None and version.value == "visible"

    def test_commit_at_snapshot_boundary_excluded(self, setup):
        # visibility is commit_ts < snapshot_ts, strictly.
        store, commits, reader = setup
        store.put("r", 5, "boundary")
        commits.record_commit(5, 10)
        assert reader.read("r", snapshot_ts=10) is None
        assert reader.read("r", snapshot_ts=11) is not None

    def test_own_write_always_visible(self, setup):
        store, commits, reader = setup
        store.put("r", 7, "mine")  # written by the reading txn itself
        version = reader.read("r", snapshot_ts=7, own_start_ts=7)
        assert version is not None and version.value == "mine"


class TestNewestVisibleWins:
    def test_skips_garbage_to_find_committed(self, setup):
        store, commits, reader = setup
        store.put("r", 1, "old")
        commits.record_commit(1, 2)
        store.put("r", 5, "aborted")
        commits.record_abort(5)
        store.put("r", 7, "uncommitted")
        version, skipped = reader.read_with_provenance("r", snapshot_ts=10)
        assert version.value == "old"
        assert skipped == 2

    def test_multiple_committed_newest_wins(self, setup):
        store, commits, reader = setup
        for start, commit in ((1, 2), (3, 4), (5, 6)):
            store.put("r", start, f"v{start}")
            commits.record_commit(start, commit)
        assert reader.read("r", snapshot_ts=10).value == "v5"
        assert reader.read("r", snapshot_ts=5).value == "v3"
        assert reader.read("r", snapshot_ts=3).value == "v1"


class TestReadValue:
    def test_tombstone_reads_as_default(self, setup):
        store, commits, reader = setup
        store.put("r", 1, "alive")
        commits.record_commit(1, 2)
        store.put("r", 3, TOMBSTONE)
        commits.record_commit(3, 4)
        assert reader.read_value("r", snapshot_ts=10) is None
        assert reader.read_value("r", snapshot_ts=10, default="gone") == "gone"
        # older snapshot still sees the live value
        assert reader.read_value("r", snapshot_ts=3) == "alive"

    def test_missing_row_default(self, setup):
        _, _, reader = setup
        assert reader.read_value("nope", snapshot_ts=5, default=0) == 0
