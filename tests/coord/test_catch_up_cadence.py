"""CatchUpCadence: clock-driven warm-standby poll scheduling.

PR 6 drove standby catch-up from a commit-count modulus, which couples
the poll rate to throughput (an idle deployment never polls, so the
takeover delta grows unbounded in *time*).  The cadence is a time
policy over an injected clock — wall clock in a deployment, the
simulator's clock in a simulation, a manual counter here — consulted by
:class:`~repro.coord.OracleReplicaSet` (its ``commit`` path) and
:class:`~repro.server.ha.ReplicatedFrontend` (its ``flush`` path).
"""

import pytest

from repro.coord import CatchUpCadence, OracleReplicaSet
from repro.core.status_oracle import CommitRequest
from repro.server import ReplicatedFrontend


def req(start, writes=(), reads=()):
    return CommitRequest(start, write_set=frozenset(writes), read_set=frozenset(reads))


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, dt=1.0):
        self.now += dt


class TestCadencePolicy:
    @pytest.mark.parametrize("interval", [0, -1, -0.5])
    def test_interval_must_be_positive(self, interval):
        with pytest.raises(ValueError, match="interval"):
            CatchUpCadence(interval, ManualClock())

    def test_not_due_before_interval(self):
        clock = ManualClock()
        cadence = CatchUpCadence(5.0, clock)
        assert not cadence.due()
        clock.tick(4.9)
        assert not cadence.due()

    def test_due_at_interval_then_rearms(self):
        clock = ManualClock()
        cadence = CatchUpCadence(5.0, clock)
        clock.tick(5.0)
        assert cadence.due()
        # Approving a poll consumes the elapsed interval.
        assert not cadence.due()
        clock.tick(5.0)
        assert cadence.due()

    def test_idle_clock_never_fires(self):
        cadence = CatchUpCadence(1.0, ManualClock())
        for _ in range(10):
            assert not cadence.due()

    def test_one_poll_per_elapsed_interval(self):
        # A long stall yields one (catch-all) poll, not a burst of
        # make-up polls.
        clock = ManualClock()
        cadence = CatchUpCadence(2.0, clock)
        clock.tick(20.0)
        assert cadence.due()
        assert not cadence.due()


class TestReplicaSetCadence:
    def _loaded(self, clock, interval=5.0, commits=20):
        rs = OracleReplicaSet(
            num_hosts=2,
            level="wsi",
            warm=True,
            catch_up_interval=interval,
            clock=clock,
        )
        for i in range(commits):
            clock.tick()
            ts = rs.begin()
            rs.commit(req(ts, writes={f"row{i}"}))
        return rs

    def test_commit_path_drives_standby_polls(self):
        clock = ManualClock()
        rs = self._loaded(clock)
        # 20 ticks / interval 5: the cadence came due 4 times on the
        # commit path — the standby tailed without any explicit
        # standby_catch_up() call from the driver.
        standby = next(h for h in rs.hosts if not h.is_active)
        assert standby.standby_records > 0

    def test_takeover_delta_bounded_by_cadence(self):
        clock = ManualClock()
        rs = self._loaded(clock, interval=5.0, commits=40)
        rs.wal.flush()
        rs.kill_active()
        # The promoted standby replays at most the records of one
        # cadence interval (plus the final unflushed tail).
        assert rs.active_host().recovered_records <= 5 + 1

    def test_idle_clock_means_no_polls(self):
        clock = ManualClock()
        rs = OracleReplicaSet(
            num_hosts=2, warm=True, catch_up_interval=5.0, clock=clock
        )
        for i in range(20):  # clock never ticks
            ts = rs.begin()
            rs.commit(req(ts, writes={f"row{i}"}))
        standby = next(h for h in rs.hosts if not h.is_active)
        assert standby.standby_records == 0

    def test_no_cadence_means_manual_polls_only(self):
        rs = OracleReplicaSet(num_hosts=2, warm=True)
        for i in range(10):
            ts = rs.begin()
            rs.commit(req(ts, writes={f"row{i}"}))
        standby = next(h for h in rs.hosts if not h.is_active)
        assert standby.standby_records == 0
        rs.wal.flush()
        assert rs.standby_catch_up() > 0


class TestReplicatedFrontendCadence:
    def test_flush_path_drives_standby_polls(self):
        clock = ManualClock()
        rf = ReplicatedFrontend(
            num_hosts=2,
            max_batch=4,
            warm=True,
            catch_up_interval=5.0,
            clock=clock,
        )
        for i in range(20):
            clock.tick()
            rf.submit_commit(req(rf.begin(), writes={f"row{i}"}))
            rf.flush()
        standby = next(h for h in rf.hosts if not h.is_active)
        assert standby.standby_records > 0
        # ... and the tier still decides correctly across a failover.
        rf.kill_active()
        future = rf.submit_commit(req(rf.begin(), writes={"after"}))
        rf.flush()
        assert future.outcome() == "committed"
