"""Unit tests for the isolation-level registry and system factory."""

import pytest

from repro.core.isolation import IsolationLevel, create_system
from repro.core.status_oracle import (
    BoundedStatusOracle,
    SnapshotIsolationOracle,
    WriteSnapshotIsolationOracle,
)


class TestIsolationLevel:
    def test_values(self):
        assert IsolationLevel.SNAPSHOT.value == "si"
        assert IsolationLevel.WRITE_SNAPSHOT.value == "wsi"

    def test_serializability_flags(self):
        # §3.1 and Theorem 1.
        assert not IsolationLevel.SNAPSHOT.is_serializable
        assert IsolationLevel.WRITE_SNAPSHOT.is_serializable

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("si", IsolationLevel.SNAPSHOT),
            ("SI", IsolationLevel.SNAPSHOT),
            ("snapshot", IsolationLevel.SNAPSHOT),
            ("snapshot-isolation", IsolationLevel.SNAPSHOT),
            ("wsi", IsolationLevel.WRITE_SNAPSHOT),
            ("write-snapshot", IsolationLevel.WRITE_SNAPSHOT),
            ("serializable", IsolationLevel.WRITE_SNAPSHOT),
        ],
    )
    def test_parse_aliases(self, alias, expected):
        assert IsolationLevel.parse(alias) is expected

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            IsolationLevel.parse("read-uncommitted")


class TestCreateSystem:
    def test_default_is_wsi(self):
        system = create_system()
        assert isinstance(system.oracle, WriteSnapshotIsolationOracle)

    def test_si_system(self):
        system = create_system("si")
        assert isinstance(system.oracle, SnapshotIsolationOracle)

    def test_enum_accepted(self):
        system = create_system(IsolationLevel.SNAPSHOT)
        assert system.level is IsolationLevel.SNAPSHOT

    def test_bounded_oracle(self):
        system = create_system("wsi", bounded=True, max_rows=128)
        assert isinstance(system.oracle, BoundedStatusOracle)
        assert system.oracle.max_rows == 128
        assert system.oracle.level == "wsi"

    def test_durable_system_has_wal(self):
        system = create_system("wsi", durable=True)
        assert system.wal is not None
        txn = system.manager.begin()
        txn.write("x", 1)
        txn.commit()
        system.wal.flush()
        records = list(system.wal.replay())
        assert any(r.kind == "commit" for r in records)

    def test_non_durable_system_has_no_wal(self):
        assert create_system("wsi").wal is None

    def test_systems_are_independent(self):
        a, b = create_system("wsi"), create_system("wsi")
        t = a.manager.begin()
        t.write("x", 1)
        t.commit()
        assert b.manager.begin().read("x") is None

    def test_manager_reports_level(self):
        assert create_system("si").manager.isolation_level == "si"
        assert create_system("wsi").manager.isolation_level == "wsi"


class TestCreateSystemReplicated:
    """``replicated=N`` assembles the HA serving tier behind the same
    transaction API (satellite of the CommitEngine refactor: the
    facade speaks the sequential engine surface)."""

    def test_transactions_run_unchanged(self):
        system = create_system("wsi", replicated=2)
        txn = system.manager.begin()
        txn.write("row1", "hello")
        txn.commit()
        assert system.manager.begin().read("row1") == "hello"

    def test_decisions_are_durable_on_the_shared_wal(self):
        system = create_system("wsi", replicated=2)
        txn = system.manager.begin()
        txn.write("x", 1)
        txn.commit()
        assert system.wal is system.frontend.wal
        assert any(r.kind == "group-commit" for r in system.wal.replay())

    def test_conflicts_still_abort(self):
        system = create_system("wsi", replicated=2)
        t1 = system.manager.begin()
        t2 = system.manager.begin()
        t1.read("x")
        t2.write("x", "t2")
        t1.write("y", "t1")
        t2.commit()
        with pytest.raises(Exception):
            t1.commit()  # WSI: t2 committed what t1 read

    def test_failover_is_transparent_to_transactions(self):
        system = create_system("wsi", replicated=3)
        before = system.manager.begin()
        before.write("pre", "v0")
        before.commit()
        system.frontend.kill_active()
        after = system.manager.begin()
        assert after.read("pre") == "v0"  # commit status survived
        after.write("post", "v1")
        after.commit()
        assert system.manager.begin().read("post") == "v1"
        assert system.frontend.failovers == 1

    def test_si_level_honoured_behind_the_tier(self):
        system = create_system("si", replicated=2)
        assert system.level is IsolationLevel.SNAPSHOT
        t1 = system.manager.begin()
        t2 = system.manager.begin()
        t1.write("x", "t1")
        t2.write("x", "t2")
        t1.commit()
        with pytest.raises(Exception):
            t2.commit()  # first-committer-wins on the write set

    def test_bounded_is_rejected(self):
        with pytest.raises(ValueError, match="bounded"):
            create_system("wsi", replicated=2, bounded=True)
