"""Tests for the partitioned status oracle (§6.3 footnote 6)."""

import random

import pytest

from repro.core import TransactionManager
from repro.core.errors import ConflictAbort, OracleClosed
from repro.core.partitioned import PartitionedOracle
from repro.core.status_oracle import CommitRequest, make_oracle
from repro.mvcc.store import MVCCStore


def req(start, writes=(), reads=()):
    return CommitRequest(start, write_set=frozenset(writes), read_set=frozenset(reads))


class TestBasics:
    def test_single_partition_degenerates_to_monolith(self):
        oracle = PartitionedOracle(level="wsi", num_partitions=1)
        t1, t2 = oracle.begin(), oracle.begin()
        assert oracle.commit(req(t1, writes={"x"})).committed
        assert not oracle.commit(req(t2, writes={"y"}, reads={"x"})).committed

    def test_routing_is_stable(self):
        oracle = PartitionedOracle(num_partitions=4)
        assert oracle.partition_of("row") == oracle.partition_of("row")

    def test_timestamps_globally_ordered(self):
        oracle = PartitionedOracle(num_partitions=4)
        previous = 0
        for _ in range(20):
            ts = oracle.begin()
            assert ts > previous
            previous = ts

    def test_read_only_fast_path(self):
        oracle = PartitionedOracle(num_partitions=4)
        ts = oracle.begin()
        result = oracle.commit(req(ts))
        assert result.committed and result.commit_ts is None
        assert oracle.stats.read_only_commits == 1

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            PartitionedOracle(num_partitions=0)

    def test_close(self):
        oracle = PartitionedOracle()
        oracle.close()
        with pytest.raises(OracleClosed):
            oracle.begin()


class TestCrossPartition:
    def test_cross_partition_commit_updates_all_shares(self):
        oracle = PartitionedOracle(level="si", num_partitions=4)
        rows = [f"row{i}" for i in range(12)]  # spread over partitions
        ts = oracle.begin()
        result = oracle.commit(req(ts, writes=set(rows)))
        assert result.committed
        for row in rows:
            assert oracle.last_commit(row) == result.commit_ts
        assert oracle.cross_partition_commits == 1

    def test_cross_partition_conflict_in_any_share_aborts_all(self):
        oracle = PartitionedOracle(level="si", num_partitions=4)
        t1 = oracle.begin()
        t2 = oracle.begin()
        assert oracle.commit(req(t1, writes={"hot"})).committed
        # t2 writes many rows, one of them conflicting
        result = oracle.commit(req(t2, writes={"hot", "a", "b", "c", "d"}))
        assert not result.committed
        # no partial installation: the non-conflicting rows stay clean
        for row in ("a", "b", "c", "d"):
            assert oracle.last_commit(row) is None

    def test_counters(self):
        oracle = PartitionedOracle(level="si", num_partitions=8)
        ts = oracle.begin()
        oracle.commit(req(ts, writes={"one-row"}))
        ts = oracle.begin()
        oracle.commit(req(ts, writes={f"r{i}" for i in range(10)}))
        assert oracle.single_partition_commits == 1
        assert oracle.cross_partition_commits == 1
        assert 0 < oracle.cross_partition_fraction() < 1

    def test_fraction_counts_aborted_cross_decisions(self):
        # A heavily-conflicting cross-partition workload used to report
        # a misleading ~0 fraction because only *commits* were counted;
        # the fraction is over decisions (commits + conflict aborts).
        oracle = PartitionedOracle(level="si", num_partitions=4)
        rows = set(range(8))  # spans all four partitions
        ts = oracle.begin()
        assert oracle.commit(req(ts, writes=rows)).committed
        stale = [oracle.begin() for _ in range(4)]
        ts = oracle.begin()
        assert oracle.commit(req(ts, writes=rows)).committed
        for start in stale:  # all conflict, all cross-partition
            result = oracle.commit(req(start, writes=rows))
            assert not result.committed
        assert oracle.cross_partition_commits == 2
        assert oracle.cross_partition_aborts == 4
        assert oracle.cross_partition_fraction() == 1.0

    def test_fraction_counts_single_partition_aborts(self):
        oracle = PartitionedOracle(level="si", num_partitions=4)
        ts = oracle.begin()
        stale = oracle.begin()
        assert oracle.commit(req(ts, writes={0})).committed
        assert not oracle.commit(req(stale, writes={0})).committed
        assert oracle.single_partition_aborts == 1
        assert oracle.cross_partition_fraction() == 0.0

    def test_fraction_ignores_read_only_and_client_aborts(self):
        oracle = PartitionedOracle(level="wsi", num_partitions=4)
        oracle.commit(req(oracle.begin(), reads={"a", "b"}))
        oracle.abort(oracle.begin())
        assert oracle.cross_partition_fraction() == 0.0

    def test_fraction_same_through_decide_batch(self):
        def drive(oracle):
            starts = [oracle.begin() for _ in range(6)]
            items = [
                req(starts[0], writes={0, 1}),        # cross commit
                req(starts[1], writes={0}),           # single commit
                req(starts[2], writes={0, 1}),        # cross...
                req(starts[3], writes={0}),           # single...
                req(starts[4]),                       # read-only
                starts[5],                            # client abort
            ]
            return items

        seq = PartitionedOracle(level="si", num_partitions=2)
        for item in drive(seq):
            if isinstance(item, int):
                seq.abort(item)
            else:
                seq.commit(item)
        batched = PartitionedOracle(level="si", num_partitions=2)
        batched.decide_batch(drive(batched))
        assert (
            batched.cross_partition_fraction()
            == seq.cross_partition_fraction()
            == 0.5
        )


class TestBatchProtocolRounds:
    def test_one_round_per_involved_partition_per_flush(self):
        oracle = PartitionedOracle(level="si", num_partitions=4)
        starts = [oracle.begin() for _ in range(6)]
        # Three cross requests over partitions {0,1}, {1,2}, {2,3} plus
        # three single-partition requests on partition 0.
        items = [
            req(starts[0], writes={0, 1}),
            req(starts[1], writes={5, 6}),
            req(starts[2], writes={10, 11}),
            req(starts[3], writes={4}),
            req(starts[4], writes={8}),
            req(starts[5], writes={12}),
        ]
        oracle.decide_batch(items)
        rounds = oracle.last_flush_rounds
        assert rounds.flushes == 1
        assert rounds.cross_requests == 3
        assert rounds.single_requests == 3
        # Every partition was involved exactly once per phase — not once
        # per request.
        assert rounds.check_rounds == 4
        assert rounds.install_rounds == 4
        assert oracle.round_stats.check_rounds == 4

    def test_rounds_accumulate_across_flushes(self):
        oracle = PartitionedOracle(level="si", num_partitions=2)
        for _ in range(3):
            oracle.decide_batch([req(oracle.begin(), writes={0, 1})])
        assert oracle.round_stats.flushes == 3
        assert oracle.round_stats.check_rounds == 6
        assert oracle.round_stats.cross_requests == 3

    def test_per_request_fallback_reports_no_rounds(self):
        oracle = PartitionedOracle(
            level="si", num_partitions=2, batch_cross=False
        )
        oracle.decide_batch([req(oracle.begin(), writes={0, 1})])
        assert oracle.last_flush_rounds is None
        assert oracle.cross_partition_commits == 1


class TestDifferentialEquivalence:
    """The partitioned oracle must decide exactly like a monolithic one."""

    @pytest.mark.parametrize("level", ["si", "wsi"])
    @pytest.mark.parametrize("partitions", [2, 5])
    def test_same_decisions_as_monolith(self, level, partitions):
        rng = random.Random(71)
        mono = make_oracle(level)
        part = PartitionedOracle(level=level, num_partitions=partitions)
        rows = [f"r{i}" for i in range(15)]
        open_txns = []
        for _ in range(400):
            if open_txns and (rng.random() < 0.5 or len(open_txns) >= 6):
                m_ts, p_ts, wset, rset = open_txns.pop(
                    rng.randrange(len(open_txns))
                )
                m_res = mono.commit(req(m_ts, wset, rset))
                p_res = part.commit(req(p_ts, wset, rset))
                assert m_res.committed == p_res.committed, (wset, rset)
            else:
                wset = frozenset(rng.sample(rows, rng.randint(0, 3)))
                rset = frozenset(rng.sample(rows, rng.randint(0, 3)))
                open_txns.append((mono.begin(), part.begin(), wset, rset))

    def test_transaction_manager_compatible(self):
        oracle = PartitionedOracle(level="wsi", num_partitions=3)
        manager = TransactionManager(oracle, MVCCStore())
        t1 = manager.begin()
        t1.write("a", 1)
        t1.write("b", 2)
        t1.commit()
        t2 = manager.begin()
        assert t2.read("a") == 1
        t3 = manager.begin()
        t3.read("a")
        t3.write("c", 3)
        t4 = manager.begin()
        t4.write("a", 99)
        t4.commit()
        with pytest.raises(ConflictAbort):
            t3.commit()
