"""KeyInterner: dense ids, determinism across processes, the int lane.

The array ``lastCommit`` backend leans on two interner contracts: ids
assigned from *key sets* are identical in every process regardless of
``PYTHONHASHSEED`` (``intern_many`` orders unseen keys by
``stable_hash``), and the int-lane table can only ever make the
vectorised conflict scan *over*-report, never under-report (see
``repro.core.keyspace`` docstring).
"""

import os
import subprocess
import sys

import pytest

from repro.core.keyspace import INT_LANE_BOUND, KeyInterner


class TestInternerBasics:
    def test_ids_are_dense_and_one_based(self):
        interner = KeyInterner()
        assert len(interner) == 0
        assert interner.slot_capacity == 1  # the reserved sentinel slot
        ids = [interner.intern(key) for key in ("a", "b", "c")]
        assert ids == [1, 2, 3]
        assert len(interner) == 3
        assert interner.slot_capacity == 4

    def test_intern_is_idempotent(self):
        interner = KeyInterner()
        first = interner.intern("row")
        assert interner.intern("row") == first
        assert len(interner) == 1

    def test_reverse_lookup_and_membership(self):
        interner = KeyInterner()
        kid = interner.intern(("compound", 7))
        assert interner.key_of(kid) == ("compound", 7)
        assert ("compound", 7) in interner
        assert "missing" not in interner
        assert interner.get("missing") is None
        assert interner.id_of(("compound", 7)) == kid
        with pytest.raises(KeyError):
            interner.id_of("missing")

    def test_cross_type_equal_keys_share_a_slot(self):
        # Same collapse the dict backend performs: 2 == 2.0 -> one entry.
        interner = KeyInterner()
        assert interner.intern(2) == interner.intern(2.0)
        assert len(interner) == 1

    def test_intern_many_returns_ids_in_input_order(self):
        interner = KeyInterner()
        keys = [5, 3, 9, 3, 5]
        ids = interner.intern_many(keys)
        assert [interner.key_of(kid) for kid in ids] == keys
        assert len(interner) == 3

    def test_intern_many_assigns_unseen_in_stable_hash_order(self):
        # Two interners fed the same *set* through differently-ordered
        # iterables agree on every id — the frozenset-input contract.
        a, b = KeyInterner(), KeyInterner()
        a.intern_many(["x", "y", "z"])
        b.intern_many(["z", "x", "y"])
        assert all(a.id_of(k) == b.id_of(k) for k in "xyz")


class TestIntLane:
    def test_int_keys_populate_the_lane(self):
        interner = KeyInterner()
        kid = interner.intern(40)
        assert interner.int_lane_ok
        table = interner.int_table
        assert len(table) >= 41
        assert table[40] == kid
        assert table[0] == 0  # unseen routes to the reserved slot

    def test_non_int_key_disables_the_lane_for_good(self):
        interner = KeyInterner()
        interner.intern(1)
        interner.intern("row")
        assert not interner.int_lane_ok
        interner.intern(2)  # later ints don't resurrect it
        assert not interner.int_lane_ok

    def test_bool_is_not_int_for_the_lane(self):
        # bool would vector-cast to 0/1 and alias real int keys.
        interner = KeyInterner()
        interner.intern(True)
        assert not interner.int_lane_ok

    def test_negative_int_disables_the_lane(self):
        # Negative keys dodge the checked-max bounds guard (numpy fancy
        # indexing wraps them), so they must kill the lane.
        interner = KeyInterner()
        interner.intern(-3)
        assert not interner.int_lane_ok

    def test_huge_int_is_unrecorded_but_lane_survives(self):
        interner = KeyInterner()
        kid = interner.intern(INT_LANE_BOUND + 10)
        assert interner.int_lane_ok
        # Not in the table -- the store's bounds guard routes any scan
        # that could see this key to the scalar path instead.
        assert len(interner.int_table) <= INT_LANE_BOUND
        assert interner.id_of(INT_LANE_BOUND + 10) == kid

    def test_lane_table_growth_is_zero_filled(self):
        interner = KeyInterner()
        interner.intern(100)
        table = interner.int_table
        assert table[100] == 1
        assert all(table[i] == 0 for i in range(100))


def _interner_fingerprint():
    """Ids of a fixed key workload, interned via frozensets (whose str
    iteration order is hash-salt-dependent) — as one string."""
    interner = KeyInterner()
    interner.intern_many(frozenset({"alpha", "beta", "gamma", "delta"}))
    interner.intern_many(frozenset({"epsilon", "beta", 17, 4096, "zeta"}))
    interner.intern_many(frozenset({(1, "a"), (2, "b"), "alpha", 17}))
    keys = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta",
            17, 4096, (1, "a"), (2, "b")]
    return ",".join(str(interner.id_of(key)) for key in keys)


SUBPROCESS_SNIPPET = """
import sys
sys.path.insert(0, {src!r})
from tests.core.test_keyspace import _interner_fingerprint
sys.stdout.write(_interner_fingerprint())
"""


class TestInternerIsProcessIndependent:
    @pytest.mark.parametrize("hashseed", ["0", "1", "31337"])
    def test_same_ids_under_any_pythonhashseed(self, hashseed):
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        src = os.path.join(repo_root, "src")
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = repo_root + os.pathsep + src
        out = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_SNIPPET.format(src=src)],
            env=env,
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout == _interner_fingerprint()
