"""Wall-clock microbench: unbatched oracle vs. the group-commit frontend.

Unlike :mod:`repro.sim` (which measures *simulated* time), this harness
measures real CPU throughput of the conflict-detection + WAL path — the
thing the frontend's batching is supposed to speed up.  Benchmark E17
(``benchmarks/test_e17_group_commit.py``) sweeps batch sizes with it.

Two unbatched baselines are distinguished:

* ``durable_acks=True`` — the truly unbatched oracle: one WAL append
  *and one replicated ledger write* per decision, i.e. no group commit
  at any layer.  This is the configuration the frontend replaces and the
  one the ≥3x acceptance bar is measured against.
* ``durable_acks=False`` — the seed default, where the oracle still
  appends one WAL record per decision but the WAL's Appendix-A size
  trigger batches records into 1 KB ledger entries underneath.

Methodology notes, learned the hard way:

* start timestamps and commit requests are prepared *outside* the timed
  region, so both sides time exactly the commit-decision path (§6.3's
  critical section plus WAL work);
* ``gc.collect()`` runs before each timed region, and speedup claims use
  *paired* measurements (baseline and batched back-to-back, median of
  the per-pair ratios) — allocator drift and noisy-neighbour phases
  otherwise dominate the effect being measured;
* each configuration reports the best of ``repeats`` runs (the minimum
  is the least-noise estimate).
"""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.partitioned import PartitionedOracle
from repro.core.status_oracle import make_oracle
from repro.server.frontend import OracleFrontend
from repro.wal.bookkeeper import BookKeeperWAL
from repro.workload.generator import TransactionSpec, complex_workload

DEFAULT_NUM_REQUESTS = 30_000
DEFAULT_KEYSPACE = 2_000_000
DEFAULT_REPEATS = 3


@dataclass
class FrontendBenchResult:
    """Throughput of one configuration."""

    level: str
    mode: str  # "unbatched" | "unbatched-durable" | "batched" | "batched-futures"
    batch_size: int  # 1 for unbatched
    ops_per_sec: float
    commits: int
    aborts: int
    wal_records: int  # logical records appended (group record counts once)
    wal_ledger_entries: int  # physical ledger writes

    @property
    def us_per_op(self) -> float:
        return 1e6 / self.ops_per_sec if self.ops_per_sec else 0.0

    def as_row(self) -> tuple:
        return (
            self.level,
            self.mode,
            self.batch_size,
            f"{self.ops_per_sec:,.0f}",
            f"{self.us_per_op:.2f}",
            self.wal_records,
            self.wal_ledger_entries,
        )


def make_specs(
    num_requests: int = DEFAULT_NUM_REQUESTS,
    keyspace: int = DEFAULT_KEYSPACE,
    seed: int = 42,
) -> List[TransactionSpec]:
    """The paper's uniform complex workload, pre-drawn so request
    generation stays outside every timed region."""
    workload = complex_workload(distribution="uniform", keyspace=keyspace, seed=seed)
    return [workload.next_transaction() for _ in range(num_requests)]


def _run_unbatched(level: str, specs, durable_acks: bool, partitions: int):
    if partitions:
        oracle = PartitionedOracle(level=level, num_partitions=partitions)
        wal = None
    else:
        # batch_bytes=1 defeats the WAL's size trigger: every append
        # becomes its own replicated ledger write (per-record durability).
        wal = BookKeeperWAL(batch_bytes=1) if durable_acks else BookKeeperWAL()
        oracle = make_oracle(level, wal=wal)
    requests = [spec.commit_request(oracle.begin()) for spec in specs]
    commit = oracle.commit
    gc.collect()
    t0 = time.perf_counter()
    for request in requests:
        commit(request)
    dt = time.perf_counter() - t0
    return dt, oracle, wal


def _run_batched(
    level: str, specs, batch_size: int, partitions: int, use_futures: bool
):
    wal = BookKeeperWAL()
    if partitions:
        oracle = PartitionedOracle(level=level, num_partitions=partitions)
        frontend = OracleFrontend(oracle, max_batch=batch_size, wal=wal)
    else:
        oracle = make_oracle(level, wal=wal)
        frontend = OracleFrontend(oracle, max_batch=batch_size)
    requests = [spec.commit_request(frontend.begin()) for spec in specs]
    submit = frontend.submit_commit if use_futures else frontend.submit_commit_nowait
    gc.collect()
    t0 = time.perf_counter()
    for request in requests:
        submit(request)
    frontend.flush()
    dt = time.perf_counter() - t0
    return dt, oracle, wal


def bench_unbatched(
    level: str,
    specs: Sequence[TransactionSpec],
    repeats: int = DEFAULT_REPEATS,
    partitions: int = 0,
    durable_acks: bool = False,
) -> FrontendBenchResult:
    """One ``oracle.commit()`` per request (see module docstring for the
    ``durable_acks`` baseline distinction)."""
    best = None
    for _ in range(repeats):
        run = _run_unbatched(level, specs, durable_acks, partitions)
        if best is None or run[0] < best[0]:
            best = run
    dt, oracle, wal = best
    return FrontendBenchResult(
        level=level,
        mode="unbatched-durable" if durable_acks else "unbatched",
        batch_size=1,
        ops_per_sec=len(specs) / dt,
        commits=oracle.stats.commits,
        aborts=oracle.stats.aborts,
        wal_records=wal.record_count if wal else 0,
        wal_ledger_entries=wal.flush_count if wal else 0,
    )


def bench_batched(
    level: str,
    specs: Sequence[TransactionSpec],
    batch_size: int = 32,
    repeats: int = DEFAULT_REPEATS,
    partitions: int = 0,
    use_futures: bool = False,
) -> FrontendBenchResult:
    """The same requests through an :class:`OracleFrontend`: one critical
    section and one group-commit WAL record per ``batch_size`` requests.

    ``use_futures=False`` measures the callback-style ingest path
    (:meth:`~repro.server.OracleFrontend.submit_commit_nowait`, outcomes
    delivered per batch); ``use_futures=True`` allocates a
    :class:`~repro.server.CommitFuture` per request like the session API.
    """
    best = None
    for _ in range(repeats):
        run = _run_batched(level, specs, batch_size, partitions, use_futures)
        if best is None or run[0] < best[0]:
            best = run
    dt, oracle, wal = best
    return FrontendBenchResult(
        level=level,
        mode="batched-futures" if use_futures else "batched",
        batch_size=batch_size,
        ops_per_sec=len(specs) / dt,
        commits=oracle.stats.commits,
        aborts=oracle.stats.aborts,
        wal_records=wal.record_count,
        wal_ledger_entries=wal.flush_count,
    )


def paired_speedups(
    level: str = "wsi",
    batch_size: int = 32,
    pairs: int = 5,
    num_requests: int = DEFAULT_NUM_REQUESTS,
    keyspace: int = DEFAULT_KEYSPACE,
    seed: int = 42,
    use_futures: bool = False,
    durable_acks: bool = True,
) -> List[float]:
    """Back-to-back (unbatched, batched) measurement pairs.

    Returns one throughput ratio per pair; take the median for a
    noise-robust speedup estimate (a shared-machine slow phase hits both
    sides of a pair roughly equally, so ratios are far more stable than
    the absolute numbers).
    """
    specs = make_specs(num_requests, keyspace=keyspace, seed=seed)
    ratios = []
    for _ in range(pairs):
        dt_u, _, _ = _run_unbatched(level, specs, durable_acks, 0)
        dt_b, _, _ = _run_batched(level, specs, batch_size, 0, use_futures)
        ratios.append(dt_u / dt_b)
    return ratios


def median_speedup(ratios: Sequence[float]) -> float:
    return statistics.median(ratios)


def sweep_batch_sizes(
    level: str,
    batch_sizes: Sequence[int] = (8, 32, 128),
    num_requests: int = DEFAULT_NUM_REQUESTS,
    keyspace: int = DEFAULT_KEYSPACE,
    seed: int = 42,
    repeats: int = DEFAULT_REPEATS,
    partitions: int = 0,
    use_futures: bool = False,
) -> List[FrontendBenchResult]:
    """Unbatched baseline plus one batched run per batch size.

    A/B runs interleave: the unbatched baseline is re-measured after the
    batched sweep and the better of the two baselines kept, so slow drift
    within the process cannot flatter either side.
    """
    specs = make_specs(num_requests, keyspace=keyspace, seed=seed)
    baseline_a = bench_unbatched(level, specs, repeats=repeats, partitions=partitions)
    batched = [
        bench_batched(
            level,
            specs,
            batch_size=b,
            repeats=repeats,
            partitions=partitions,
            use_futures=use_futures,
        )
        for b in batch_sizes
    ]
    baseline_b = bench_unbatched(level, specs, repeats=repeats, partitions=partitions)
    baseline = (
        baseline_a if baseline_a.ops_per_sec >= baseline_b.ops_per_sec else baseline_b
    )
    return [baseline] + batched


def speedup(results: Sequence[FrontendBenchResult], batch_size: int) -> float:
    """Batched-over-unbatched throughput ratio for ``batch_size``."""
    baseline = next(r for r in results if r.mode.startswith("unbatched"))
    target = next(
        r
        for r in results
        if r.mode.startswith("batched") and r.batch_size == batch_size
    )
    return target.ops_per_sec / baseline.ops_per_sec
