"""The CommitEngine contract, pinned for every shipped engine.

Every protocol behind :func:`~repro.core.engine.make_engine` must
expose the same surface the serving stack consumes (see
:mod:`repro.core.engine`'s module docstring): timestamps, sequential
and batched decisions, WAL recovery hooks, stats, and the routing
hints.  These tests parametrize over ``ENGINE_KINDS`` so a new engine
kind is contract-checked by adding one string.

``REPRO_ENGINE`` is the CI axis: ``make check`` runs the fast suite
once per kind with the variable set, and :func:`make_engine`'s default
must honour it — pinned here with ``monkeypatch``.
"""

from __future__ import annotations

import pytest

from repro.core.engine import ENGINE_KINDS, CommitEngine, make_engine
from repro.core.errors import OracleClosed
from repro.core.status_oracle import CLIENT_ABORT, CommitRequest, StatusOracle
from repro.server import OracleFrontend
from repro.wal.bookkeeper import BookKeeperWAL


def req(start, writes=(), reads=()):
    return CommitRequest(
        start_ts=start,
        write_set=frozenset(writes),
        read_set=frozenset(reads),
    )


@pytest.fixture(params=ENGINE_KINDS)
def kind(request):
    return request.param


# ----------------------------------------------------------------------
# the factory and its REPRO_ENGINE axis
# ----------------------------------------------------------------------

class TestMakeEngine:
    def test_known_kinds_build_commit_engines(self, kind):
        engine = make_engine(kind)
        assert isinstance(engine, CommitEngine)

    def test_levels(self):
        assert make_engine("oracle").level == "wsi"
        assert make_engine("si").level == "si"
        assert make_engine("wsi").level == "wsi"
        assert make_engine("percolator").level == "percolator"
        assert make_engine("ssi").level == "ssi"

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown engine kind"):
            make_engine("spanner")

    def test_env_var_is_the_default_axis(self, monkeypatch, kind):
        monkeypatch.setenv("REPRO_ENGINE", kind)
        built = make_engine()
        reference = make_engine(kind)
        assert type(built) is type(reference)

    def test_default_without_env_is_the_oracle(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert isinstance(make_engine(), StatusOracle)
        assert make_engine().level == "wsi"

    def test_oracle_kind_accepts_level_kwarg(self):
        assert make_engine("oracle", level="si").level == "si"

    def test_non_oracle_kinds_ignore_level(self):
        # The HA/sim layers pass level= unconditionally; non-oracle
        # engines must swallow it instead of exploding.
        assert make_engine("percolator", level="wsi").level == "percolator"
        assert make_engine("ssi", level="wsi").level == "ssi"


# ----------------------------------------------------------------------
# the common decision surface
# ----------------------------------------------------------------------

class TestDecisionContract:
    def test_begin_is_strictly_increasing(self, kind):
        engine = make_engine(kind)
        starts = [engine.begin() for _ in range(100)]
        assert starts == sorted(set(starts))

    def test_commit_then_conflicting_commit(self, kind):
        engine = make_engine(kind)
        s1, s2 = engine.begin(), engine.begin()
        r1 = engine.commit(req(s1, writes=["x"]))
        assert r1.committed and r1.commit_ts > s1
        # read x as well: WSI detects the conflict via the read set,
        # the others via the write set.
        r2 = engine.commit(req(s2, writes=["x"], reads=["x"]))
        assert not r2.committed
        assert r2.conflict_row == "x" or r2.reason.startswith("ssi")
        assert engine.commit_table.is_committed(s1)
        assert engine.commit_table.is_aborted(s2)
        assert engine.stats.commits == 1
        assert engine.stats.aborts == 1
        assert engine.stats.conflict_aborts == 1

    def test_empty_footprint_commits_free(self, kind):
        engine = make_engine(kind)
        result = engine.commit(req(engine.begin()))
        assert result.committed and result.commit_ts is None
        assert engine.stats.read_only_commits == 1

    def test_client_abort(self, kind):
        engine = make_engine(kind)
        start = engine.begin()
        engine.abort(start)
        assert engine.commit_table.is_aborted(start)
        assert engine.stats.aborts == 1

    def test_decide_batch_matches_surface(self, kind):
        engine = make_engine(kind)
        starts = [engine.begin() for _ in range(4)]
        results = engine.decide_batch(
            [
                req(starts[0], writes=["a"]),
                req(starts[1], writes=["a"], reads=["a"]),  # loser
                starts[2],                     # client abort
                req(starts[3]),
            ]
        )
        assert [r.committed for r in results] == [True, False, False, True]
        assert results[2].reason == CLIENT_ABORT
        assert results[3].commit_ts is None

    def test_rows_to_check_policy_hook(self, kind):
        engine = make_engine(kind)
        request = req(10**6, writes=["w"], reads=["r"])
        rows = engine.rows_to_check(request)
        if engine.level == "wsi":
            assert rows == frozenset(["r"])
        else:  # si, percolator, ssi all validate the write set first
            assert rows == frozenset(["w"])

    def test_close_then_begin_raises(self, kind):
        engine = make_engine(kind)
        engine.close()
        with pytest.raises(OracleClosed):
            engine.begin()

    def test_observability_surface(self, kind):
        engine = make_engine(kind)
        assert isinstance(engine.level, str)
        assert isinstance(engine.naive_read_only, bool)
        assert engine.timestamp_oracle is not None
        assert engine.commit_table is not None
        lease = getattr(engine, "lease", None)
        if lease is not None:
            lo, hi = lease(16)
            assert hi - lo == 15


# ----------------------------------------------------------------------
# WAL recovery hooks: every engine is HA-capable
# ----------------------------------------------------------------------

class TestRecoveryContract:
    def test_group_record_replay_rebuilds_commit_table(self, kind):
        wal = BookKeeperWAL()
        engine = make_engine(kind, wal=wal)
        starts = [engine.begin() for _ in range(6)]
        engine.decide_batch(
            [
                req(starts[0], writes=["a"]),
                req(starts[1], writes=["b"]),
                req(starts[2], writes=["a"], reads=["a"]),  # loser
                starts[3],                     # client abort
                req(starts[4], writes=["c"], reads=["a"]),
            ]
        )
        wal.flush()

        recovered = make_engine(kind)
        replayed = recovered.recover_from(wal)
        assert replayed >= 1
        src, dst = engine.commit_table, recovered.commit_table
        assert sorted(dst.snapshot_entries()) == sorted(src.snapshot_entries())
        # No timestamp reuse: the recovered TSO starts above everything
        # it replayed.
        assert recovered.begin() > max(
            cts for kind_, _, cts in src.snapshot_entries() if cts is not None
        )

    def test_sequential_records_replay_too(self, kind):
        wal = BookKeeperWAL()
        engine = make_engine(kind, wal=wal)
        s1, s2 = engine.begin(), engine.begin()
        engine.commit(req(s1, writes=["x"]))
        engine.abort(s2)
        wal.flush()

        recovered = make_engine(kind)
        recovered.recover_from(wal)
        assert recovered.commit_table.is_committed(s1)
        assert recovered.commit_table.is_aborted(s2)


# ----------------------------------------------------------------------
# frontend integration: the stack is protocol-agnostic
# ----------------------------------------------------------------------

class TestFrontendIntegration:
    def test_batched_flush_settles_futures(self, kind):
        frontend = OracleFrontend(make_engine(kind), max_batch=8)
        f1 = frontend.submit_commit(req(frontend.begin(), writes=["x"]))
        f2 = frontend.submit_commit(
            req(frontend.begin(), writes=["x"], reads=["x"])
        )
        frontend.flush()
        assert f1.result().committed
        assert not f2.result().committed

    def test_read_only_fast_path_notifies_active_tracker(self):
        # SSI tracks active begins for its prune horizon; the frontend
        # must release a start it settles on the read-only fast path,
        # or the horizon pins and footprints leak (the E23 0.1x bug).
        engine = make_engine("ssi")
        frontend = OracleFrontend(engine, max_batch=4)
        start = frontend.begin()
        assert start in engine._active_starts
        frontend.submit_commit(req(start))
        assert start not in engine._active_starts

    def test_ssi_readers_are_not_fast_pathed(self):
        # naive_read_only=True: a reader *with a read set* must reach
        # the engine (it is an rw-edge source), so its future resolves
        # only at the flush.
        engine = make_engine("ssi")
        frontend = OracleFrontend(engine, max_batch=8)
        fut = frontend.submit_commit(
            req(frontend.begin(), reads=["x"])
        )
        assert not fut.done
        frontend.flush()
        assert fut.result().committed
