"""Unit tests for region routing and splitting."""

import pytest

from repro.mvcc.region import Region, RegionMap


class TestSingleRegion:
    def test_fresh_map_is_one_unbounded_region(self):
        rmap = RegionMap(num_servers=3)
        assert rmap.region_count == 1
        region = rmap.region_for(42)
        assert region.start is None and region.end is None

    def test_everything_routes_to_it(self):
        rmap = RegionMap()
        assert rmap.server_for(-100) == 0
        assert rmap.server_for(0) == 0
        assert rmap.server_for(10 ** 12) == 0


class TestSplitting:
    def test_split_creates_half_open_ranges(self):
        rmap = RegionMap(num_servers=2)
        rmap.split(100)
        left = rmap.region_for(99)
        right = rmap.region_for(100)
        assert left.end == 100
        assert right.start == 100
        assert left is not right

    def test_split_at_existing_boundary_is_noop(self):
        rmap = RegionMap()
        first = rmap.split(100)
        again = rmap.split(100)
        assert again is first
        assert rmap.region_count == 2

    def test_multiple_splits_route_correctly(self):
        rmap = RegionMap(num_servers=5)
        rmap.presplit_uniform([10, 20, 30])
        assert rmap.region_count == 4
        assert rmap.region_for(5).end == 10
        assert rmap.region_for(10).start == 10
        assert rmap.region_for(25).start == 20
        assert rmap.region_for(99).start == 30

    def test_invariants_after_many_splits(self):
        rmap = RegionMap(num_servers=4)
        rmap.presplit_uniform(list(range(0, 1000, 7)))
        rmap.check_invariants()

    def test_split_inside_bounded_region(self):
        rmap = RegionMap()
        rmap.presplit_uniform([10, 50])
        rmap.split(30)
        rmap.check_invariants()
        assert rmap.region_for(29).start == 10
        assert rmap.region_for(30).start == 30
        assert rmap.region_for(30).end == 50


class TestBalancing:
    def test_round_robin_assignment(self):
        rmap = RegionMap(num_servers=3)
        rmap.presplit_uniform([10, 20, 30, 40, 50])
        rmap.rebalance_round_robin()
        owners = [r.server_id for r in rmap.regions()]
        assert owners == [0, 1, 2, 0, 1, 2]

    def test_regions_on(self):
        rmap = RegionMap(num_servers=2)
        rmap.presplit_uniform([10, 20, 30])
        rmap.rebalance_round_robin()
        assert len(rmap.regions_on(0)) == 2
        assert len(rmap.regions_on(1)) == 2

    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            RegionMap(num_servers=0)


class TestRegionContains:
    def test_bounded(self):
        region = Region(0, 10, 20)
        assert region.contains(10)
        assert region.contains(19)
        assert not region.contains(20)
        assert not region.contains(9)

    def test_unbounded_ends(self):
        assert Region(0, None, 10).contains(-999)
        assert Region(0, 10, None).contains(10 ** 9)
