"""Full-cluster simulation: transactions over HBase (Figures 6–10).

Models the paper's testbed (§6): 25 region servers, one status oracle,
clients running one transaction at a time against a 20M-row keyspace.
Each client process:

1. requests a start timestamp (0.17 ms);
2. executes its operations sequentially — every read/write is routed to
   the region server owning the row (contiguous key ranges, as HBase
   splits tables), queues for one of the server's I/O slots, and is
   served with a cold (38.8 ms) or hot (1.1 ms) read time depending on
   that server's block cache, or the 1.13 ms write time;
3. submits the commit request to the status oracle — the *real*
   Algorithm 1/2 implementation — and waits for the WAL-backed ack.

Everything the paper observes emerges from this structure rather than
being scripted:

* uniform keys spread load evenly; the disk-bound servers saturate
  around a few hundred TPS and latency climbs with queueing (Fig. 6);
* zipfian keys (scrambled) concentrate traffic on hot rows that stay in
  block caches, so throughput is higher and latency lower (Fig. 7),
  while hot-row conflicts push abort rates to ~20 % (Fig. 8);
* zipfianLatest keys cluster on the newest region — one server becomes
  a hotspot and the system saturates at far fewer clients (Fig. 9), and
  because reads target recently *written* rows, WSI's read-write checks
  abort slightly more than SI's write-write checks (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.status_oracle import CommitRequest, StatusOracle, make_oracle
from repro.hbase.region_server import BlockCache
from repro.sim.engine import Engine, Resource
from repro.sim.latency import LatencyModel, paper_latency_model
from repro.workload.generator import TransactionSpec, WorkloadGenerator, mixed_workload

#: paper §6: 25 data servers.
DEFAULT_NUM_SERVERS = 25
#: concurrent I/O slots per region server (disks + handler threads);
#: calibrated so 320 clients saturate near the paper's 391 TPS (Fig. 6).
DEFAULT_IO_CONCURRENCY = 5
#: block-cache capacity per server, in 64-row blocks.  Small relative to
#: the 20M-row keyspace: the paper sizes the table so "the data does not
#: fit into the memory of data servers".
DEFAULT_CACHE_BLOCKS = 800


@dataclass
class ClusterSimResult:
    """One point of a latency-vs-throughput curve."""

    level: str
    distribution: str
    num_clients: int
    throughput_tps: float
    avg_latency_ms: float
    p99_latency_ms: float
    abort_rate: float
    commits: int
    aborts: int
    cache_hit_rate: float
    server_utilization_max: float
    server_utilization_mean: float

    def as_row(self) -> str:
        return (
            f"{self.level:>4} {self.distribution:<13} clients={self.num_clients:>4} "
            f"tput={self.throughput_tps:>7.1f} TPS lat={self.avg_latency_ms:>8.1f} ms "
            f"aborts={100 * self.abort_rate:>5.2f} % "
            f"hit={100 * self.cache_hit_rate:>5.1f} %"
        )


class SimRegionServer:
    """Region server model: an I/O resource plus a block cache."""

    def __init__(
        self,
        engine: Engine,
        server_id: int,
        io_concurrency: int,
        cache_blocks: int,
    ) -> None:
        self.server_id = server_id
        self.io = Resource(engine, capacity=io_concurrency, name=f"rs{server_id}")
        self.cache = BlockCache(cache_blocks)


class ClusterSim:
    """Closed-loop clients over the simulated cluster."""

    def __init__(
        self,
        level: str = "wsi",
        distribution: str = "uniform",
        num_clients: int = 5,
        num_servers: int = DEFAULT_NUM_SERVERS,
        io_concurrency: int = DEFAULT_IO_CONCURRENCY,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        keyspace: int = 20_000_000,
        latency: Optional[LatencyModel] = None,
        seed: int = 42,
        warmup: float = 2.0,
        measure: float = 20.0,
        zetan: Optional[float] = None,
    ) -> None:
        self.level = level
        self.distribution = distribution
        self.num_clients = num_clients
        self.keyspace = keyspace
        self.latency = latency or paper_latency_model(seed=seed)
        self.warmup = warmup
        self.measure = measure
        self.engine = Engine()
        self.oracle: StatusOracle = make_oracle(level)
        self.oracle_cs = Resource(self.engine, capacity=1, name="oracle-cs")
        self.servers = [
            SimRegionServer(self.engine, i, io_concurrency, cache_blocks)
            for i in range(num_servers)
        ]
        self.workload: WorkloadGenerator = mixed_workload(
            distribution=distribution, keyspace=keyspace, seed=seed, zetan=zetan
        )
        self._latencies: List[float] = []
        self._commits = 0
        self._aborts = 0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def server_for(self, row: int) -> SimRegionServer:
        """Contiguous range partitioning, like HBase regions."""
        idx = row * len(self.servers) // self.keyspace
        return self.servers[min(idx, len(self.servers) - 1)]

    # ------------------------------------------------------------------
    # client process
    # ------------------------------------------------------------------
    def _client(self):
        engine = self.engine
        lat = self.latency
        while True:
            started = engine.now
            spec = self.workload.next_transaction()
            # 1. start timestamp
            yield engine.timeout(lat.sample_start_timestamp())
            start_ts = self.oracle.begin()
            # 2. data operations, sequential like a simple client
            for op in spec.ops:
                server = self.server_for(op.row)
                yield server.io.acquire()
                if op.kind == "r":
                    hit = server.cache.touch(op.row)
                    service = lat.sample_read(hit)
                else:
                    service = lat.sample_write()
                yield engine.timeout(service)
                server.io.release()
                if op.kind == "w":
                    # writes land in the memstore: later reads are hot
                    server.cache.warm(op.row)
            # 3. commit through the status oracle
            committed = yield from self._commit(start_ts, spec)
            if engine.now >= self.warmup:
                self._latencies.append(engine.now - started)
                if committed:
                    self._commits += 1
                else:
                    self._aborts += 1

    def _commit(self, start_ts: int, spec: TransactionSpec):
        lat = self.latency
        engine = self.engine
        write_set = frozenset(spec.write_rows)
        if not write_set:
            # §5.1 read-only fast path: commit request carries empty sets
            # and is answered without conflict checking or WAL cost.
            request = CommitRequest(start_ts)
            result = self.oracle.commit(request)
            yield engine.timeout(lat.sample(lat.network_rtt))
            return result.committed
        request = CommitRequest(
            start_ts,
            write_set=write_set,
            read_set=frozenset(spec.read_rows),
        )
        yield self.oracle_cs.acquire()
        if self.level == "si":
            service = lat.oracle_service_si(len(request.write_set))
        else:
            service = lat.oracle_service_wsi(
                len(request.read_set), len(request.write_set)
            )
        yield engine.timeout(lat.sample(service))
        result = self.oracle.commit(request)
        self.oracle_cs.release()
        # WAL persistence dominates commit latency (4.1 ms in §6.2).
        yield engine.timeout(lat.sample(lat.commit_wal))
        return result.committed

    # ------------------------------------------------------------------
    def run(self) -> ClusterSimResult:
        for _ in range(self.num_clients):
            self.engine.process(self._client())
        horizon = self.warmup + self.measure
        self.engine.run(until=horizon)
        total = self._commits + self._aborts
        lat_ms = sorted(1000 * x for x in self._latencies)
        avg = sum(lat_ms) / len(lat_ms) if lat_ms else 0.0
        p99 = lat_ms[int(0.99 * (len(lat_ms) - 1))] if lat_ms else 0.0
        hits = sum(s.cache.hits for s in self.servers)
        misses = sum(s.cache.misses for s in self.servers)
        utils = [s.io.utilization() for s in self.servers]
        return ClusterSimResult(
            level=self.level,
            distribution=self.distribution,
            num_clients=self.num_clients,
            throughput_tps=total / self.measure if self.measure > 0 else 0.0,
            avg_latency_ms=avg,
            p99_latency_ms=p99,
            abort_rate=self._aborts / total if total else 0.0,
            commits=self._commits,
            aborts=self._aborts,
            cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            server_utilization_max=max(utils) if utils else 0.0,
            server_utilization_mean=sum(utils) / len(utils) if utils else 0.0,
        )


#: §6.4: "we increase the number of clients from 5 to 10, 20, 40, 80,
#: 160, 320, 640".
PAPER_CLIENT_SWEEP = [5, 10, 20, 40, 80, 160, 320, 640]


def sweep_cluster(
    level: str,
    distribution: str,
    client_counts: Optional[List[int]] = None,
    seed: int = 42,
    measure: float = 15.0,
    warmup: float = 2.0,
    keyspace: int = 20_000_000,
    zetan: Optional[float] = None,
    **kwargs,
) -> List[ClusterSimResult]:
    """Run the paper's client sweep for one (level, distribution) pair."""
    counts = client_counts or PAPER_CLIENT_SWEEP
    results = []
    for n in counts:
        sim = ClusterSim(
            level=level,
            distribution=distribution,
            num_clients=n,
            seed=seed,
            measure=measure,
            warmup=warmup,
            keyspace=keyspace,
            zetan=zetan,
            **kwargs,
        )
        results.append(sim.run())
    return results
