"""Property-based verification of the paper's Theorem 1.

"write-snapshot isolation is serializable": every history the WSI stack
actually produces — random transactions, random interleavings, executed
against the *real* oracle/store/client — must be serializable, and the
paper's constructive serial(h) mapping must yield an equivalent serial
history.

Also the contrast property: SI executions exhibit write skew for some
seed (we pin one), demonstrating the checker can tell the difference.
"""

from __future__ import annotations

import random
from typing import List

from hypothesis import given, settings, strategies as st

from repro.core import create_system
from repro.core.errors import AbortException
from repro.history.history import History, Operation
from repro.history.serializability import (
    equivalent,
    is_serializable,
    serialize_by_commit_order,
)

ITEMS = ["a", "b", "c", "d"]


@st.composite
def programs(draw):
    """A random batch of transaction bodies: lists of (kind, item)."""
    num_txns = draw(st.integers(min_value=2, max_value=6))
    txns = []
    for _ in range(num_txns):
        length = draw(st.integers(min_value=0, max_value=5))
        ops = [
            (
                draw(st.sampled_from("rw")),
                draw(st.sampled_from(ITEMS)),
            )
            for _ in range(length)
        ]
        txns.append(ops)
    return txns


def execute_recording_history(level: str, program, interleave_seed: int) -> History:
    """Run the program with random interleaving; return the history of
    COMMITTED transactions (aborted ones excluded, as §4.2 permits)."""
    system = create_system(level)
    rng = random.Random(interleave_seed)
    # open all transactions up front so they genuinely overlap
    open_txns = []
    for ops in program:
        txn = system.manager.begin()
        open_txns.append({"txn": txn, "ops": list(ops), "trace": []})
    trace: List[Operation] = []
    while open_txns:
        state = rng.choice(open_txns)
        txn = state["txn"]
        txn_id = txn.start_ts
        try:
            if state["ops"]:
                kind, item = state["ops"].pop(0)
                if kind == "r":
                    txn.read(item)
                else:
                    txn.write(item, f"{txn_id}:{item}")
                trace.append(Operation(kind, txn_id, item))
                continue
            txn.commit()
            trace.append(Operation("c", txn_id))
        except AbortException:
            trace.append(Operation("a", txn_id))
        open_txns.remove(state)
    # drop aborted transactions' operations entirely
    history = History(trace)
    committed = set(history.committed_transactions())
    return History([op for op in trace if op.txn in committed])


@given(program=programs(), seed=st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=120, deadline=None)
def test_wsi_histories_are_serializable(program, seed):
    history = execute_recording_history("wsi", program, seed)
    if not history.operations:
        return
    assert is_serializable(history), f"WSI produced unserializable: {history}"


@given(program=programs(), seed=st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=80, deadline=None)
def test_wsi_serial_construction_is_equivalent(program, seed):
    # Lemmas 1-2: serial(h) is serial and equivalent to h.
    history = execute_recording_history("wsi", program, seed)
    if not history.operations:
        return
    serial = serialize_by_commit_order(history)
    assert serial.is_serial()
    assert equivalent(history, serial), (
        f"serial(h) not equivalent\nh      = {history}\nserial = {serial}"
    )


@given(program=programs(), seed=st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=60, deadline=None)
def test_si_histories_prevent_lost_update(program, seed):
    # SI is not serializable, but lost updates must never appear.
    from repro.history.anomalies import find_lost_updates

    history = execute_recording_history("si", program, seed)
    if not history.operations:
        return
    assert find_lost_updates(history) == []


def test_si_exhibits_write_skew_for_some_execution():
    """The contrast to Theorem 1: a pinned SI run shows write skew."""
    program = [
        [("r", "a"), ("r", "b"), ("w", "a")],
        [("r", "a"), ("r", "b"), ("w", "b")],
    ]
    # interleaving seed chosen so both transactions overlap fully
    for seed in range(50):
        history = execute_recording_history("si", program, seed)
        if len(history.committed_transactions()) == 2:
            if not is_serializable(history):
                return  # found the skew: SI committed both
    raise AssertionError("SI never produced the write-skew execution")


def test_wsi_never_commits_that_write_skew():
    program = [
        [("r", "a"), ("r", "b"), ("w", "a")],
        [("r", "a"), ("r", "b"), ("w", "b")],
    ]
    for seed in range(50):
        history = execute_recording_history("wsi", program, seed)
        assert is_serializable(history)
