"""Unit tests for the timestamp oracle."""

import pytest

from repro.core.errors import OracleClosed, RecoveryError
from repro.core.timestamps import TimestampOracle


class TestAllocation:
    def test_timestamps_start_at_one(self):
        tso = TimestampOracle()
        assert tso.next() == 1

    def test_timestamps_strictly_increase(self):
        tso = TimestampOracle()
        previous = 0
        for _ in range(1000):
            ts = tso.next()
            assert ts > previous
            previous = ts

    def test_timestamps_are_consecutive(self):
        tso = TimestampOracle()
        values = [tso.next() for _ in range(50)]
        assert values == list(range(1, 51))

    def test_peek_does_not_advance(self):
        tso = TimestampOracle()
        assert tso.peek() == 1
        assert tso.peek() == 1
        assert tso.next() == 1
        assert tso.peek() == 2

    def test_custom_first_timestamp(self):
        tso = TimestampOracle(first_timestamp=100)
        assert tso.next() == 100

    def test_issued_count(self):
        tso = TimestampOracle()
        for _ in range(7):
            tso.next()
        assert tso.issued_count == 7


class TestBatchedDurability:
    def test_one_wal_write_per_batch(self):
        writes = []
        tso = TimestampOracle(reservation_batch=10, wal_append=writes.append)
        for _ in range(10):
            tso.next()
        assert len(writes) == 1
        tso.next()  # 11th timestamp needs a second batch
        assert len(writes) == 2

    def test_wal_records_are_high_water_marks(self):
        writes = []
        tso = TimestampOracle(reservation_batch=5, wal_append=writes.append)
        for _ in range(12):
            tso.next()
        assert writes == [5, 10, 15]

    def test_amortization_metric(self):
        tso = TimestampOracle(reservation_batch=1000)
        for _ in range(5000):
            tso.next()
        assert tso.wal_write_count == 5

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            TimestampOracle(reservation_batch=0)


class TestRecovery:
    def test_recovery_resumes_above_high_water(self):
        writes = []
        tso = TimestampOracle(reservation_batch=10, wal_append=writes.append)
        for _ in range(3):
            tso.next()  # issued 1..3, reserved through 10
        recovered = TimestampOracle.recover(writes[-1])
        assert recovered.next() == 11

    def test_recovery_never_reissues(self):
        writes = []
        tso = TimestampOracle(reservation_batch=7, wal_append=writes.append)
        issued = [tso.next() for _ in range(20)]
        recovered = TimestampOracle.recover(writes[-1])
        fresh = [recovered.next() for _ in range(20)]
        assert not set(issued) & set(fresh)

    def test_recovery_rejects_negative_mark(self):
        with pytest.raises(RecoveryError):
            TimestampOracle.recover(-1)

    def test_recovered_oracle_keeps_allocating(self):
        recovered = TimestampOracle.recover(42, reservation_batch=3)
        values = [recovered.next() for _ in range(10)]
        assert values == list(range(43, 53))


class TestLifecycle:
    def test_closed_oracle_rejects_requests(self):
        tso = TimestampOracle()
        tso.close()
        with pytest.raises(OracleClosed):
            tso.next()

    def test_close_is_idempotent(self):
        tso = TimestampOracle()
        tso.close()
        tso.close()
