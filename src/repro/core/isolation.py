"""Isolation-level registry and one-call system assembly.

The paper contrasts two isolation levels; this module gives them stable
names and a convenience constructor that wires a complete single-process
transactional system (store + oracle + manager) for examples and tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.status_oracle import make_oracle
from repro.core.timestamps import TimestampOracle
from repro.core.transaction import TransactionManager
from repro.mvcc.store import MVCCStore
from repro.wal.bookkeeper import BookKeeperWAL


class IsolationLevel(enum.Enum):
    """The two isolation levels the paper compares.

    * ``SNAPSHOT`` — snapshot isolation ("read-snapshot isolation" in the
      paper's terminology, §4): write-write conflict detection; not
      serializable (allows write skew, H2).
    * ``WRITE_SNAPSHOT`` — write-snapshot isolation: read-write conflict
      detection; serializable (Theorem 1).
    """

    SNAPSHOT = "si"
    WRITE_SNAPSHOT = "wsi"

    @property
    def is_serializable(self) -> bool:
        """§4.2: WSI is serializable; SI is not (§3.1)."""
        return self is IsolationLevel.WRITE_SNAPSHOT

    @classmethod
    def parse(cls, name: str) -> "IsolationLevel":
        """Accept 'si'/'wsi' and common aliases."""
        normalized = name.strip().lower().replace("-", "_")
        aliases = {
            "si": cls.SNAPSHOT,
            "snapshot": cls.SNAPSHOT,
            "snapshot_isolation": cls.SNAPSHOT,
            "read_snapshot": cls.SNAPSHOT,
            "wsi": cls.WRITE_SNAPSHOT,
            "write_snapshot": cls.WRITE_SNAPSHOT,
            "write_snapshot_isolation": cls.WRITE_SNAPSHOT,
            "serializable": cls.WRITE_SNAPSHOT,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise ValueError(f"unknown isolation level {name!r}") from None


@dataclass
class TransactionalSystem:
    """A fully wired single-process stack: store, oracle, manager.

    ``oracle`` is the sequential commit surface the manager speaks —
    the engine itself in the plain assembly, or a
    :class:`~repro.server.ha.ReplicatedOracleFacade` when the system is
    replicated (``frontend`` then holds the underlying
    :class:`~repro.server.ha.ReplicatedFrontend` for failure injection
    and standby drive).
    """

    level: IsolationLevel
    store: MVCCStore
    oracle: Any
    manager: TransactionManager
    wal: Optional[BookKeeperWAL] = None
    frontend: Any = None


def create_system(
    level: IsolationLevel | str = IsolationLevel.WRITE_SNAPSHOT,
    bounded: bool = False,
    max_rows: int = 1_000_000,
    durable: bool = False,
    replicated: int = 0,
    warm: bool = True,
) -> TransactionalSystem:
    """Assemble a transactional system in one call.

    Args:
        level: isolation level (enum or 'si'/'wsi' string).
        bounded: use the Appendix-A bounded-memory oracle (Algorithm 3).
        max_rows: lastCommit capacity when ``bounded``.
        durable: attach a BookKeeper-style WAL to the oracle.
        replicated: when > 0, serve commits through a
            :class:`~repro.server.ha.ReplicatedFrontend` with that many
            candidate hosts — leader election, shared replicated WAL,
            crash-and-takeover via ``system.frontend.kill_active()``.
            Transactions keep the exact same API; every decision the
            manager sees is already durable on the ledger quorum.
        warm: with ``replicated``, run standbys as WAL-tailing warm
            replicas (O(delta) takeover) rather than cold full-replay.

    Example::

        system = create_system("wsi")
        with system.manager.begin() as txn:
            txn.write("row1", "hello")

        ha = create_system("wsi", replicated=3)
        with ha.manager.begin() as txn:
            txn.write("row1", "hello")
        ha.frontend.kill_active()   # transparent failover
    """
    if isinstance(level, str):
        level = IsolationLevel.parse(level)
    if replicated:
        if bounded:
            raise ValueError(
                "bounded oracles are not supported behind the "
                "replicated tier yet"
            )
        # Imported lazily: core must not depend on the serving stack at
        # import time (the serving stack depends on core).
        from repro.server.ha import ReplicatedFrontend, ReplicatedOracleFacade

        # engine= pinned: this facade's contract is the isolation
        # *level*, so it must not drift with the REPRO_ENGINE axis.
        frontend = ReplicatedFrontend(
            num_hosts=replicated, level=level.value, warm=warm,
            engine="oracle",
        )
        facade = ReplicatedOracleFacade(frontend)
        store = MVCCStore()
        # Readers query the leader's commit table per lookup (§2.2's
        # in-oracle mapping) — a client-replica view would subscribe to
        # one host's broadcast stream and go stale at failover.
        manager = TransactionManager(
            facade, store, commit_source=facade.commit_status
        )
        return TransactionalSystem(
            level=level,
            store=store,
            oracle=facade,
            manager=manager,
            wal=frontend.wal,
            frontend=frontend,
        )
    wal = BookKeeperWAL() if durable else None
    oracle = make_oracle(
        level.value,
        bounded=bounded,
        max_rows=max_rows,
        timestamp_oracle=TimestampOracle(),
        wal=wal,
    )
    store = MVCCStore()
    manager = TransactionManager(oracle, store)
    return TransactionalSystem(
        level=level, store=store, oracle=oracle, manager=manager, wal=wal
    )
