"""E6 — Figure 9: performance with zipfianLatest distribution.

Paper: popular items are among the recently inserted data.  "The
performance in this distribution is in general less than in zipfian
distribution.  Both write-snapshot isolation and snapshot isolation
saturate at 40 clients, where the throughput of write-snapshot isolation
is 361 TPS and the latency is 110 ms.  Nevertheless, the two systems
offer a very similar performance."

Our model uses YCSB's default hashed key layout (orderedinserts=false),
so the hot set scatters over regions but churns as the insertion
frontier advances — the churn lowers cache effectiveness relative to the
static zipfian hot set, which is what depresses this curve below Fig. 7.
"""

import pytest

from repro.bench import format_table, knee_index, latency_throughput_chart, saturates, within_factor
from repro.sim.cluster_sim import sweep_cluster

CLIENTS = [5, 10, 20, 40, 80, 160, 320, 640]


def run_all():
    si = sweep_cluster("si", "zipfianLatest", client_counts=CLIENTS, measure=8.0)
    wsi = sweep_cluster("wsi", "zipfianLatest", client_counts=CLIENTS, measure=8.0)
    zipf = sweep_cluster("wsi", "zipfian", client_counts=CLIENTS, measure=8.0)
    return si, wsi, zipf


@pytest.mark.figure("fig9")
def test_e6_fig9_latest_performance(benchmark, print_header):
    si, wsi, zipf = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_header("E6 — Figure 9: performance with zipfianLatest distribution")
    rows = [
        (
            a.num_clients,
            f"{a.throughput_tps:.0f}",
            f"{a.avg_latency_ms:.0f}",
            f"{b.throughput_tps:.0f}",
            f"{b.avg_latency_ms:.0f}",
            f"{z.throughput_tps:.0f}",
        )
        for a, b, z in zip(si, wsi, zipf)
    ]
    print(
        format_table(
            ["clients", "SI TPS", "SI ms", "WSI TPS", "WSI ms", "zipf TPS"],
            rows,
            title="mixed workload, zipfianLatest (paper: WSI 361 TPS @ 110 ms at 40 clients)",
        )
    )

    print()
    print(latency_throughput_chart(
        "Figure 9 (reproduced): zipfianLatest distribution",
        {
            "WSI": [(r.throughput_tps, r.avg_latency_ms) for r in wsi],
            "SI": [(r.throughput_tps, r.avg_latency_ms) for r in si],
        },
    ))
    # Shape: zipfianLatest throughput below plain zipfian at equal load
    # ("performance ... in general less than in zipfian").
    worse_points = sum(
        1 for b, z in zip(wsi, zipf) if b.throughput_tps < z.throughput_tps
    )
    assert worse_points >= len(CLIENTS) - 2
    # Saturation: the curve flattens, with the knee earlier than or equal
    # to zipfian's.
    assert saturates([r.throughput_tps for r in wsi])
    assert knee_index([r.throughput_tps for r in wsi]) <= knee_index(
        [r.throughput_tps for r in zipf]
    ) + 1
    # The two isolation levels remain similar.
    for a, b in zip(si, wsi):
        assert within_factor(b.throughput_tps, a.throughput_tps, 1.3)
    # Peak throughput within 2x of the paper's 361-TPS anchor region
    # (we document the wider tolerance in EXPERIMENTS.md).
    wsi_max = max(r.throughput_tps for r in wsi)
    assert within_factor(wsi_max, 361, 2.0)
