"""HBaseCluster: region-sharded storage behind the StorageBackend protocol.

Routes every row access through a :class:`~repro.mvcc.region.RegionMap` to
the owning :class:`~repro.hbase.region_server.RegionServer`, mirroring the
paper's 25-RegionServer table.  Because it exposes the same
``put`` / ``get_versions`` / ``delete_version`` surface as
:class:`~repro.mvcc.store.MVCCStore`, the transaction client runs against
a cluster unchanged — transactions span regions and servers exactly as
the paper describes ("A transaction client has to read/write cell data
from/to multiple regions in different data servers", §6).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.hbase.region_server import RegionServer
from repro.mvcc.region import RegionMap
from repro.mvcc.version import Version

RowKey = Hashable


class HBaseCluster:
    """A set of region servers plus the routing map.

    Args:
        num_servers: data-server count (paper: 25).
        cache_blocks_per_server: block-cache capacity, 0 = everything cold
            (models the paper's 100 GB table >> 3 GB heap).
        split_points: optional pre-split keys; by default a fresh table is
            one region on server 0, and callers may pre-split for balance.
    """

    def __init__(
        self,
        num_servers: int = 25,
        cache_blocks_per_server: int = 0,
        split_points: Optional[Sequence[RowKey]] = None,
    ) -> None:
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        self.servers: List[RegionServer] = [
            RegionServer(i, cache_capacity_blocks=cache_blocks_per_server)
            for i in range(num_servers)
        ]
        self.region_map: RegionMap = RegionMap(num_servers=num_servers)
        if split_points:
            self.region_map.presplit_uniform(sorted(split_points))
            self.region_map.rebalance_round_robin()

    @classmethod
    def for_integer_keyspace(
        cls,
        num_rows: int,
        num_servers: int = 25,
        regions_per_server: int = 4,
        cache_blocks_per_server: int = 0,
    ) -> "HBaseCluster":
        """Build a cluster pre-split evenly over integer keys [0, num_rows)."""
        total_regions = max(1, num_servers * regions_per_server)
        step = max(1, num_rows // total_regions)
        splits = list(range(step, num_rows, step))
        return cls(
            num_servers=num_servers,
            cache_blocks_per_server=cache_blocks_per_server,
            split_points=splits,
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def server_for(self, row: RowKey) -> RegionServer:
        return self.servers[self.region_map.server_for(row)]

    # ------------------------------------------------------------------
    # StorageBackend protocol
    # ------------------------------------------------------------------
    def put(self, row: RowKey, timestamp: int, value: Any) -> None:
        self.server_for(row).put(row, timestamp, value)

    def get_versions(
        self, row: RowKey, max_timestamp: Optional[int] = None
    ) -> Iterator[Version]:
        return self.server_for(row).get_versions(row, max_timestamp)

    def delete_version(self, row: RowKey, timestamp: int) -> bool:
        return self.server_for(row).delete_version(row, timestamp)

    def scan_range(self, start: RowKey, end: RowKey) -> Iterator[RowKey]:
        """Cluster-wide range scan: union of per-server scans, sorted."""
        rows: List[RowKey] = []
        for server in self.servers:
            rows.extend(server.store.scan_range(start, end))
        return iter(sorted(rows))  # type: ignore[type-var]

    def scan_rows(self) -> Iterator[RowKey]:
        """Every row key present anywhere in the cluster."""
        for server in self.servers:
            yield from server.store.scan_rows()

    def compact(self, row: RowKey, keep_after: int) -> int:
        """Compact one row on its owning server (GC support)."""
        return self.server_for(row).store.compact(row, keep_after)

    # ------------------------------------------------------------------
    # bulk load / metrics
    # ------------------------------------------------------------------
    def load(self, items: Sequence[Tuple[RowKey, int, Any]]) -> None:
        """Bulk-load (row, ts, value) triples (initial 100M-row table)."""
        for row, ts, value in items:
            self.put(row, ts, value)

    def total_gets(self) -> int:
        return sum(s.get_count for s in self.servers)

    def total_puts(self) -> int:
        return sum(s.put_count for s in self.servers)

    def load_imbalance(self) -> float:
        """Max/mean request ratio across servers (1.0 = perfectly even).

        The paper's uniform-distribution experiment relies on even load
        ("The uniform distribution of rows evenly distributes the load on
        all the data servers", §6.4); this metric lets tests check it.
        """
        counts = [s.request_count for s in self.servers]
        total = sum(counts)
        if total == 0:
            return 1.0
        mean = total / len(counts)
        return max(counts) / mean if mean else 1.0

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"HBaseCluster(servers={len(self.servers)}, "
            f"regions={self.region_map.region_count})"
        )
