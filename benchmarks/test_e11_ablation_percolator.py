"""E11 (ablation) — lock-based vs lock-free SI under client failures.

§2.1/§7.2's critique of Percolator: "the locks held by a failed or slow
transaction prevent the others from making progress until the full
recovery from the failure", and lock maintenance "puts extra load on
data servers".  This ablation injects client crashes mid-2PC and
compares the blast radius: aborts suffered by *other* transactions and
resolution work performed, versus the lock-free oracle where a dead
client leaves nothing behind.
"""

import random

import pytest

from repro.bench import format_table
from repro.core import create_system
from repro.core.errors import AbortException
from repro.percolator import LockPolicy, PercolatorTransactionManager
from repro.workload import complex_workload

NUM_TXNS = 1500
CRASH_EVERY = 20  # 5% of clients die mid-2PC
KEYSPACE = 300


def run_percolator():
    manager = PercolatorTransactionManager(lock_policy=LockPolicy.ABORT_SELF)
    wl = complex_workload(keyspace=KEYSPACE, seed=31)
    rng = random.Random(32)
    committed = aborts = crashes = 0
    for i, spec in enumerate(wl.stream(NUM_TXNS)):
        txn = manager.begin()
        try:
            for op in spec.ops:
                if op.kind == "r":
                    txn.read(op.row)
                else:
                    txn.write(op.row, i)
            if txn.write_set and i % CRASH_EVERY == 0:
                rows = sorted(txn.write_set, key=repr)
                txn.prewrite(rows[0], rows)
                txn.crash()  # dies holding every lock
                crashes += 1
                continue
            txn.commit()
            committed += 1
        except AbortException:
            aborts += 1
    return {
        "committed": committed,
        "aborted": aborts,
        "crashed": crashes,
        "resolutions": manager.resolution_count,
    }


def run_lock_free():
    system = create_system("si")
    wl = complex_workload(keyspace=KEYSPACE, seed=31)
    committed = aborts = crashes = 0
    for i, spec in enumerate(wl.stream(NUM_TXNS)):
        txn = system.manager.begin()
        try:
            for op in spec.ops:
                if op.kind == "r":
                    txn.read(op.row)
                else:
                    txn.write(op.row, i)
            if txn.write_set and i % CRASH_EVERY == 0:
                crashes += 1  # client dies: simply never sends commit
                continue
            txn.commit()
            committed += 1
        except AbortException:
            aborts += 1
    return {
        "committed": committed,
        "aborted": aborts,
        "crashed": crashes,
        "resolutions": 0,  # nothing to clean up, ever
    }


@pytest.mark.figure("ablation-percolator")
def test_e11_lock_based_vs_lock_free_failure_blast_radius(benchmark, print_header):
    perco, free = benchmark.pedantic(
        lambda: (run_percolator(), run_lock_free()), rounds=1, iterations=1
    )
    print_header("E11 — lock-based (Percolator) vs lock-free SI with crashing clients")
    print(
        format_table(
            ["metric", "Percolator (lock-based)", "status oracle (lock-free)"],
            [
                ("committed", perco["committed"], free["committed"]),
                ("aborted (others)", perco["aborted"], free["aborted"]),
                ("crashed clients", perco["crashed"], free["crashed"]),
                ("lock resolutions", perco["resolutions"], free["resolutions"]),
            ],
            title=f"{NUM_TXNS} sequential txns, {KEYSPACE}-row keyspace, "
            f"1-in-{CRASH_EVERY} clients crash mid-commit",
        )
    )
    # The lock-free design suffers no induced aborts in this sequential
    # run (no concurrency -> no conflicts), while Percolator both aborts
    # bystanders on dangling locks and pays resolution work.
    assert free["aborted"] == 0
    assert perco["resolutions"] > 0
    assert perco["aborted"] >= free["aborted"]
    # Both sides see the crash schedule; on the Percolator side some
    # crash candidates abort in prewrite first (dangling locks from
    # earlier crashes), so its crash count can only be lower.
    assert free["crashed"] > 0
    assert 0 < perco["crashed"] <= free["crashed"]
    # The blast radius is the finding: dangling locks abort a visible
    # share of bystanders under Percolator, none under the oracle.
    assert perco["aborted"] > 0.05 * NUM_TXNS
    # Both still commit the clear majority of transactions.
    assert perco["committed"] > 0.7 * NUM_TXNS
    assert free["committed"] > 0.9 * NUM_TXNS
