"""HBase-like distributed store simulator (the paper's data substrate).

Public surface:

* :class:`HBaseCluster` — region-sharded storage, StorageBackend-compatible.
* :class:`RegionServer` — one data server with block-cache accounting.
* :class:`BlockCache` — LRU block cache (hot/cold read classification).
"""

from repro.hbase.cluster import HBaseCluster
from repro.hbase.region_server import BlockCache, RegionServer

__all__ = ["HBaseCluster", "RegionServer", "BlockCache"]
