"""E2 — Figure 5: status-oracle overhead (latency vs throughput).

Paper: complex workload, rows uniform over 20M, clients 1→26 each with
100 outstanding zero-execution-time transactions.  WSI reaches 80K TPS
at 10.7 ms, then saturates around 92K TPS; SI saturates later, around
104K TPS, because its critical section touches half the memory items
(§6.3).  Below saturation the two isolation levels are indistinguishable.
"""

import pytest

from repro.bench import format_table, latency_throughput_chart, saturates, within_factor
from repro.sim.oracle_bench import sweep_clients

CLIENTS = [1, 2, 4, 8, 16, 26]


def run_both():
    si = sweep_clients("si", client_counts=CLIENTS, measure=0.3)
    wsi = sweep_clients("wsi", client_counts=CLIENTS, measure=0.3)
    return si, wsi


@pytest.mark.figure("fig5")
def test_e2_fig5_oracle_latency_vs_throughput(benchmark, print_header):
    si, wsi = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_header("E2 — Figure 5: overhead on the status oracle")
    rows = []
    for a, b in zip(si, wsi):
        rows.append(
            (
                a.num_clients,
                f"{a.throughput_tps:.0f}",
                f"{a.avg_latency_ms:.2f}",
                f"{b.throughput_tps:.0f}",
                f"{b.avg_latency_ms:.2f}",
            )
        )
    print(
        format_table(
            ["clients", "SI TPS", "SI ms", "WSI TPS", "WSI ms"],
            rows,
            title="latency vs throughput, complex workload, uniform 20M rows",
        )
    )
    print()
    print(latency_throughput_chart(
        "Figure 5 (reproduced): latency vs throughput",
        {
            "WSI": [(r.throughput_tps, r.avg_latency_ms) for r in wsi],
            "SI": [(r.throughput_tps, r.avg_latency_ms) for r in si],
        },
    ))
    si_max = max(r.throughput_tps for r in si)
    wsi_max = max(r.throughput_tps for r in wsi)
    print(f"\nSI saturation:  {si_max:.0f} TPS (paper: ~104K)")
    print(f"WSI saturation: {wsi_max:.0f} TPS (paper: ~92K)")

    # Shape assertions.
    assert saturates([r.throughput_tps for r in si])
    assert saturates([r.throughput_tps for r in wsi])
    # SI saturates higher than WSI (the paper's 104K vs 92K), and the
    # two land within a factor 1.5 of the paper's absolute anchors.
    assert si_max > wsi_max
    assert within_factor(si_max, 104_000, 1.5)
    assert within_factor(wsi_max, 92_000, 1.5)
    # Below saturation (first two points) the levels are comparable:
    # latencies within 2x of each other.
    for a, b in zip(si[:2], wsi[:2]):
        assert b.avg_latency_ms < 2 * a.avg_latency_ms
    # Latency grows monotonically past the knee for both.
    assert wsi[-1].avg_latency_ms > wsi[1].avg_latency_ms
    assert si[-1].avg_latency_ms > si[1].avg_latency_ms
