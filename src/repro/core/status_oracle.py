"""The status oracle: centralized, lock-free conflict detection.

This module implements the paper's three commit algorithms:

* **Algorithm 1** (§2.2) — snapshot isolation.  The commit request carries
  the *write set* ``R``; the oracle aborts if any written row has
  ``lastCommit(r) > Ts(txn)``, else assigns ``Tc`` and updates
  ``lastCommit`` for every written row.
* **Algorithm 2** (§5) — write-snapshot isolation.  The commit request
  carries both the write set ``Rw`` and the read set ``Rr``; the oracle
  checks ``lastCommit`` over the **read** rows and, on commit, updates it
  over the **write** rows.
* **Algorithm 3** (Appendix A) — the bounded-memory refinement used by the
  real Omid deployment: ``lastCommit`` keeps only the most recent rows
  that fit in memory plus ``Tmax``, the maximum timestamp evicted; a row
  missing from memory with ``Tmax > Ts(txn)`` aborts *pessimistically*.

The diff between Algorithms 1 and 2 is deliberately tiny — which rows are
checked, and nothing else — making the paper's claim that "the changes
into the implementation of snapshot isolation ... are a few" (§5) literal
in this code: compare :meth:`SnapshotIsolationOracle.rows_to_check`
against :meth:`WriteSnapshotIsolationOracle.rows_to_check`.

The oracle is single-threaded by construction ("the current implementation
of status oracle executes the conflict detection algorithm in a critical
section", §6.3); callers that want concurrency model it *around* the
oracle (see :mod:`repro.sim`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.core.commit_table import CommitTable
from repro.core.errors import OracleClosed, RecoveryError
from repro.core.timestamps import TimestampOracle
from repro.wal.bookkeeper import GROUP_COMMIT_RECORD, BookKeeperWAL

RowKey = Hashable

# Appendix A sizing: row id + start ts + commit ts at 8 bytes each, plus
# bookkeeping, is estimated at 32 bytes per lastCommit entry.
BYTES_PER_LASTCOMMIT_ENTRY = 32


@dataclass(frozen=True)
class CommitRequest:
    """A client's commit request.

    Under SI only ``write_set`` matters; under WSI the oracle checks
    ``read_set`` and installs ``write_set``.  A read-only transaction
    submits both sets empty (§5.1) so the oracle commits it without any
    conflict computation or WAL write.
    """

    start_ts: int
    write_set: FrozenSet[RowKey] = frozenset()
    read_set: FrozenSet[RowKey] = frozenset()

    @property
    def is_read_only(self) -> bool:
        return not self.write_set


@dataclass(frozen=True)
class CommitResult:
    """Outcome of a commit request."""

    committed: bool
    start_ts: int
    commit_ts: Optional[int] = None
    reason: str = ""  # "" on commit; "ww-conflict"/"rw-conflict"/"tmax"
    conflict_row: Optional[RowKey] = None


@dataclass
class OracleStats:
    """Counters the benchmarks read off the oracle."""

    commits: int = 0
    aborts: int = 0
    read_only_commits: int = 0
    conflict_aborts: int = 0
    tmax_aborts: int = 0
    rows_checked: int = 0
    rows_updated: int = 0

    @property
    def total_requests(self) -> int:
        return self.commits + self.aborts

    @property
    def abort_rate(self) -> float:
        total = self.total_requests
        return self.aborts / total if total else 0.0


class StatusOracle:
    """Base class: timestamp allocation, lastCommit state, WAL, stats.

    Subclasses choose which rows are *checked* against ``lastCommit`` and
    which rows *update* it — that single decision is the entire difference
    between snapshot isolation and write-snapshot isolation.
    """

    #: isolation level tag ("si" or "wsi"); set by subclasses.
    level: str = "base"

    def __init__(
        self,
        timestamp_oracle: Optional[TimestampOracle] = None,
        wal: Optional[BookKeeperWAL] = None,
    ) -> None:
        self._wal = wal
        if timestamp_oracle is None:
            # With a WAL attached, persist timestamp reservations so a
            # recovered instance never reissues a start timestamp
            # (Appendix A's batched-reservation protocol).
            wal_hook = self._log_ts_reservation if wal is not None else None
            timestamp_oracle = TimestampOracle(wal_append=wal_hook)
        self._tso = timestamp_oracle
        self._last_commit: Dict[RowKey, int] = {}
        self.commit_table = CommitTable()
        self.stats = OracleStats()
        self._closed = False

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    def rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        """Rows whose ``lastCommit`` is compared against ``Ts`` (line 1)."""
        raise NotImplementedError

    def rows_to_update(self, request: CommitRequest) -> FrozenSet[RowKey]:
        """Rows whose ``lastCommit`` is set to ``Tc`` on commit (line 7).

        Both algorithms update the *write* set: committed writes are what
        future transactions can conflict with.
        """
        return request.write_set

    # ------------------------------------------------------------------
    # the commit protocol
    # ------------------------------------------------------------------
    def begin(self) -> int:
        """Serve a start timestamp (the only oracle cost a read-only
        transaction ever pays, §5.1)."""
        if self._closed:
            raise OracleClosed("status oracle is closed")
        return self._tso.next()

    def commit(self, request: CommitRequest) -> CommitResult:
        """Process a commit request (Algorithms 1 and 2).

        Returns a :class:`CommitResult`; never raises for conflicts — an
        abort is a normal protocol outcome, and the *client* turns it into
        an exception if it wants one.
        """
        if self._closed:
            raise OracleClosed("status oracle is closed")

        # §5.1 read-only fast path: empty sets, no check, no WAL cost.
        if request.is_read_only and not request.read_set:
            self.stats.commits += 1
            self.stats.read_only_commits += 1
            return CommitResult(True, request.start_ts, commit_ts=None)

        # Lines 1-5: conflict check against lastCommit.
        conflict = self._check(request)
        if conflict is not None:
            reason, row = conflict
            self.stats.aborts += 1
            self.stats.conflict_aborts += 1
            if reason == "tmax":
                self.stats.tmax_aborts += 1
                self.stats.conflict_aborts -= 1
            self.commit_table.record_abort(request.start_ts)
            self._log("abort", (request.start_ts,))
            return CommitResult(
                False, request.start_ts, reason=reason, conflict_row=row
            )

        # Line 6: assign the commit timestamp (inside the critical section,
        # which is why checking only lastCommit(r) > Ts suffices — no
        # later-committing transaction can slip between check and assign).
        commit_ts = self._tso.next()

        # Lines 7-9: install the write set.
        rows = self.rows_to_update(request)
        self._install(rows, commit_ts)
        self.stats.rows_updated += len(rows)

        self.commit_table.record_commit(request.start_ts, commit_ts)
        self.stats.commits += 1
        self._log("commit", (request.start_ts, commit_ts, tuple(rows)))
        return CommitResult(True, request.start_ts, commit_ts=commit_ts)

    def abort(self, start_ts: int) -> None:
        """Record a client-initiated abort (e.g. application rollback)."""
        if self._closed:
            raise OracleClosed("status oracle is closed")
        self.commit_table.record_abort(start_ts)
        self.stats.aborts += 1
        self._log("abort", (start_ts,))

    # ------------------------------------------------------------------
    # lastCommit plumbing (overridden by the bounded oracle)
    # ------------------------------------------------------------------
    def _check(self, request: CommitRequest) -> Optional[Tuple[str, RowKey]]:
        # The lastCommit comparison is identical for every policy; only
        # the *rows* differ, and the reason tag follows from which rows
        # are checked (SI and SSI check writes, WSI checks reads).
        reason = "rw-conflict" if self.level == "wsi" else "ww-conflict"
        for row in self.rows_to_check(request):
            self.stats.rows_checked += 1
            last = self._last_commit.get(row)
            if last is not None and last > request.start_ts:
                return reason, row
        return None

    def _install(self, rows: Iterable[RowKey], commit_ts: int) -> None:
        for row in rows:
            self._last_commit[row] = commit_ts

    def last_commit(self, row: RowKey) -> Optional[int]:
        """Expose lastCommit(r) for tests and checkers."""
        return self._last_commit.get(row)

    # ------------------------------------------------------------------
    # durability / recovery
    # ------------------------------------------------------------------
    def _log(self, kind: str, payload) -> None:
        if self._wal is not None:
            self._wal.append(kind, payload, size=BYTES_PER_LASTCOMMIT_ENTRY)

    def _log_ts_reservation(self, high_water: int) -> None:
        """Persist a timestamp-reservation high-water mark.

        The reservation must be durable *before* any timestamp from the
        batch is served, so it is flushed immediately rather than
        batched with commit records.
        """
        if self._wal is not None:
            self._wal.append("ts-reserve", high_water, size=8)
            self._wal.flush()

    def recover_from(self, wal: BookKeeperWAL) -> None:
        """Rebuild lastCommit and the commit table by WAL replay.

        "if the status oracle server fails ... another fresh instance of
        the status oracle could still recreate the memory state from the
        write-ahead log and continue servicing the commit requests"
        (Appendix A).
        """
        max_ts = 0

        def apply_commit(start_ts: int, commit_ts: int, rows) -> int:
            self.commit_table.record_commit(start_ts, commit_ts)
            for row in rows:
                prev = self._last_commit.get(row, 0)
                self._last_commit[row] = max(prev, commit_ts)
            return commit_ts

        def apply_abort(start_ts: int) -> int:
            if not self.commit_table.is_aborted(start_ts):
                self.commit_table.record_abort(start_ts)
            return start_ts

        for record in wal.replay():
            if record.kind == "commit":
                start_ts, commit_ts, rows = record.payload
                max_ts = max(max_ts, apply_commit(start_ts, commit_ts, rows))
            elif record.kind == "abort":
                (start_ts,) = record.payload
                max_ts = max(max_ts, apply_abort(start_ts))
            elif record.kind == GROUP_COMMIT_RECORD:
                # One record per frontend batch (repro.server): replay its
                # decisions in order, exactly as the per-record path would.
                commits, aborts = record.payload
                for start_ts, commit_ts, rows in commits:
                    max_ts = max(max_ts, apply_commit(start_ts, commit_ts, rows))
                for start_ts in aborts:
                    max_ts = max(max_ts, apply_abort(start_ts))
            elif record.kind == "ts-reserve":
                max_ts = max(max_ts, record.payload)
            else:
                raise RecoveryError(f"unknown WAL record kind {record.kind!r}")
        # Resume timestamps strictly above anything recovered — including
        # persisted reservation marks — so no timestamp is ever reused,
        # and keep persisting reservations if this instance has a WAL.
        self._tso = TimestampOracle.recover(
            max(max_ts, self._tso.peek() - 1),
            reservation_batch=self._tso.reservation_batch,
            wal_append=self._log_ts_reservation if self._wal is not None else None,
        )

    def close(self) -> None:
        if self._wal is not None:
            self._wal.flush()
        self._closed = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def timestamp_oracle(self) -> TimestampOracle:
        return self._tso

    @property
    def lastcommit_size(self) -> int:
        return len(self._last_commit)

    def memory_bytes(self) -> int:
        """Estimated lastCommit footprint (Appendix A: 32 B per row)."""
        return len(self._last_commit) * BYTES_PER_LASTCOMMIT_ENTRY


class SnapshotIsolationOracle(StatusOracle):
    """Algorithm 1: write-write conflict detection (snapshot isolation).

    Checks the **write set** against ``lastCommit``.
    """

    level = "si"

    def rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        return request.write_set


class WriteSnapshotIsolationOracle(StatusOracle):
    """Algorithm 2: read-write conflict detection (write-snapshot isolation).

    Checks the **read set** against ``lastCommit``.  This is the entire
    change relative to Algorithm 1 — and it buys serializability
    (Theorem 1 of the paper; verified by property tests in this repo).
    """

    level = "wsi"

    def rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        return request.read_set


class BoundedStatusOracle(StatusOracle):
    """Algorithm 3: lastCommit bounded to ``max_rows`` entries plus Tmax.

    The production concern (Appendix A): the full ``lastCommit`` map over
    a 100M-row table does not fit in RAM.  Omid keeps only the most
    recently written rows and tracks ``Tmax``, the maximum commit
    timestamp ever evicted.  A commit request touching a row that is *not*
    in memory must be aborted pessimistically if its start timestamp is
    below ``Tmax`` — the oracle can no longer prove the row wasn't
    overwritten after the transaction started.

    Safety is one-sided: eviction can only *add* aborts (false positives),
    never admit a conflicting commit.  Appendix A argues false positives
    are negligible when ``Tmax - Ts >> MaxCommitTime`` — e.g. 1 GB of
    entries covers ~50 s of history at 80K TPS, far above typical commit
    latencies.  Benchmark E10 sweeps ``max_rows`` to expose the trade-off.

    Args:
        policy: ``"si"`` (check write set) or ``"wsi"`` (check read set).
        max_rows: lastCommit capacity in rows (LRU-evicted).
    """

    def __init__(
        self,
        policy: str = "wsi",
        max_rows: int = 1_000_000,
        timestamp_oracle: Optional[TimestampOracle] = None,
        wal: Optional[BookKeeperWAL] = None,
    ) -> None:
        if policy not in ("si", "wsi"):
            raise ValueError(f"policy must be 'si' or 'wsi', not {policy!r}")
        if max_rows < 1:
            raise ValueError("max_rows must be >= 1")
        super().__init__(timestamp_oracle=timestamp_oracle, wal=wal)
        self.level = policy
        self._max_rows = max_rows
        self._last_commit = OrderedDict()  # LRU order: oldest first
        self.tmax = 0

    def rows_to_check(self, request: CommitRequest) -> FrozenSet[RowKey]:
        if self.level == "si":
            return request.write_set
        return request.read_set

    # Algorithm 3, lines 1-11.
    def _check(self, request: CommitRequest) -> Optional[Tuple[str, RowKey]]:
        reason = "ww-conflict" if self.level == "si" else "rw-conflict"
        for row in self.rows_to_check(request):
            self.stats.rows_checked += 1
            last = self._last_commit.get(row)
            if last is not None:
                if last > request.start_ts:  # line 3
                    return reason, row
            elif self.tmax > request.start_ts:  # line 7
                return "tmax", row
        return None

    def _install(self, rows: Iterable[RowKey], commit_ts: int) -> None:
        lc = self._last_commit
        for row in rows:
            if row in lc:
                lc.pop(row)
            lc[row] = commit_ts
            if len(lc) > self._max_rows:
                _, evicted_ts = lc.popitem(last=False)
                if evicted_ts > self.tmax:
                    self.tmax = evicted_ts

    @property
    def max_rows(self) -> int:
        return self._max_rows

    def memory_budget_rows(self) -> int:
        """Rows representable per Appendix A's 32 B/entry estimate."""
        return self._max_rows

    @staticmethod
    def rows_for_memory(memory_bytes: int) -> int:
        """Appendix A sizing: 1 GB -> 32M rows at 32 B per entry."""
        return max(1, memory_bytes // BYTES_PER_LASTCOMMIT_ENTRY)


def make_oracle(
    level: str,
    bounded: bool = False,
    max_rows: int = 1_000_000,
    timestamp_oracle: Optional[TimestampOracle] = None,
    wal: Optional[BookKeeperWAL] = None,
) -> StatusOracle:
    """Factory: build a status oracle for ``level`` in {"si", "wsi"}."""
    if bounded:
        return BoundedStatusOracle(
            policy=level,
            max_rows=max_rows,
            timestamp_oracle=timestamp_oracle,
            wal=wal,
        )
    if level == "si":
        return SnapshotIsolationOracle(timestamp_oracle=timestamp_oracle, wal=wal)
    if level == "wsi":
        return WriteSnapshotIsolationOracle(
            timestamp_oracle=timestamp_oracle, wal=wal
        )
    raise ValueError(f"unknown isolation level {level!r}")
