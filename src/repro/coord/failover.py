"""Status-oracle failover: leader election + WAL recovery, composed.

Appendix A: "if the status oracle server fails, the same status oracle
after recovery, or another fresh instance of the status oracle could
still recreate the memory state from the write-ahead log and continue
servicing the commit requests."  In the deployment this requires an
arbiter so exactly one instance serves at a time — that is the
ZooKeeper leader election.

:class:`OracleReplicaSet` wires the pieces: N candidate oracle hosts, a
shared (replicated) WAL, and an election.  Killing the active host
expires its session; the next candidate wins the election, replays the
WAL, and starts serving — with all pre-failure conflict state intact.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.errors import OracleClosed
from repro.core.status_oracle import CommitRequest, CommitResult, StatusOracle, make_oracle
from repro.coord.zookeeper import LeaderElection, Session, ZooKeeper
from repro.wal.bookkeeper import BookKeeperWAL


class OracleHost:
    """One candidate machine that can run the status oracle."""

    def __init__(
        self,
        host_id: int,
        zookeeper: ZooKeeper,
        wal: BookKeeperWAL,
        level: str = "wsi",
    ) -> None:
        self.host_id = host_id
        self.level = level
        self._wal = wal
        self.session: Session = zookeeper.connect()
        self.oracle: Optional[StatusOracle] = None
        self.recovered_records = 0
        self.election = LeaderElection(
            self.session,
            election_path="/status-oracle",
            on_elected=self._become_active,
        )

    def _become_active(self) -> None:
        """Leader callback: recover from the WAL and start serving."""
        oracle = make_oracle(self.level, wal=self._wal)
        # Replay everything durable so pre-failure conflicts are detected.
        self.recovered_records = sum(1 for _ in self._wal.replay())
        oracle.recover_from(self._wal)
        self.oracle = oracle

    @property
    def is_active(self) -> bool:
        return self.election.is_leader and self.oracle is not None

    def crash(self) -> None:
        """The host dies: session expires, ephemeral node vanishes."""
        if self.oracle is not None:
            self.oracle = None
        self.session.close()


class OracleReplicaSet:
    """A replicated status-oracle deployment with automatic failover.

    Client traffic goes through :meth:`begin` / :meth:`commit`, which
    route to whichever host currently holds the leadership.  The WAL is
    shared (in the real system: BookKeeper ledgers on separate bookies),
    so any host can reconstruct the full oracle state.
    """

    def __init__(self, num_hosts: int = 3, level: str = "wsi") -> None:
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        self.zookeeper = ZooKeeper()
        self.wal = BookKeeperWAL()
        self.hosts: List[OracleHost] = [
            OracleHost(i, self.zookeeper, self.wal, level=level)
            for i in range(num_hosts)
        ]
        self.failovers = 0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def active_host(self) -> OracleHost:
        for host in self.hosts:
            if host.is_active:
                return host
        raise OracleClosed("no active status oracle (all hosts down?)")

    def begin(self) -> int:
        return self.active_host().oracle.begin()

    def commit(self, request: CommitRequest) -> CommitResult:
        return self.active_host().oracle.commit(request)

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def kill_active(self) -> OracleHost:
        """Crash the current leader; election promotes the next host.

        Any commits still buffered (not yet flushed to the replicated
        ledger) die with the host — the durability contract — so we
        flush first only what the host itself had already acknowledged
        through the WAL path.
        """
        victim = self.active_host()
        # The batch buffer was in the victim's memory: unacknowledged
        # records die with it.
        self.wal.drop_pending()
        victim.crash()
        self.failovers += 1
        return victim

    def alive_count(self) -> int:
        return sum(1 for host in self.hosts if host.session.alive)
