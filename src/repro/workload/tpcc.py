"""A TPC-C-like workload: structured multi-row transactions.

The YCSB-style generators (:mod:`repro.workload.generator`) draw
footprints uniformly (or Zipfian) over a flat keyspace — the paper's
§6.1 setup.  Real OLTP footprints are *structured*: a handful of hot
header rows (warehouse, district) co-accessed with many cold detail
rows (stock, order lines), which stresses a conflict detector very
differently — every NewOrder in a district races on one district row
while its stock rows almost never collide.

This module models the five TPC-C transaction profiles as
:class:`~repro.workload.generator.TransactionSpec` streams, so every
harness that consumes specs (the frontend microbench, the sim, the
history checkers) can run them unchanged.  It is a *workload shape*,
not a TPC-C implementation: no think times, no terminals, no
consistency audits — just the footprint structure and the standard mix
(45 % NewOrder, 43 % Payment, 4 % each OrderStatus / Delivery /
StockLevel).

Rows are integers (as everywhere else in the reproduction), carved
into disjoint per-table ranges so a spec's footprint never aliases
across tables.  Benchmark E23 runs this next to YCSB to show how the
three commit engines price structured contention.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.workload.generator import OperationSpec, TransactionSpec

#: The standard TPC-C mix (fractions of the five profiles).
DEFAULT_MIX: Dict[str, float] = {
    "new_order": 0.45,
    "payment": 0.43,
    "order_status": 0.04,
    "delivery": 0.04,
    "stock_level": 0.04,
}

# Disjoint table bases: each table's rows live in its own range.
_WAREHOUSE_BASE = 0
_DISTRICT_BASE = 10_000
_CUSTOMER_BASE = 1_000_000
_STOCK_BASE = 100_000_000
_ORDER_BASE = 200_000_000
_ORDER_LINE_BASE = 1_000_000_000
_NEW_ORDER_BASE = 2_000_000_000
_ITEM_BASE = 3_000_000_000


class TPCCWorkload:
    """TPC-C-shaped :class:`TransactionSpec` stream.

    Mirrors the :class:`~repro.workload.generator.WorkloadGenerator`
    surface (``next_transaction`` / ``stream`` / ``batch``), so it
    drops into any spec-consuming harness.

    Args:
        warehouses: scale factor; contention concentrates on one
            warehouse + district row per (w, d) pair, so fewer
            warehouses means hotter headers.
        districts: districts per warehouse (TPC-C: 10).
        customers: customers per district (TPC-C: 3000; smaller here
            by default to keep microbench working sets cache-friendly).
        items: item-table cardinality (TPC-C: 100k).
        mix: profile -> fraction overrides (normalized; defaults to
            the standard mix).
        seed: RNG seed; the stream is deterministic given it.
    """

    def __init__(
        self,
        warehouses: int = 4,
        districts: int = 10,
        customers: int = 300,
        items: int = 10_000,
        mix: Optional[Dict[str, float]] = None,
        seed: Optional[int] = None,
    ) -> None:
        if warehouses < 1 or districts < 1 or customers < 1 or items < 1:
            raise ValueError("all TPC-C cardinalities must be >= 1")
        self.warehouses = warehouses
        self.districts = districts
        self.customers = customers
        self.items = items
        self._rng = random.Random(seed)
        chosen = dict(DEFAULT_MIX)
        if mix:
            unknown = set(mix) - set(DEFAULT_MIX)
            if unknown:
                raise ValueError(f"unknown TPC-C profiles: {sorted(unknown)}")
            chosen.update(mix)
        total = sum(chosen.values())
        if total <= 0:
            raise ValueError("mix fractions must sum to > 0")
        self._profiles = list(chosen)
        self._weights = [chosen[name] / total for name in self._profiles]
        # Per-(warehouse, district) order counter: order/order-line/new-
        # order rows are *inserts*, unique per order, so they never
        # conflict — exactly TPC-C's insert-heavy tail.
        self._next_order: Dict[int, int] = {}
        #: Orders placed but not yet delivered, per (w, d) — Delivery
        #: pops the oldest (TPC-C's deferred-execution queue).
        self._undelivered: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # row addressing
    # ------------------------------------------------------------------
    def _w_row(self, w: int) -> int:
        return _WAREHOUSE_BASE + w

    def _d_row(self, w: int, d: int) -> int:
        return _DISTRICT_BASE + w * self.districts + d

    def _c_row(self, w: int, d: int, c: int) -> int:
        return (
            _CUSTOMER_BASE
            + (w * self.districts + d) * self.customers
            + c
        )

    def _stock_row(self, w: int, i: int) -> int:
        return _STOCK_BASE + w * self.items + i

    def _item_row(self, i: int) -> int:
        return _ITEM_BASE + i

    def _order_rows(self, w: int, d: int, o: int):
        slot = (w * self.districts + d) * 10_000_000 + o
        return _ORDER_BASE + slot, _NEW_ORDER_BASE + slot

    def _order_line_row(self, w: int, d: int, o: int, line: int) -> int:
        return (
            _ORDER_LINE_BASE
            + ((w * self.districts + d) * 10_000_000 + o) * 16
            + line
        )

    # ------------------------------------------------------------------
    # the five profiles
    # ------------------------------------------------------------------
    def _new_order(self, rng: random.Random) -> TransactionSpec:
        w = rng.randrange(self.warehouses)
        d = rng.randrange(self.districts)
        c = rng.randrange(self.customers)
        dd = w * self.districts + d
        order_id = self._next_order.get(dd, 0)
        self._next_order[dd] = order_id + 1
        self._undelivered.setdefault(dd, []).append(order_id)
        ops = [
            OperationSpec("r", self._w_row(w)),          # tax rate
            OperationSpec("r", self._d_row(w, d)),       # next order id
            OperationSpec("w", self._d_row(w, d)),       # ... incremented
            OperationSpec("r", self._c_row(w, d, c)),    # discount
        ]
        order_row, new_order_row = self._order_rows(w, d, order_id)
        ops.append(OperationSpec("w", order_row))
        ops.append(OperationSpec("w", new_order_row))
        for line in range(rng.randint(5, 15)):
            item = rng.randrange(self.items)
            # 1 % of lines order from a remote warehouse (TPC-C §2.4.1).
            supply_w = w
            if self.warehouses > 1 and rng.random() < 0.01:
                supply_w = rng.randrange(self.warehouses)
            ops.append(OperationSpec("r", self._item_row(item)))
            ops.append(OperationSpec("r", self._stock_row(supply_w, item)))
            ops.append(OperationSpec("w", self._stock_row(supply_w, item)))
            ops.append(
                OperationSpec("w", self._order_line_row(w, d, order_id, line))
            )
        return TransactionSpec(tuple(ops), read_only=False)

    def _payment(self, rng: random.Random) -> TransactionSpec:
        w = rng.randrange(self.warehouses)
        d = rng.randrange(self.districts)
        # 15 % of payments hit a customer of a remote warehouse.
        cw, cd = w, d
        if self.warehouses > 1 and rng.random() < 0.15:
            cw = rng.randrange(self.warehouses)
            cd = rng.randrange(self.districts)
        c = rng.randrange(self.customers)
        ops = (
            OperationSpec("r", self._w_row(w)),
            OperationSpec("w", self._w_row(w)),          # ytd += amount
            OperationSpec("r", self._d_row(w, d)),
            OperationSpec("w", self._d_row(w, d)),       # ytd += amount
            OperationSpec("r", self._c_row(cw, cd, c)),
            OperationSpec("w", self._c_row(cw, cd, c)),  # balance -= amount
        )
        return TransactionSpec(ops, read_only=False)

    def _order_status(self, rng: random.Random) -> TransactionSpec:
        w = rng.randrange(self.warehouses)
        d = rng.randrange(self.districts)
        c = rng.randrange(self.customers)
        dd = w * self.districts + d
        last_order = self._next_order.get(dd, 0) - 1
        ops = [OperationSpec("r", self._c_row(w, d, c))]
        if last_order >= 0:
            order_row, _ = self._order_rows(w, d, last_order)
            ops.append(OperationSpec("r", order_row))
            for line in range(rng.randint(5, 15)):
                ops.append(
                    OperationSpec(
                        "r", self._order_line_row(w, d, last_order, line)
                    )
                )
        return TransactionSpec(tuple(ops), read_only=True)

    def _delivery(self, rng: random.Random) -> TransactionSpec:
        w = rng.randrange(self.warehouses)
        ops: List[OperationSpec] = []
        # One batch delivers the oldest undelivered order of every
        # district of the warehouse (TPC-C's deferred delivery txn).
        for d in range(self.districts):
            queue = self._undelivered.get(w * self.districts + d)
            if not queue:
                continue
            order_id = queue.pop(0)
            order_row, new_order_row = self._order_rows(w, d, order_id)
            c = rng.randrange(self.customers)
            ops.append(OperationSpec("r", new_order_row))
            ops.append(OperationSpec("w", new_order_row))   # delete marker
            ops.append(OperationSpec("w", order_row))       # carrier id
            ops.append(OperationSpec("r", self._c_row(w, d, c)))
            ops.append(OperationSpec("w", self._c_row(w, d, c)))
        if not ops:
            # Nothing queued anywhere in the warehouse: a no-op read of
            # the warehouse row (keeps the stream total-ordered).
            ops.append(OperationSpec("r", self._w_row(w)))
            return TransactionSpec(tuple(ops), read_only=True)
        return TransactionSpec(tuple(ops), read_only=False)

    def _stock_level(self, rng: random.Random) -> TransactionSpec:
        w = rng.randrange(self.warehouses)
        d = rng.randrange(self.districts)
        ops = [OperationSpec("r", self._d_row(w, d))]
        for _ in range(rng.randint(10, 20)):
            ops.append(
                OperationSpec("r", self._stock_row(w, rng.randrange(self.items)))
            )
        return TransactionSpec(tuple(ops), read_only=True)

    # ------------------------------------------------------------------
    # WorkloadGenerator surface
    # ------------------------------------------------------------------
    def next_transaction(self) -> TransactionSpec:
        profile = self._rng.choices(self._profiles, weights=self._weights)[0]
        return getattr(self, f"_{profile}")(self._rng)

    def stream(self, count: int):
        for _ in range(count):
            yield self.next_transaction()

    def batch(self, count: int) -> List[TransactionSpec]:
        return list(self.stream(count))


def tpcc(
    warehouses: int = 4,
    seed: Optional[int] = None,
    **kwargs,
) -> TPCCWorkload:
    """Convenience constructor mirroring :func:`complex_workload`."""
    return TPCCWorkload(warehouses=warehouses, seed=seed, **kwargs)
