"""E6b (ablation) — zipfianLatest key layout: hashed vs ordered inserts.

EXPERIMENTS.md notes that the paper's Figure 9 point (saturation at 40
clients, 361 TPS) cannot be pinned to a single queueing bottleneck, and
that our two implementable YCSB key layouts bracket it:

* **hashed** (YCSB default, used in E6): the recent hot set scatters
  over all region servers; saturation comes late, from aggregate disk.
* **ordered** (orderedinserts=true): insertion order *is* key order, so
  the recent hot set lives in one region — HBase's classic hot-tail
  antipattern.  One server saturates at a handful of clients while the
  other 24 idle.

This ablation runs both and verifies the bracketing: ordered saturates
at (or before) the paper's 40-client knee with far lower throughput and
a pathological load imbalance; hashed saturates later and higher.
"""

import pytest

from repro.bench import format_table, knee_index
from repro.sim.cluster_sim import ClusterSim
from repro.workload.distributions import LatestDistribution

CLIENTS = [5, 10, 20, 40, 80, 160]


def run_layout(layout: str):
    results = []
    for n in CLIENTS:
        sim = ClusterSim(
            level="wsi",
            distribution="zipfianLatest",
            num_clients=n,
            measure=6.0,
            warmup=1.0,
            seed=42,
        )
        # swap the key distribution's layout in place (the generator owns
        # a LatestDistribution when distribution == zipfianLatest)
        keys = sim.workload._keys
        assert isinstance(keys, LatestDistribution)
        keys.layout = layout
        results.append(sim.run())
    return results


@pytest.mark.figure("latest-layout")
def test_e6b_hot_tail_vs_hashed_layout(benchmark, print_header):
    hashed, ordered = benchmark.pedantic(
        lambda: (run_layout("hashed"), run_layout("ordered")),
        rounds=1,
        iterations=1,
    )
    print_header("E6b — zipfianLatest layout ablation: hashed vs ordered inserts")
    rows = [
        (
            h.num_clients,
            f"{h.throughput_tps:.0f}",
            f"{h.avg_latency_ms:.0f}",
            f"{o.throughput_tps:.0f}",
            f"{o.avg_latency_ms:.0f}",
            f"{o.server_utilization_max:.2f}/{o.server_utilization_mean:.2f}",
        )
        for h, o in zip(hashed, ordered)
    ]
    print(
        format_table(
            [
                "clients",
                "hashed TPS",
                "hashed ms",
                "ordered TPS",
                "ordered ms",
                "ordered util max/mean",
            ],
            rows,
            title="paper Fig. 9 anchor: 361 TPS @ 110 ms at 40 clients "
            "(bracketed by the two layouts)",
        )
    )

    hashed_tps = [r.throughput_tps for r in hashed]
    ordered_tps = [r.throughput_tps for r in ordered]
    # The hot-tail layout saturates no later than the 40-client knee...
    assert knee_index(ordered_tps) <= CLIENTS.index(40)
    # ...at much lower throughput than the hashed layout at scale.
    assert ordered_tps[-1] < 0.5 * hashed_tps[-1]
    # The bracketing: paper's 361 TPS lies between the two layouts' peaks.
    assert max(ordered_tps) < 361 < max(hashed_tps) * 1.6
    # The hotspot is visible as load imbalance: one server pinned while
    # the mean stays low.
    sat = ordered[-1]
    assert sat.server_utilization_max > 0.95
    assert sat.server_utilization_mean < 0.6 * sat.server_utilization_max
