"""Conflict predicates: the paper's definitions, executable.

Section 2 defines the *snapshot isolation* conflict between transactions
``txn_i`` and ``txn_j``:

1. **Spatial overlap** — both write into some row ``r``;
2. **Temporal overlap** — ``Ts(txn_i) < Tc(txn_j)`` and
   ``Ts(txn_j) < Tc(txn_i)`` (their lifetimes intersect).

Section 4.1 defines the *write-snapshot isolation* conflict:

1. **RW-spatial overlap** — ``txn_j`` writes into a row ``r`` that
   ``txn_i`` reads;
2. **RW-temporal overlap** — ``Ts(txn_i) < Tc(txn_j) < Tc(txn_i)``
   (``txn_j`` commits *during the lifetime* of ``txn_i``);
3. **Not read-only** — neither transaction is read-only (the
   optimization of Section 4.1 that lets read-only transactions never
   abort).

These predicates operate on :class:`TxnFootprint` records — the minimal
description of a finished transaction — and are shared by the history
checkers, the tests, and the documentation examples.  The *oracles* in
:mod:`repro.core.status_oracle` implement the same logic incrementally
(via ``lastCommit``) for performance; a property-based test asserts the
two formulations agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Optional

RowKey = Hashable


@dataclass(frozen=True)
class TxnFootprint:
    """What conflict detection needs to know about a transaction.

    Attributes:
        txn_id: identifier (conventionally the start timestamp).
        start_ts: start timestamp ``Ts``.
        commit_ts: commit timestamp ``Tc`` (``None`` if not committed).
        read_set: rows read.
        write_set: rows written.
    """

    txn_id: int
    start_ts: int
    commit_ts: Optional[int]
    read_set: FrozenSet[RowKey] = frozenset()
    write_set: FrozenSet[RowKey] = frozenset()

    @property
    def is_read_only(self) -> bool:
        """A transaction is read-only iff its write set is empty (§4.1)."""
        return not self.write_set

    @property
    def committed(self) -> bool:
        return self.commit_ts is not None


def spatial_overlap(a: TxnFootprint, b: TxnFootprint) -> bool:
    """SI spatial overlap: both transactions write a common row."""
    return bool(a.write_set & b.write_set)


def temporal_overlap(a: TxnFootprint, b: TxnFootprint) -> bool:
    """SI temporal overlap: Ts(a) < Tc(b) and Ts(b) < Tc(a).

    Requires both commit timestamps; an uncommitted transaction has no
    temporal extent to overlap with (the oracle only ever compares
    against *committed* transactions).
    """
    if a.commit_ts is None or b.commit_ts is None:
        return False
    return a.start_ts < b.commit_ts and b.start_ts < a.commit_ts


def ww_conflict(a: TxnFootprint, b: TxnFootprint) -> bool:
    """Write-write conflict under snapshot isolation (§2)."""
    return spatial_overlap(a, b) and temporal_overlap(a, b)


def rw_spatial_overlap(reader: TxnFootprint, writer: TxnFootprint) -> bool:
    """WSI rw-spatial overlap: ``writer`` writes a row ``reader`` reads.

    Note the asymmetry — this is directional, unlike SI's spatial overlap.
    """
    return bool(reader.read_set & writer.write_set)


def rw_temporal_overlap(reader: TxnFootprint, writer: TxnFootprint) -> bool:
    """WSI rw-temporal overlap: Ts(reader) < Tc(writer) < Tc(reader).

    ``writer`` must commit strictly inside ``reader``'s lifetime.  This is
    *narrower* than SI temporal overlap: a writer that commits after the
    reader commits does not conflict (txn_c'' in Figure 2).
    """
    if reader.commit_ts is None or writer.commit_ts is None:
        return False
    return reader.start_ts < writer.commit_ts < reader.commit_ts


def rw_conflict(a: TxnFootprint, b: TxnFootprint) -> bool:
    """Read-write conflict under write-snapshot isolation (§4.1).

    Symmetric wrapper: a and b conflict if either ordering makes one of
    them a conflicting (reader, writer) pair, and neither is read-only
    (condition 3, the read-only optimization).
    """
    if a.is_read_only or b.is_read_only:
        return False
    return _directional_rw(a, b) or _directional_rw(b, a)


def _directional_rw(reader: TxnFootprint, writer: TxnFootprint) -> bool:
    return rw_spatial_overlap(reader, writer) and rw_temporal_overlap(
        reader, writer
    )


def conflicts_under(
    level: str, a: TxnFootprint, b: TxnFootprint
) -> bool:
    """Dispatch: does (a, b) conflict under isolation level ``level``?

    ``level`` is ``"si"`` or ``"wsi"`` (see :mod:`repro.core.isolation`).
    """
    if level == "si":
        return ww_conflict(a, b)
    if level == "wsi":
        return rw_conflict(a, b)
    raise ValueError(f"unknown isolation level {level!r}")
