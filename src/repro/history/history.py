"""Histories: interleaved transaction executions in Berenson notation.

Section 3: "A history represents the interleaved execution of transactions
as a linear ordering of their operations [5]"; the paper writes histories
in the notation of the ANSI-critique paper — ``w1[x]`` / ``r1[x]`` for a
write/read by txn 1 on item x, ``c1`` / ``a1`` for its commit/abort.

:func:`parse_history` accepts exactly that syntax, so the paper's
histories paste straight into code::

    H2 = parse_history("r1[x] r1[y] r2[x] r2[y] w1[x] w2[y] c1 c2")
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.errors import InvariantViolation


@dataclass(frozen=True)
class Operation:
    """One step of a history.

    Attributes:
        kind: 'r' (read), 'w' (write), 'c' (commit), 'a' (abort).
        txn: transaction number.
        item: data item for r/w; None for c/a.
    """

    kind: str
    txn: int
    item: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("r", "w", "c", "a"):
            raise ValueError(f"unknown operation kind {self.kind!r}")
        if self.kind in ("r", "w") and self.item is None:
            raise ValueError(f"{self.kind}-operation requires an item")
        if self.kind in ("c", "a") and self.item is not None:
            raise ValueError(f"{self.kind}-operation takes no item")

    def __str__(self) -> str:
        if self.item is not None:
            return f"{self.kind}{self.txn}[{self.item}]"
        return f"{self.kind}{self.txn}"


def read(txn: int, item: str) -> Operation:
    """Shorthand constructor: ``read(1, 'x')`` == ``r1[x]``."""
    return Operation("r", txn, item)


def write(txn: int, item: str) -> Operation:
    """Shorthand constructor: ``write(1, 'x')`` == ``w1[x]``."""
    return Operation("w", txn, item)


def commit(txn: int) -> Operation:
    """Shorthand constructor: ``commit(1)`` == ``c1``."""
    return Operation("c", txn)


def abort(txn: int) -> Operation:
    """Shorthand constructor: ``abort(1)`` == ``a1``."""
    return Operation("a", txn)


_TOKEN = re.compile(r"([rw])(\d+)\[([^\]]+)\]|([ca])(\d+)")


def parse_history(text: str) -> "History":
    """Parse Berenson notation: ``"r1[x] w2[y] c1 c2"`` -> History."""
    ops: List[Operation] = []
    pos = 0
    for match in _TOKEN.finditer(text):
        between = text[pos:match.start()]
        if between.strip():
            raise ValueError(f"unparseable history fragment {between!r}")
        pos = match.end()
        if match.group(1):
            ops.append(Operation(match.group(1), int(match.group(2)), match.group(3)))
        else:
            ops.append(Operation(match.group(4), int(match.group(5))))
    rest = text[pos:]
    if rest.strip():
        raise ValueError(f"unparseable history fragment {rest!r}")
    if not ops:
        raise ValueError("empty history")
    return History(ops)


class History:
    """An ordered sequence of operations plus derived per-txn views."""

    def __init__(self, operations: Sequence[Operation]) -> None:
        self.operations: Tuple[Operation, ...] = tuple(operations)
        self._validate()

    def _validate(self) -> None:
        terminated: Set[int] = set()
        seen: Set[int] = set()
        for op in self.operations:
            if op.txn in terminated:
                raise ValueError(
                    f"operation {op} after txn {op.txn} already terminated"
                )
            seen.add(op.txn)
            if op.kind in ("c", "a"):
                terminated.add(op.txn)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def transactions(self) -> List[int]:
        """Transaction numbers in order of first appearance."""
        seen: List[int] = []
        for op in self.operations:
            if op.txn not in seen:
                seen.append(op.txn)
        return seen

    def operations_of(self, txn: int) -> List[Operation]:
        return [op for op in self.operations if op.txn == txn]

    def read_set(self, txn: int) -> FrozenSet[str]:
        return frozenset(
            op.item for op in self.operations
            if op.txn == txn and op.kind == "r" and op.item is not None
        )

    def write_set(self, txn: int) -> FrozenSet[str]:
        return frozenset(
            op.item for op in self.operations
            if op.txn == txn and op.kind == "w" and op.item is not None
        )

    def is_committed(self, txn: int) -> bool:
        return any(op.kind == "c" and op.txn == txn for op in self.operations)

    def is_aborted(self, txn: int) -> bool:
        return any(op.kind == "a" and op.txn == txn for op in self.operations)

    def committed_transactions(self) -> List[int]:
        return [t for t in self.transactions if self.is_committed(t)]

    def items(self) -> FrozenSet[str]:
        return frozenset(
            op.item for op in self.operations if op.item is not None
        )

    def commit_order(self) -> List[int]:
        """Committed transactions in commit order."""
        return [op.txn for op in self.operations if op.kind == "c"]

    def index_of(self, op: Operation) -> int:
        return self.operations.index(op)

    # positions --------------------------------------------------------
    def start_position(self, txn: int) -> int:
        """Index of the txn's first operation (its start point)."""
        for i, op in enumerate(self.operations):
            if op.txn == txn:
                return i
        raise KeyError(f"txn {txn} not in history")

    def commit_position(self, txn: int) -> Optional[int]:
        for i, op in enumerate(self.operations):
            if op.txn == txn and op.kind == "c":
                return i
        return None

    def are_concurrent(self, a: int, b: int) -> bool:
        """Two transactions are concurrent if their [start, end] spans
        intersect in the interleaving."""
        spans = []
        for t in (a, b):
            start = self.start_position(t)
            end_ops = [
                i for i, op in enumerate(self.operations)
                if op.txn == t and op.kind in ("c", "a")
            ]
            end = end_ops[0] if end_ops else len(self.operations)
            spans.append((start, end))
        (s1, e1), (s2, e2) = spans
        return s1 < e2 and s2 < e1

    def is_serial(self) -> bool:
        """Serial = no two transactions are concurrent (§3)."""
        txns = self.transactions
        return not any(
            self.are_concurrent(a, b)
            for i, a in enumerate(txns)
            for b in txns[i + 1:]
        )

    # ------------------------------------------------------------------
    # reads-from semantics (multiversion, commit-time version order)
    # ------------------------------------------------------------------
    def reads_from(self, snapshot_reads: bool = True) -> Dict[Tuple[int, str], Optional[int]]:
        """For every (reader txn, item) first-read, which txn wrote the
        version it observes; ``None`` means the initial version.

        With ``snapshot_reads=True`` (the paper's MVCC systems) a read by
        txn ``t`` observes the newest version committed *before t's start
        point*, or t's own earlier write.  With ``False`` reads observe
        the latest physical write preceding them (single-version
        semantics, for contrast).
        """
        result: Dict[Tuple[int, str], Optional[int]] = {}
        commit_pos = {t: self.commit_position(t) for t in self.transactions}
        for i, op in enumerate(self.operations):
            if op.kind != "r":
                continue
            key = (op.txn, op.item)
            if key in result:
                continue  # snapshot: repeated reads observe the same version
            if op.item is None:
                raise InvariantViolation(f"read op by txn {op.txn} has no item")
            if snapshot_reads:
                result[key] = self._snapshot_writer(op.txn, op.item, i)
            else:
                result[key] = self._physical_writer(op.item, i)
        return result

    def _snapshot_writer(self, reader: int, item: str, read_idx: int) -> Optional[int]:
        # Own write first (a transaction observes its own changes).
        for j in range(read_idx - 1, -1, -1):
            prev = self.operations[j]
            if prev.txn == reader and prev.kind == "w" and prev.item == item:
                return reader
        start = self.start_position(reader)
        # Newest writer of `item` that committed before `start`.
        best: Optional[int] = None
        best_commit = -1
        for writer in self.transactions:
            if writer == reader or item not in self.write_set(writer):
                continue
            cpos = self.commit_position(writer)
            if cpos is not None and cpos < start and cpos > best_commit:
                best, best_commit = writer, cpos
        return best

    def _physical_writer(self, item: str, read_idx: int) -> Optional[int]:
        for j in range(read_idx - 1, -1, -1):
            prev = self.operations[j]
            if prev.kind == "w" and prev.item == item and not self.is_aborted(prev.txn):
                return prev.txn
        return None

    def final_writer(self, item: str) -> Optional[int]:
        """Which committed txn installs the final version of ``item``.

        Multiversion semantics: the committed writer with the greatest
        commit timestamp (= latest commit position).
        """
        best: Optional[int] = None
        best_commit = -1
        for writer in self.committed_transactions():
            if item in self.write_set(writer):
                cpos = self.commit_position(writer)
                if cpos is None:
                    raise InvariantViolation(
                        f"committed txn {writer} has no commit position"
                    )
                if cpos > best_commit:
                    best, best_commit = writer, cpos
        return best

    # ------------------------------------------------------------------
    # dunder / display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return " ".join(str(op) for op in self.operations)

    def __repr__(self) -> str:
        return f"History({self})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, History) and self.operations == other.operations

    def __hash__(self) -> int:
        return hash(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)
