#!/usr/bin/env python3
"""Lock-based vs lock-free: what happens when a client dies mid-commit.

§2.1's critique made concrete.  A Percolator-style client crashes
between its two 2PC phases, leaving locks on the data; later
transactions stall against those locks until the primary-lock protocol
resolves them.  The lock-free status-oracle design has no such state: a
dead client's writes simply never commit, and nobody else notices.

Run:  python examples/percolator_outage.py
"""

from repro import create_system
from repro.core.errors import ConflictAbort
from repro.percolator import LockPolicy, PercolatorTransactionManager


def percolator_story() -> None:
    print("=== Percolator (lock-based snapshot isolation) ===")
    manager = PercolatorTransactionManager()

    victim = manager.begin()
    victim.write("inventory:widget", 10)
    victim.write("ledger:widget", "restock")
    rows = sorted(victim.write_set, key=repr)
    victim.prewrite(rows[0], rows)
    print("client acquired locks on", rows)
    victim.crash()
    print("client CRASHED between 2PC phases — locks remain\n")

    # An impatient writer with abort-self policy gets hurt immediately.
    impatient = manager.begin(lock_policy=LockPolicy.ABORT_SELF)
    impatient.write("inventory:widget", 99)
    try:
        impatient.commit()
    except ConflictAbort as exc:
        print("impatient writer:", exc)

    # A reader triggers the primary-lock resolution protocol.
    reader = manager.begin()
    value = reader.read("inventory:widget")
    print(f"reader resolved the dangling lock, sees {value!r} "
          f"(resolutions so far: {manager.resolution_count})")

    # Now the row is unlocked and life goes on.
    retry = manager.begin()
    retry.write("inventory:widget", 99)
    retry.commit()
    print("retry committed after cleanup:", manager.begin().read("inventory:widget"))


def lock_free_story() -> None:
    print("\n=== Lock-free status oracle (the paper's design) ===")
    system = create_system("si")

    victim = system.manager.begin()
    victim.write("inventory:widget", 10)
    print("client wrote uncommitted data at its start timestamp")
    # ... and dies without ever sending a commit request.  No locks exist.

    writer = system.manager.begin()
    writer.write("inventory:widget", 99)
    writer.commit()
    print("concurrent writer committed instantly — nothing to wait on")

    reader = system.manager.begin()
    print("reader sees", reader.read("inventory:widget"),
          "(the dead client's version is skipped: never committed)")


def main() -> None:
    percolator_story()
    lock_free_story()
    print(
        "\nThe lock-free design avoids both costs the paper identifies:"
        "\nno progress-blocking dangling locks, and no resolution traffic"
        "\nagainst the data servers (§2.1, §7.2)."
    )


if __name__ == "__main__":
    main()
