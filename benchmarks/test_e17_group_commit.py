"""E17 — group-commit frontend: batched vs. unbatched oracle throughput.

Not a paper figure: this measures the repo's own `repro.server` frontend
against the seed's per-request oracle, wall-clock (real CPU), on the
uniform complex workload.  §6.3/Appendix A ground the expectation — the
status oracle only reaches its reported throughput because the critical
section and the BookKeeper write are amortized over many requests.

Baselines:

* ``unbatched-durable`` — one WAL append *and* one replicated ledger
  write per decision (no group commit at any layer).  The acceptance
  target: the batched frontend must beat this ≥ 2.5x at batch size 32
  (measured ~3x on a quiet machine).
* ``unbatched`` — the seed default, whose WAL already batches records
  into 1 KB ledger entries underneath (Appendix A at the WAL layer only).

The speedup assertion uses the median of paired (baseline, batched)
measurements — the absolute numbers wobble with machine noise, the
paired ratios do not.
"""

import os

import pytest

from repro.bench import format_table
from repro.bench.snapshot import record
from repro.bench.frontend_bench import (
    bench_batched,
    bench_unbatched,
    make_specs,
    median_speedup,
    paired_speedups,
    speedup,
    sweep_batch_sizes,
)

BATCH_SIZES = (8, 32, 128)

# ``make bench-smoke`` (REPRO_BENCH_SMOKE=1): tiny sizes, relaxed bar —
# a fast perf sanity check, not the acceptance measurement.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NUM_REQUESTS = 5_000 if SMOKE else 30_000
PAIRS = 2 if SMOKE else 5
#: best-of-REPEATS per pair side (see ``paired_speedups``): on a shared
#: box a co-scheduled burst can sink one side of a pair and drag the
#: median under the bar even though the true ratio clears it.
REPEATS = 1 if SMOKE else 3
#: The measured median sits at ~3x on a quiet machine, but unlike the
#: E18-E21 bars this one used to *equal* the point estimate, so slow
#: machine phases failed it on unchanged code (the committed baseline
#: itself straddled 3.0x).  2.5x keeps the order-of-magnitude claim
#: with the same noise margin the sibling benchmarks carry.
SPEEDUP_BAR = 2.5 if SMOKE else 2.5


@pytest.mark.figure("e17")
def test_e17_group_commit_speedup(benchmark, print_header):
    ratios = benchmark.pedantic(
        lambda: paired_speedups(
            level="wsi",
            batch_size=32,
            pairs=PAIRS,
            num_requests=NUM_REQUESTS,
            repeats=REPEATS,
        ),
        rounds=1,
        iterations=1,
    )
    print_header("E17 — group-commit frontend vs unbatched oracle (wall clock)")

    specs = make_specs(NUM_REQUESTS)
    rows = []
    for level in ("si", "wsi"):
        rows.append(
            bench_unbatched(level, specs, durable_acks=True, repeats=2).as_row()
        )
        rows.append(bench_unbatched(level, specs, repeats=2).as_row())
        for batch_size in BATCH_SIZES:
            rows.append(
                bench_batched(level, specs, batch_size=batch_size, repeats=2).as_row()
            )
        rows.append(
            bench_batched(
                level, specs, batch_size=32, use_futures=True, repeats=2
            ).as_row()
        )
    print(
        format_table(
            ["level", "mode", "batch", "ops/s", "us/op", "wal recs", "ledger writes"],
            rows,
            title=f"uniform complex workload, 2M rows, {NUM_REQUESTS} commit requests",
        )
    )
    print()
    print("paired WSI speedups at batch 32 (vs per-record durability):")
    print("  " + "  ".join(f"{r:.2f}x" for r in ratios))
    print(
        f"  median: {median_speedup(ratios):.2f}x "
        f"(acceptance bar: {SPEEDUP_BAR}x)"
    )

    # Acceptance: batched frontend >= 2.5x the unbatched oracle at batch 32
    # (WSI, uniform workload), median of paired runs.
    assert median_speedup(ratios) >= SPEEDUP_BAR
    record("e17", median_speedup=median_speedup(ratios), bar=SPEEDUP_BAR)


@pytest.mark.figure("e17")
def test_e17_batch_size_sweep_monotone(print_header):
    print_header("E17b — batch-size sweep (WSI + SI, seed-default WAL baseline)")
    for level in ("si", "wsi"):
        results = sweep_batch_sizes(level, batch_sizes=BATCH_SIZES, repeats=2)
        print(
            format_table(
                ["level", "mode", "batch", "ops/s", "us/op", "wal recs", "entries"],
                [r.as_row() for r in results],
            )
        )
        # Even against the WAL-internally-batching baseline the frontend
        # must win clearly at batch 32, and decisions must be identical.
        assert speedup(results, 32) >= 1.3
        baseline = results[0]
        for batched in results[1:]:
            assert batched.commits == baseline.commits
            assert batched.aborts == baseline.aborts
        # group commit: one logical WAL record per batch
        b32 = next(r for r in results if r.batch_size == 32)
        assert b32.wal_records <= baseline.wal_records / 16


@pytest.mark.figure("e17")
def test_e17_partitioned_frontend(print_header):
    """The frontend composes with the partitioned oracle (and gives it a
    WAL it otherwise lacks); throughput is informational here — the
    speedup claim is for the plain oracles."""
    print_header("E17c — frontend over the partitioned oracle (4 partitions)")
    specs = make_specs(num_requests=10_000)
    results = [bench_unbatched("wsi", specs, partitions=4)] + [
        bench_batched("wsi", specs, batch_size=b, partitions=4)
        for b in BATCH_SIZES
    ]
    print(
        format_table(
            ["level", "mode", "batch", "ops/s", "us/op", "wal recs", "entries"],
            [r.as_row() for r in results],
        )
    )
    baseline = results[0]
    for batched in results[1:]:
        assert batched.commits == baseline.commits
        assert batched.aborts == baseline.aborts
        # routing through the frontend costs little even with no fast path
        assert batched.ops_per_sec >= 0.5 * baseline.ops_per_sec
        assert batched.wal_records > 0  # the partitioned oracle gained a WAL
