"""Machine-readable benchmark snapshots.

The figure benchmarks print human tables; CI and the ``make
bench-smoke`` gate also want the headline numbers in a stable,
diffable form.  When ``REPRO_BENCH_SNAPSHOT`` names a file, each
benchmark calls :func:`record` with its experiment id and headline
metrics (speedup ratios, throughputs, takeover costs); the calls
merge into one JSON document::

    {
      "e17": {"median_speedup": 4.1, "bar": 3.0},
      ...
      "e22": {"warm_over_cold": 11.2, "overload_sustain": 0.93, ...}
    }

Merging is read-modify-write per call, so it composes across separate
pytest processes appending to the same snapshot file.  Without the
environment variable :func:`record` is a no-op — the benchmarks stay
usable standalone.

Two snapshots exist by convention: ``make bench-smoke`` writes
``BENCH_smoke.json`` (tiny sizes, *committed* — behaviour drift shows
up as a diff), and full ``make bench`` runs write ``BENCH_full.json``
(real figure sizes, uncommitted/.gitignored — the numbers are
hardware-bound, the file is for local before/after comparisons).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

#: Environment variable naming the snapshot file (no-op when unset).
SNAPSHOT_ENV = "REPRO_BENCH_SNAPSHOT"


def snapshot_path() -> str | None:
    path = os.environ.get(SNAPSHOT_ENV)
    return path or None


def record(experiment: str, **metrics: Any) -> None:
    """Merge one experiment's headline metrics into the snapshot file.

    Values must be JSON-serialisable; floats are rounded to 4 places so
    snapshots diff cleanly run-to-run at equal behaviour.
    """
    path = snapshot_path()
    if path is None:
        return
    document: Dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (ValueError, OSError):
            document = {}
    entry = document.setdefault(experiment, {})
    for key, value in metrics.items():
        if isinstance(value, float):
            value = round(value, 4)
        entry[key] = value
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
