"""Property tests for the substrates: store, regions, TSO, WAL, snapshot."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.commit_table import CommitTable
from repro.core.timestamps import TimestampOracle
from repro.mvcc.region import RegionMap
from repro.mvcc.snapshot import SnapshotReader
from repro.mvcc.store import MVCCStore
from repro.wal.bookkeeper import BookKeeperWAL


# ----------------------------------------------------------------------
# MVCCStore: model-based against a plain dict
# ----------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete_version"]),
            st.integers(min_value=0, max_value=5),   # row
            st.integers(min_value=1, max_value=20),  # ts
        ),
        max_size=60,
    ),
    query_ts=st.integers(min_value=0, max_value=25),
)
@settings(max_examples=200, deadline=None)
def test_store_matches_dict_model(ops, query_ts):
    store = MVCCStore()
    model: dict = {}
    for op, row, ts in ops:
        if op == "put":
            store.put(row, ts, (row, ts))
            model.setdefault(row, {})[ts] = (row, ts)
        else:
            store.delete_version(row, ts)
            model.get(row, {}).pop(ts, None)
    for row in range(6):
        got = [(v.timestamp, v.value) for v in store.get_versions(row, query_ts)]
        expected = sorted(
            ((ts, val) for ts, val in model.get(row, {}).items() if ts <= query_ts),
            reverse=True,
        )
        assert got == expected


@given(
    timestamps=st.lists(
        st.integers(min_value=1, max_value=100), min_size=1, max_size=30
    ),
    boundary=st.integers(min_value=1, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_compaction_preserves_reads_at_boundary(timestamps, boundary):
    store = MVCCStore()
    for ts in timestamps:
        store.put("r", ts, ts)
    before = [(v.timestamp, v.value) for v in store.get_versions("r", boundary)][:1]
    store.compact("r", keep_after=boundary)
    after = [(v.timestamp, v.value) for v in store.get_versions("r", boundary)][:1]
    assert before == after  # the visible version at the boundary survives


# ----------------------------------------------------------------------
# RegionMap: tiling invariant + routing consistency under random splits
# ----------------------------------------------------------------------
@given(
    splits=st.lists(st.integers(min_value=-50, max_value=50), max_size=40),
    probes=st.lists(st.integers(min_value=-60, max_value=60), max_size=20),
)
@settings(max_examples=200, deadline=None)
def test_region_map_tiles_keyspace(splits, probes):
    rmap = RegionMap(num_servers=3)
    for key in splits:
        rmap.split(key)
    rmap.check_invariants()
    for key in probes:
        region = rmap.region_for(key)
        assert region.contains(key)


# ----------------------------------------------------------------------
# TimestampOracle: monotonic through arbitrary crash points
# ----------------------------------------------------------------------
@given(
    segments=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=6),
    batch=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=150, deadline=None)
def test_tso_monotonic_across_crashes(segments, batch):
    marks = []
    tso = TimestampOracle(reservation_batch=batch, wal_append=marks.append)
    issued = []
    for count in segments:
        for _ in range(count):
            issued.append(tso.next())
        # crash + recover from the last persisted mark
        tso = TimestampOracle.recover(
            marks[-1], reservation_batch=batch, wal_append=marks.append
        )
    assert issued == sorted(set(issued))  # strictly increasing, no dupes


# ----------------------------------------------------------------------
# WAL: replay is a prefix-closed, order-preserving record of appends
# ----------------------------------------------------------------------
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=600), max_size=50),
    final_flush=st.booleans(),
)
@settings(max_examples=150, deadline=None)
def test_wal_replay_order_and_prefix(sizes, final_flush):
    wal = BookKeeperWAL()
    for i, size in enumerate(sizes):
        wal.append("commit", i, size=size)
    if final_flush:
        wal.flush()
    replayed = [r.payload for r in wal.replay()]
    assert replayed == list(range(len(replayed)))  # order, prefix
    if final_flush:
        assert len(replayed) == len(sizes)


# ----------------------------------------------------------------------
# SnapshotReader: never returns uncommitted/aborted/future data
# ----------------------------------------------------------------------
@given(
    writers=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=40),  # start ts
            st.sampled_from(["committed", "aborted", "running"]),
        ),
        max_size=15,
    ),
    snapshot_ts=st.integers(min_value=1, max_value=60),
)
@settings(max_examples=200, deadline=None)
def test_snapshot_reader_visibility_contract(writers, snapshot_ts):
    store = MVCCStore()
    commits = CommitTable()
    next_commit = 100
    status = {}
    for start, state in writers:
        if start in status:
            continue  # duplicate start ts not meaningful
        store.put("row", start, (start, state))
        status[start] = state
        if state == "committed":
            commits.record_commit(start, next_commit)
            next_commit += 1
        elif state == "aborted":
            commits.record_abort(start)
    reader = SnapshotReader(store, commits)
    version = reader.read("row", snapshot_ts)
    if version is not None:
        start, state = version.value
        assert state == "committed"
        assert commits.commit_timestamp(start) < snapshot_ts
