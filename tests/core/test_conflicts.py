"""Unit tests for the conflict predicates (paper §2 and §4.1)."""

import pytest

from repro.core.conflicts import (
    TxnFootprint,
    conflicts_under,
    rw_conflict,
    rw_spatial_overlap,
    rw_temporal_overlap,
    spatial_overlap,
    temporal_overlap,
    ww_conflict,
)


def txn(start, commit, reads=(), writes=()):
    return TxnFootprint(
        txn_id=start,
        start_ts=start,
        commit_ts=commit,
        read_set=frozenset(reads),
        write_set=frozenset(writes),
    )


class TestSpatialOverlap:
    def test_common_write_row(self):
        assert spatial_overlap(txn(1, 5, writes={"x"}), txn(2, 6, writes={"x"}))

    def test_disjoint_write_sets(self):
        assert not spatial_overlap(txn(1, 5, writes={"x"}), txn(2, 6, writes={"y"}))

    def test_read_does_not_count(self):
        # SI spatial overlap is about writes only.
        assert not spatial_overlap(
            txn(1, 5, reads={"x"}), txn(2, 6, writes={"x"})
        )


class TestTemporalOverlap:
    def test_interleaved_lifetimes(self):
        assert temporal_overlap(txn(1, 10), txn(5, 15))

    def test_disjoint_lifetimes(self):
        # txn B starts after txn A committed.
        assert not temporal_overlap(txn(1, 4), txn(5, 10))

    def test_nested_lifetimes(self):
        assert temporal_overlap(txn(1, 20), txn(5, 10))

    def test_uncommitted_never_overlaps(self):
        assert not temporal_overlap(txn(1, None), txn(2, 5))

    def test_symmetric(self):
        a, b = txn(1, 10), txn(5, 15)
        assert temporal_overlap(a, b) == temporal_overlap(b, a)


class TestWWConflict:
    def test_figure1_conflict(self):
        # Figure 1: txn_n and txn_c both write row r with temporal overlap.
        txn_n = txn(5, 12, writes={"r"})
        txn_c = txn(3, 10, writes={"r"})
        assert ww_conflict(txn_n, txn_c)

    def test_no_conflict_when_serial(self):
        old = txn(1, 2, writes={"r"})
        new = txn(3, 4, writes={"r"})
        assert not ww_conflict(old, new)


class TestRWOverlaps:
    def test_rw_spatial_is_directional(self):
        reader = txn(1, 10, reads={"r"})
        writer = txn(2, 8, writes={"r"})
        assert rw_spatial_overlap(reader, writer)
        assert not rw_spatial_overlap(writer, reader)

    def test_rw_temporal_requires_commit_inside_lifetime(self):
        reader = txn(1, 10)
        inside = txn(2, 5)
        after = txn(2, 15)
        assert rw_temporal_overlap(reader, inside)
        assert not rw_temporal_overlap(reader, after)

    def test_figure2_txn_c_doubleprime_no_overlap(self):
        # txn_c'' commits after txn_n commits: no rw-temporal overlap even
        # though SI's temporal overlap would hold.
        txn_n = txn(5, 10, reads={"r"}, writes={"q"})
        txn_c2 = txn(6, 15, writes={"r", "p"})
        assert temporal_overlap(txn_n, txn_c2)
        assert not rw_temporal_overlap(txn_n, txn_c2)
        assert not rw_conflict(txn_n, txn_c2)

    def test_figure2_txn_c_prime_conflicts(self):
        # txn_c' commits during txn_n's lifetime and writes txn_n's read row.
        txn_n = txn(5, 12, reads={"r"}, writes={"q"})
        txn_cp = txn(6, 9, writes={"r"})
        assert rw_conflict(txn_n, txn_cp)

    def test_figure2_txn_c_no_spatial(self):
        # txn_c writes a different row r' than txn_n read.
        txn_n = txn(5, 12, reads={"r"}, writes={"rp"})
        txn_c = txn(3, 8, writes={"rp"})
        assert not rw_conflict(txn_n, txn_c)


class TestReadOnlyOptimization:
    def test_read_only_never_conflicts(self):
        # §4.1 condition 3: read-only transactions are exempt.
        reader = txn(1, 10, reads={"r"})  # write set empty -> read-only
        writer = txn(2, 5, writes={"r"})
        assert reader.is_read_only
        assert not rw_conflict(reader, writer)

    def test_write_txn_with_reads_still_conflicts(self):
        reader = txn(1, 10, reads={"r"}, writes={"s"})
        writer = txn(2, 5, reads={"a"}, writes={"r"})
        assert rw_conflict(reader, writer)


class TestDispatch:
    def test_conflicts_under_si(self):
        a = txn(1, 10, writes={"x"})
        b = txn(2, 8, writes={"x"})
        assert conflicts_under("si", a, b)
        assert not conflicts_under("wsi", a, b)  # no reads involved

    def test_conflicts_under_wsi(self):
        a = txn(1, 10, reads={"x"}, writes={"y"})
        b = txn(2, 8, reads={"z"}, writes={"x"})
        assert conflicts_under("wsi", a, b)
        assert not conflicts_under("si", a, b)  # disjoint write sets

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            conflicts_under("serializable-snapshot", txn(1, 2), txn(3, 4))


class TestFootprint:
    def test_read_only_property(self):
        assert txn(1, 2, reads={"x"}).is_read_only
        assert not txn(1, 2, writes={"x"}).is_read_only

    def test_committed_property(self):
        assert txn(1, 2).committed
        assert not txn(1, None).committed
