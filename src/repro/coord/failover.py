"""Status-oracle failover: leader election + WAL recovery, composed.

Appendix A: "if the status oracle server fails, the same status oracle
after recovery, or another fresh instance of the status oracle could
still recreate the memory state from the write-ahead log and continue
servicing the commit requests."  In the deployment this requires an
arbiter so exactly one instance serves at a time — that is the
ZooKeeper leader election.

:class:`OracleReplicaSet` wires the pieces: N candidate oracle hosts, a
shared (replicated) WAL, and an election.  Killing the active host
expires its session; the next candidate wins the election, replays the
WAL, and starts serving — with all pre-failure conflict state intact.

Takeover comes in two temperatures:

* **cold** (the default) — the newly elected host replays the *entire*
  WAL through :meth:`~repro.core.status_oracle.StatusOracle.recover_from`.
  Recovery time grows with total history.
* **warm** (``warm=True``) — every standby keeps a live oracle that
  *tails* the shared WAL through a :class:`~repro.wal.bookkeeper.WALTail`
  cursor, applying commit-table and lastCommit state incrementally as
  records become durable (:meth:`OracleHost.catch_up`, driven
  periodically by the deployment).  At takeover only the un-polled
  suffix remains — an **O(delta)** catch-up — after which
  :meth:`~repro.core.status_oracle.StatusOracle.seal_recovery` re-seeds
  the timestamp oracle above everything durable, preserving the no-reuse
  guarantee.  Benchmark E22 measures the difference.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.core.engine import CommitEngine, default_engine_kind, make_engine
from repro.core.errors import OracleClosed
from repro.core.status_oracle import CommitRequest, CommitResult
from repro.coord.zookeeper import LeaderElection, Session, ZooKeeper
from repro.wal.bookkeeper import BookKeeperWAL, WALTail


class CatchUpCadence:
    """Clock-driven scheduling for warm-standby catch-up polls.

    PR 6 drove standby polls from a commit-count modulus ("every Nth
    commit"), which couples the poll rate to throughput: an idle
    deployment never polls (takeover delta grows unbounded in time) and
    a hot one polls more often than the tail needs.  The cadence is a
    *time* policy instead: :meth:`due` answers whether ``interval``
    seconds have elapsed on ``clock`` — wall clock, the simulator's
    injected clock, or a test's manual counter — since the last poll it
    approved.  :class:`OracleReplicaSet` (``catch_up_interval=``) and
    :class:`~repro.server.ha.ReplicatedFrontend` consult it on their
    commit/flush drive paths.
    """

    def __init__(self, interval: float, clock: Callable[[], float]) -> None:
        if interval <= 0:
            raise ValueError("catch-up interval must be > 0")
        self.interval = interval
        self._clock = clock
        self._last = clock()

    def due(self) -> bool:
        now = self._clock()
        if now - self._last >= self.interval:
            self._last = now
            return True
        return False


class OracleHost:
    """One candidate machine that can run the status oracle.

    With ``warm=True`` the host maintains a standby oracle that tails
    the shared WAL (call :meth:`catch_up` periodically); election then
    promotes the already-caught-up instance instead of replaying the
    full log.  ``recovered_records`` reports the records applied *during
    takeover* (the whole log when cold, the remaining delta when warm)
    and ``takeover_seconds`` the wall-clock the promotion cost — the
    failover metric benchmark E22 tracks.
    """

    def __init__(
        self,
        host_id: int,
        zookeeper: ZooKeeper,
        wal: BookKeeperWAL,
        level: str = "wsi",
        warm: bool = False,
        engine: str = "oracle",
    ) -> None:
        self.host_id = host_id
        self.level = level
        self.engine = engine
        self.warm = warm
        self._wal = wal
        self.session: Session = zookeeper.connect()
        self.oracle: Optional[CommitEngine] = None
        self.recovered_records = 0
        #: Records applied while standing by (warm mode), i.e. *before*
        #: the takeover they made cheap.
        self.standby_records = 0
        self.takeover_seconds = 0.0
        self._standby: Optional[CommitEngine] = None
        self._tail: Optional[WALTail] = None
        self._standby_max_ts = 0
        if warm:
            self._standby = self._make_oracle()
            self._tail = WALTail(wal)
        self.election = LeaderElection(
            self.session,
            election_path="/status-oracle",
            on_elected=self._become_active,
        )

    def _make_oracle(self) -> CommitEngine:
        # The engine-factory hook: every layer above speaks the
        # CommitEngine contract, so the HA tier is protocol-agnostic —
        # any engine with WAL recovery hooks can be replicated.
        return make_engine(self.engine, level=self.level, wal=self._wal)

    # ------------------------------------------------------------------
    # warm standby
    # ------------------------------------------------------------------
    def catch_up(self) -> int:
        """Apply records that became durable since the last poll.

        No-op (returns 0) for cold hosts and for the active leader —
        the leader's oracle *produces* the records; only standbys
        consume them.  Call this on whatever cadence the deployment
        can afford; whatever is not yet polled when the leader dies is
        the takeover delta.
        """
        if self._standby is None or self.oracle is not None:
            return 0
        applied = 0
        for record in self._tail.poll():
            self._standby_max_ts = max(
                self._standby_max_ts, self._standby.apply_wal_record(record)
            )
            applied += 1
        self.standby_records += applied
        return applied

    @property
    def standby_lag(self) -> int:
        """Durable WAL entries the standby has not yet applied."""
        return self._tail.lag if self._tail is not None else 0

    # ------------------------------------------------------------------
    # promotion
    # ------------------------------------------------------------------
    def _become_active(self) -> None:
        """Leader callback: recover state and start serving.

        Cold: one full WAL replay — ``recover_from`` both applies and
        counts the records in a single pass (an earlier version replayed
        the log twice, once just to count, doubling exactly the metric
        failover cares about).  Warm: drain the tail's remaining delta
        into the standby oracle, then seal its timestamp floor.
        """
        started = time.perf_counter()
        if self._standby is not None:
            self.recovered_records = self.catch_up()
            # The takeover delta is recovery work, not standby work:
            # keep the two tallies disjoint (standby_records is what the
            # warm tail saved; recovered_records what promotion cost).
            self.standby_records -= self.recovered_records
            oracle = self._standby
            self._standby = None
            self._tail = None
            oracle.seal_recovery(self._standby_max_ts)
        else:
            oracle = self._make_oracle()
            self.recovered_records = oracle.recover_from(self._wal)
        self.takeover_seconds = time.perf_counter() - started
        self.oracle = oracle
        self._on_active()

    def _on_active(self) -> None:
        """Promotion hook for subclasses (the HA serving tier builds its
        frontend here); the base host serves the bare oracle."""

    @property
    def is_active(self) -> bool:
        return self.election.is_leader and self.oracle is not None

    def crash(self) -> None:
        """The host dies: session expires, ephemeral node vanishes."""
        if self.oracle is not None:
            self.oracle = None
        self.session.close()


class OracleReplicaSet:
    """A replicated status-oracle deployment with automatic failover.

    Client traffic goes through :meth:`begin` / :meth:`commit`, which
    route to whichever host currently holds the leadership.  The WAL is
    shared (in the real system: BookKeeper ledgers on separate bookies),
    so any host can reconstruct the full oracle state.  ``warm=True``
    runs every host as a warm standby (tail-the-WAL catch-up; drive it
    via :meth:`standby_catch_up`).
    """

    def __init__(
        self,
        num_hosts: int = 3,
        level: str = "wsi",
        warm: bool = False,
        engine: Optional[str] = None,
        catch_up_interval: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        if engine is None:
            engine = default_engine_kind()
        self.zookeeper = ZooKeeper()
        self.wal = BookKeeperWAL()
        self.hosts: List[OracleHost] = [
            OracleHost(
                i, self.zookeeper, self.wal, level=level, warm=warm,
                engine=engine,
            )
            for i in range(num_hosts)
        ]
        self.failovers = 0
        # Clock-driven standby catch-up: when an interval is given, the
        # commit path opportunistically flushes the WAL and polls every
        # standby tail once the interval has elapsed on ``clock``
        # (wall clock by default; pass the sim's clock in a simulation).
        self._cadence: Optional[CatchUpCadence] = None
        if catch_up_interval is not None:
            self._cadence = CatchUpCadence(
                catch_up_interval, clock or time.monotonic
            )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def active_host(self) -> OracleHost:
        for host in self.hosts:
            if host.is_active:
                return host
        raise OracleClosed("no active status oracle (all hosts down?)")

    def begin(self) -> int:
        return self.active_host().oracle.begin()

    def commit(self, request: CommitRequest) -> CommitResult:
        result = self.active_host().oracle.commit(request)
        if self._cadence is not None and self._cadence.due():
            self.wal.flush()
            self.standby_catch_up()
        return result

    def standby_catch_up(self) -> int:
        """Poll every standby's WAL tail once; returns records applied."""
        return sum(host.catch_up() for host in self.hosts)

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def kill_active(self) -> OracleHost:
        """Crash the current leader; election promotes the next host.

        Any commits still buffered (not yet flushed to the replicated
        ledger) die with the host — the durability contract — so we
        flush first only what the host itself had already acknowledged
        through the WAL path.
        """
        victim = self.active_host()
        # The batch buffer was in the victim's memory: unacknowledged
        # records die with it.
        self.wal.drop_pending()
        victim.crash()
        self.failovers += 1
        return victim

    def alive_count(self) -> int:
        return sum(1 for host in self.hosts if host.session.alive)
