"""Pin the divide-by-zero / empty-workload behaviour of every ratio stat.

Ratio accessors must return 0.0 — never raise — on a fresh component or
an empty workload; dashboards and sweep harnesses call them
unconditionally before any traffic has flowed.
"""

from repro.bench.harness import HarnessResult
from repro.core.partitioned import PartitionedOracle
from repro.core.status_oracle import CommitRequest, OracleStats, make_oracle
from repro.server import FrontendStats, OracleFrontend
from repro.sim.engine import Engine, Resource
from repro.wal.bookkeeper import BookKeeperWAL


class TestOracleStatsEdgeCases:
    def test_abort_rate_zero_on_empty(self):
        assert OracleStats().abort_rate == 0.0
        assert OracleStats().total_requests == 0

    def test_abort_rate_zero_on_fresh_oracle(self):
        for level in ("si", "wsi"):
            assert make_oracle(level).stats.abort_rate == 0.0

    def test_abort_rate_zero_after_begin_only(self):
        # begins alone are not commit requests: still an empty workload
        oracle = make_oracle("wsi")
        oracle.begin()
        assert oracle.stats.abort_rate == 0.0

    def test_abort_rate_counts_read_only_commits(self):
        oracle = make_oracle("wsi")
        oracle.commit(CommitRequest(oracle.begin()))
        assert oracle.stats.abort_rate == 0.0
        assert oracle.stats.total_requests == 1


class TestCrossPartitionFractionEdgeCases:
    def test_zero_on_fresh_partitioned_oracle(self):
        assert PartitionedOracle().cross_partition_fraction() == 0.0

    def test_zero_when_workload_only_aborts(self):
        # aborts never count as routed commits: the denominator stays 0
        oracle = PartitionedOracle(num_partitions=2)
        oracle.abort(oracle.begin())
        assert oracle.cross_partition_fraction() == 0.0

    def test_zero_when_single_partition_only(self):
        oracle = PartitionedOracle(num_partitions=2)
        row = 0  # any single row touches exactly one partition
        oracle.commit(CommitRequest(oracle.begin(), write_set=frozenset([row])))
        assert oracle.cross_partition_fraction() == 0.0


class TestRowsCheckedAccounting:
    """Pin the ``rows_checked`` totals across the per-request-counter
    removal: the counter is now bumped once per request, but the totals
    must be exactly what the seed's per-row increments produced — a full
    scan counts every checked row, a conflict stops the count at the
    conflicting row."""

    def test_full_scan_counts_every_checked_row(self):
        for level, bounded in (("si", False), ("wsi", False), ("wsi", True)):
            oracle = make_oracle(level, bounded=bounded)
            rows = frozenset(["a", "b", "c"])
            result = oracle.commit(
                CommitRequest(oracle.begin(), write_set=rows, read_set=rows)
            )
            assert result.committed
            assert oracle.stats.rows_checked == 3

    def test_conflict_stops_the_count(self):
        # Every checked row conflicts, so the scan (and the count) stops
        # at the first row regardless of frozenset iteration order.
        for bounded in (False, True):
            oracle = make_oracle("wsi", bounded=bounded)
            reader = oracle.begin()
            writer = oracle.begin()
            rows = frozenset(["a", "b", "c"])
            assert oracle.commit(
                CommitRequest(writer, write_set=rows)
            ).committed
            checked_before = oracle.stats.rows_checked
            result = oracle.commit(
                CommitRequest(
                    reader, write_set=frozenset(["w"]), read_set=rows
                )
            )
            assert not result.committed
            assert oracle.stats.rows_checked == checked_before + 1

    def test_tmax_conflict_stops_the_count(self):
        # Bounded oracle, capacity 1: every row the old transaction reads
        # was evicted, so the very first row aborts it pessimistically.
        oracle = make_oracle("wsi", bounded=True, max_rows=1)
        old = oracle.begin()
        for row in ("a", "b", "c"):
            assert oracle.commit(
                CommitRequest(oracle.begin(), write_set=frozenset([row]))
            ).committed
        checked_before = oracle.stats.rows_checked
        result = oracle.commit(
            CommitRequest(
                old,
                write_set=frozenset(["w"]),
                read_set=frozenset(["a", "b"]),
            )
        )
        assert not result.committed and result.reason == "tmax"
        assert oracle.stats.rows_checked == checked_before + 1

    def test_decide_batch_totals_match_sequential(self):
        for level in ("si", "wsi"):
            batched = make_oracle(level)
            sequential = make_oracle(level)
            for oracle, use_batch in ((batched, True), (sequential, False)):
                rows = frozenset(["a", "b", "c"])
                writer = oracle.begin()
                reader = oracle.begin()
                requests = [
                    CommitRequest(writer, write_set=rows),
                    CommitRequest(
                        reader, write_set=frozenset(["w"]), read_set=rows
                    ),
                    CommitRequest(oracle.begin(), write_set=frozenset(["d"])),
                ]
                if use_batch:
                    oracle.decide_batch(requests)
                else:
                    for request in requests:
                        oracle.commit(request)
            assert batched.stats == sequential.stats


class TestOtherRatioStats:
    def test_harness_result_abort_rate_empty(self):
        assert HarnessResult().abort_rate == 0.0

    def test_frontend_avg_batch_size_empty(self):
        assert FrontendStats().avg_batch_size() == 0.0
        frontend = OracleFrontend(make_oracle("wsi"))
        assert frontend.stats.avg_batch_size() == 0.0

    def test_wal_batching_factor_empty(self):
        assert BookKeeperWAL().batching_factor() == 0.0

    def test_resource_utilization_at_time_zero(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        assert resource.utilization() == 0.0
        assert resource.utilization(elapsed=0.0) == 0.0
