"""HA serving-tier tests: warm-standby failover, durable futures, retries.

The tentpole invariants:

* a client future resolves at *durability* (WAL sync), never merely at
  batch flush — and never stays a permanent ``DecisionPending``;
* crash-the-leader-mid-open-batch: the unacked batch dies with the
  host, its requests are resubmitted against the next leader with their
  **original start timestamps**, and re-decide identically when no new
  begins interleave;
* requests whose decision reached a ledger quorum settle before any
  failover and are never retried (no double-decide);
* no timestamp — start or commit — is ever reused across any number of
  failovers;
* warm standbys take over in O(delta), cold hosts replay everything.
"""

import pytest

from repro.core.errors import DecisionPending, OracleClosed, Overloaded
from repro.core.status_oracle import CommitRequest
from repro.server import ReplicatedFrontend, RetryPolicy


def req(start, writes=(), reads=()):
    return CommitRequest(start, write_set=frozenset(writes), read_set=frozenset(reads))


class TestSteadyState:
    def test_future_resolves_at_durability_not_flush(self):
        rf = ReplicatedFrontend(num_hosts=2, max_batch=100)
        future = rf.submit_commit(req(rf.begin(), writes={"a"}))
        rf.active_frontend.flush()  # decided...
        assert not future.done  # ...but the group record is not durable
        rf.wal.flush()
        assert future.done and future.outcome() == "committed"
        assert rf.inflight_count == 0

    def test_flush_is_the_durability_barrier(self):
        rf = ReplicatedFrontend(num_hosts=2, max_batch=100)
        futures = [
            rf.submit_commit(req(rf.begin(), writes={f"r{i}"})) for i in range(5)
        ]
        futures.append(rf.submit_abort(rf.begin()))
        rf.flush()
        assert all(f.done for f in futures)
        assert [f.outcome() for f in futures[:5]] == ["committed"] * 5
        assert futures[5].outcome() == "aborted"

    def test_read_only_fast_path_resolves_immediately(self):
        rf = ReplicatedFrontend(num_hosts=2)
        future = rf.submit_commit(req(rf.begin()))
        assert future.done and future.outcome() == "read-only"
        assert rf.inflight_count == 0

    def test_count_trigger_that_syncs_wal_settles_inline(self):
        # 32 decisions = 1 KB: the 32nd submit flushes the batch AND the
        # WAL inside the submit call — the settle/submit race the entry
        # registration must win.
        rf = ReplicatedFrontend(num_hosts=2, max_batch=32)
        futures = [
            rf.submit_commit(req(rf.begin(), writes={f"r{i}"})) for i in range(32)
        ]
        assert all(f.done for f in futures)
        assert rf.inflight_count == 0

    def test_session_runs_unchanged_over_replicated_tier(self):
        rf = ReplicatedFrontend(num_hosts=2)
        session = rf.session(name="ha-client")
        for i in range(6):
            session.begin()
            session.commit(write_set={f"k{i}"})
        rf.flush()
        assert session.commits == 6
        assert session.decided == session.submitted == 6

    def test_decision_error_settles_at_flush_not_retried(self):
        rf = ReplicatedFrontend(num_hosts=2, max_batch=100)
        ts = rf.begin()
        committed = rf.submit_commit(req(ts, writes={"x"}))
        rf.flush()
        assert committed.outcome() == "committed"
        # aborting an already-committed transaction is a permanent
        # decision error: settle now, retrying would re-raise it
        bad = rf.submit_abort(ts)
        rf.active_frontend.flush()
        assert bad.done and bad.outcome() == "error"
        assert rf.inflight_count == 0

    def test_closed_tier_refuses_traffic(self):
        rf = ReplicatedFrontend(num_hosts=1)
        rf.close()
        assert rf.closed
        with pytest.raises(OracleClosed):
            rf.begin()
        with pytest.raises(OracleClosed):
            rf.submit_commit(req(1, writes={"x"}))

    def test_invalid_host_count(self):
        with pytest.raises(ValueError):
            ReplicatedFrontend(num_hosts=0)


class TestCrashMidOpenBatch:
    def test_open_batch_requests_survive_via_retry(self):
        # engine pinned: the last_commit probe is oracle white-box
        # (TestEngineParameter covers retry durability per protocol).
        rf = ReplicatedFrontend(num_hosts=3, max_batch=100, engine="oracle")
        f1 = rf.submit_commit(req(rf.begin(), writes={"x"}))
        f2 = rf.submit_commit(req(rf.begin(), writes={"y"}))
        assert not f1.done and not f2.done
        rf.kill_active()
        assert rf.retried_requests == 2
        assert f1.retries == 1 and f2.retries == 1
        rf.flush()
        assert f1.outcome() == "committed" and f2.outcome() == "committed"
        # the retried decisions are durable on the *new* leader
        oracle = rf.active_host().oracle
        assert oracle.last_commit("x") is not None
        assert oracle.last_commit("y") is not None

    def test_no_permanent_decision_pending(self):
        rf = ReplicatedFrontend(num_hosts=2, max_batch=100)
        futures = [
            rf.submit_commit(req(rf.begin(), writes={f"r{i}"})) for i in range(7)
        ]
        rf.kill_active()
        rf.flush()
        for future in futures:
            future.outcome()  # never raises DecisionPending

    def test_flushed_but_unsynced_batch_is_retried(self):
        rf = ReplicatedFrontend(num_hosts=2, max_batch=100)
        future = rf.submit_commit(req(rf.begin(), writes={"x"}))
        rf.active_frontend.flush()  # decided; record buffered in the WAL
        assert not future.done
        rf.kill_active()  # drop_pending eats the record
        assert rf.retried_requests == 1
        rf.flush()
        assert future.outcome() == "committed"

    def test_durable_requests_never_retried(self):
        rf = ReplicatedFrontend(num_hosts=2, max_batch=100)
        future = rf.submit_commit(req(rf.begin(), writes={"x"}))
        rf.flush()  # durable: settled now
        assert future.done
        before = future.commit_ts
        rf.kill_active()
        assert rf.retried_requests == 0
        assert future.commit_ts == before
        # exactly one commit for the row across both oracles' history
        assert rf.active_host().oracle.commit_table.is_committed(future.start_ts)

    def test_retried_requests_re_decide_identically(self):
        # All begins precede all decisions, so the conflict comparisons
        # are order-determined and the retry must reproduce the victim's
        # (never-durable) decisions exactly.  WSI semantics: pin the
        # engine so the rw-conflict abort holds under the axis.
        rf = ReplicatedFrontend(num_hosts=2, max_batch=100, engine="oracle")
        t1, t2, t3 = rf.begin(), rf.begin(), rf.begin()
        f1 = rf.submit_commit(req(t1, writes={"x"}))
        f2 = rf.submit_commit(req(t2, writes={"y"}, reads={"x"}))  # rw-conflict
        f3 = rf.submit_commit(req(t3, writes={"z"}))
        rf.active_frontend.flush()  # victim decides; nothing durable
        rf.kill_active()
        rf.flush()
        assert f1.outcome() == "committed"
        assert f2.outcome() == "aborted"
        assert f2.result().reason == "rw-conflict"
        assert f3.outcome() == "committed"

    def test_crashed_requests_counted_on_victim(self):
        rf = ReplicatedFrontend(num_hosts=2, max_batch=100)
        rf.submit_commit(req(rf.begin(), writes={"x"}))
        victim_frontend = rf.active_frontend
        rf.kill_active()
        assert victim_frontend.stats.crashed_requests == 1


class TestNoTimestampReuse:
    def test_begins_unique_across_failovers(self):
        rf = ReplicatedFrontend(num_hosts=3, max_batch=4)
        seen = set()
        for round_no in range(3):
            for i in range(6):
                ts = rf.begin()
                assert ts not in seen
                seen.add(ts)
                rf.submit_commit(req(ts, writes={f"r{round_no}-{i}"}))
            if round_no < 2:
                rf.kill_active()  # open remainder + unsynced records retried
        rf.flush()

    def test_commit_timestamps_unique_across_failovers(self):
        rf = ReplicatedFrontend(num_hosts=3, max_batch=100)
        all_ts = set()
        futures = []
        for round_no in range(3):
            for i in range(5):
                ts = rf.begin()
                assert ts not in all_ts
                all_ts.add(ts)
                futures.append(rf.submit_commit(req(ts, writes={f"w{round_no}-{i}"})))
            if round_no < 2:
                rf.kill_active()
        rf.flush()
        for future in futures:
            assert future.outcome() == "committed"
            assert future.commit_ts not in all_ts
            all_ts.add(future.commit_ts)


class TestWarmStandby:
    def _load(self, rf, n, tag):
        for i in range(n):
            rf.submit_commit(req(rf.begin(), writes={f"{tag}{i}"}))
        rf.flush()

    def test_warm_takeover_applies_only_the_delta(self):
        # engine pinned: last_commit probes are oracle white-box.
        rf = ReplicatedFrontend(
            num_hosts=2, warm=True, max_batch=4, engine="oracle"
        )
        self._load(rf, 12, "pre")
        caught_up = rf.standby_catch_up()
        assert caught_up > 0
        self._load(rf, 4, "post")  # durable but not yet tailed
        rf.kill_active()
        host = rf.active_host()
        assert host.standby_records == caught_up
        assert 0 < host.recovered_records < caught_up + host.recovered_records
        rf.flush()
        oracle = host.oracle
        assert oracle.last_commit("pre0") is not None
        assert oracle.last_commit("post3") is not None

    def test_cold_takeover_replays_everything(self):
        rf = ReplicatedFrontend(num_hosts=2, warm=False, max_batch=4)
        self._load(rf, 12, "pre")
        assert rf.standby_catch_up() == 0  # cold hosts have no tail
        rf.kill_active()
        host = rf.active_host()
        assert host.standby_records == 0
        assert host.recovered_records == sum(1 for _ in rf.wal.replay())

    def test_standby_lag_visible(self):
        rf = ReplicatedFrontend(num_hosts=2, warm=True, max_batch=4)
        standby = rf.hosts[1]
        self._load(rf, 8, "a")
        assert standby.standby_lag > 0
        rf.standby_catch_up()
        assert standby.standby_lag == 0

    def test_warm_and_cold_recover_identical_state(self):
        rows = {}
        oracles = {}
        for warm in (True, False):
            # engine pinned: last_commit probes are oracle white-box.
            rf = ReplicatedFrontend(
                num_hosts=2, warm=warm, max_batch=4, engine="oracle"
            )
            futures = []
            for i in range(10):
                futures.append(rf.submit_commit(req(rf.begin(), writes={f"r{i}"})))
            rf.flush()
            if warm:
                rf.standby_catch_up()
            rf.kill_active()
            oracle = rf.active_host().oracle
            rows[warm] = {f"r{i}": oracle.last_commit(f"r{i}") for i in range(10)}
            oracles[warm] = oracle
        assert rows[True] == rows[False]
        # both takeovers seal the TSO above everything durable
        assert oracles[True].begin() > max(rows[True].values())
        assert oracles[False].begin() > max(rows[False].values())


class TestRetryPolicy:
    def test_retry_budget_exhausted_fails_the_future(self):
        rf = ReplicatedFrontend(
            num_hosts=3,
            max_batch=100,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.001),
        )
        future = rf.submit_commit(req(rf.begin(), writes={"x"}))
        rf.kill_active()  # attempt 2 (the retry)
        assert not future.done
        rf.kill_active()  # budget spent: fail, don't resubmit
        assert future.done and future.outcome() == "error"
        assert isinstance(future.error, OracleClosed)
        assert rf.failed_after_retries == 1
        assert rf.inflight_count == 0

    def test_backoff_accounted_per_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.01, multiplier=2.0)
        slept = []
        rf = ReplicatedFrontend(
            num_hosts=3, max_batch=100, retry_policy=policy, sleep=slept.append
        )
        rf.submit_commit(req(rf.begin(), writes={"x"}))
        rf.kill_active()
        assert slept == [policy.delay_for(1)]
        rf.kill_active()
        assert slept == [policy.delay_for(1), policy.delay_for(2)]
        assert rf.backoff_seconds == pytest.approx(sum(slept))

    def test_all_hosts_down_fails_inflight(self):
        rf = ReplicatedFrontend(num_hosts=1, max_batch=100)
        future = rf.submit_commit(req(rf.begin(), writes={"x"}))
        rf.kill_active()
        assert future.done and isinstance(future.error, OracleClosed)
        assert rf.failed_after_retries == 1
        with pytest.raises(OracleClosed):
            rf.begin()


class TestAdmissionControl:
    def test_overload_propagates_to_clients(self):
        rf = ReplicatedFrontend(num_hosts=2, max_batch=100, max_queue_depth=2)
        rf.submit_commit(req(rf.begin(), writes={"a"}))
        rf.submit_commit(req(rf.begin(), writes={"b"}))
        ts = rf.begin()
        with pytest.raises(Overloaded) as excinfo:
            rf.submit_commit(req(ts, writes={"c"}))
        assert excinfo.value.limit == 2
        assert rf.inflight_count == 2  # the shed request never registered
        rf.flush()
        # drained: the shed request's timestamp is still usable
        assert rf.submit_commit(req(ts, writes={"c"})) is not None

    def test_session_retry_policy_rides_out_overload(self):
        rf = ReplicatedFrontend(num_hosts=2, max_batch=100, max_queue_depth=1)
        session = rf.session(
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.001),
            sleep=lambda _delay: rf.flush(),  # a backoff drains the tier
        )
        session.begin()
        session.commit(write_set={"a"})
        session.begin()
        session.commit(write_set={"b"})  # shed once, then admitted
        assert session.overload_retries == 1
        assert session.backoff_seconds > 0
        rf.flush()
        assert session.commits == 2


class TestEngineParameter:
    """The replicated tier is protocol-agnostic: every CommitEngine
    kind serves behind it with the same durability/failover story."""

    @pytest.fixture(params=["oracle", "percolator", "ssi"])
    def kind(self, request):
        return request.param

    def test_conflicting_pair_decides_per_protocol(self, kind):
        rf = ReplicatedFrontend(num_hosts=2, max_batch=8, engine=kind)
        winner = rf.submit_commit(req(rf.begin(), writes={"x"}))
        loser = rf.submit_commit(req(rf.begin(), writes={"x"}, reads={"x"}))
        rf.flush()
        assert winner.outcome() == "committed"
        assert loser.outcome() == "aborted"

    def test_failover_preserves_decisions(self, kind):
        rf = ReplicatedFrontend(num_hosts=2, max_batch=8, engine=kind)
        future = rf.submit_commit(req(rf.begin(), writes={"a"}))
        rf.flush()
        start = future.start_ts
        rf.kill_active()
        # The promoted host replayed the shared WAL through the
        # engine's own recovery hooks: the decision survives, and the
        # tier keeps serving.
        oracle = rf.active_host().frontend.backend
        assert oracle.commit_table.is_committed(start)
        after = rf.submit_commit(req(rf.begin(), writes={"b"}))
        rf.flush()
        assert after.outcome() == "committed"

    def test_no_timestamp_reuse_across_failover(self, kind):
        rf = ReplicatedFrontend(num_hosts=3, max_batch=4, engine=kind)
        seen = set()
        for i in range(6):
            ts = rf.begin()
            assert ts not in seen
            seen.add(ts)
            rf.submit_commit(req(ts, writes={f"r{i}"}))
        rf.flush()
        rf.kill_active()
        for i in range(6):
            ts = rf.begin()
            assert ts not in seen
            seen.add(ts)
