"""Property tests over randomly generated histories.

Key cross-validation: the *replay* admissibility checker (simulating the
oracle over a history) must agree exactly with the *declarative* conflict
predicates evaluated pairwise over committed transactions — two
independent formulations of §2/§4.1.
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.core.conflicts import TxnFootprint, conflicts_under
from repro.history.checkers import allowed_under
from repro.history.history import History, Operation
from repro.history.serializability import (
    is_serializable,
    serialize_by_commit_order,
)

ITEMS = ["x", "y", "z"]


@st.composite
def histories(draw, max_txns=4, max_ops=4):
    """Random well-formed histories where every transaction terminates."""
    num_txns = draw(st.integers(min_value=1, max_value=max_txns))
    per_txn: List[List[Operation]] = []
    for t in range(1, num_txns + 1):
        body = [
            Operation(draw(st.sampled_from("rw")), t, draw(st.sampled_from(ITEMS)))
            for _ in range(draw(st.integers(min_value=0, max_value=max_ops)))
        ]
        terminator = Operation(draw(st.sampled_from("ca")), t)
        per_txn.append(body + [terminator])
    # random interleaving preserving per-txn order
    ops: List[Operation] = []
    cursors = [0] * num_txns
    remaining = sum(len(b) for b in per_txn)
    while remaining:
        candidates = [i for i in range(num_txns) if cursors[i] < len(per_txn[i])]
        pick = draw(st.sampled_from(candidates))
        ops.append(per_txn[pick][cursors[pick]])
        cursors[pick] += 1
        remaining -= 1
    return History(ops)


def footprints_of(history: History):
    """Committed transactions with interleaving positions as timestamps."""
    result = []
    for txn in history.committed_transactions():
        result.append(
            TxnFootprint(
                txn_id=txn,
                start_ts=history.start_position(txn),
                commit_ts=history.commit_position(txn),
                read_set=history.read_set(txn),
                write_set=history.write_set(txn),
            )
        )
    return result


@given(history=histories())
@settings(max_examples=300, deadline=None)
def test_replay_agrees_with_pairwise_predicates(history):
    committed = footprints_of(history)
    for level in ("si", "wsi"):
        pairwise_conflict = any(
            conflicts_under(level, a, b)
            for i, a in enumerate(committed)
            for b in committed[i + 1:]
        )
        replay = allowed_under(history, level)
        assert replay.allowed == (not pairwise_conflict), (
            f"{level}: replay={replay.allowed}, "
            f"pairwise conflict={pairwise_conflict}, history={history}"
        )


@given(history=histories())
@settings(max_examples=300, deadline=None)
def test_wsi_allowed_histories_are_serializable(history):
    # Theorem 1 at the abstract-history level.
    if allowed_under(history, "wsi").allowed:
        assert is_serializable(history), f"WSI-allowed but unserializable: {history}"


@given(history=histories())
@settings(max_examples=200, deadline=None)
def test_serialize_by_commit_order_always_serial(history):
    serial = serialize_by_commit_order(history)
    assert serial.is_serial()
    # committed set preserved, aborted dropped
    assert set(serial.transactions) == set(history.committed_transactions())


@given(history=histories())
@settings(max_examples=200, deadline=None)
def test_serial_histories_always_pass_everything(history):
    serial = serialize_by_commit_order(history)
    if not serial.operations:
        return
    assert is_serializable(serial)
    assert allowed_under(serial, "si").allowed
    assert allowed_under(serial, "wsi").allowed


@given(history=histories())
@settings(max_examples=200, deadline=None)
def test_snapshot_reads_from_is_stable(history):
    # A transaction's reads-from writer for an item never changes between
    # repeated reads (snapshot stability at the history level).
    reads = history.reads_from(snapshot_reads=True)
    for (txn, item), writer in reads.items():
        if writer is not None and writer != txn:
            # the writer must have committed before the reader started
            wpos = history.commit_position(writer)
            assert wpos is not None
            assert wpos < history.start_position(txn)
