"""Latency parameters, calibrated to the paper's §6.2 microbenchmarks.

The paper reports, for one client on the 34-machine testbed:

=====================  ==========  =============================================
operation              average     dominant cost
=====================  ==========  =============================================
start-timestamp        0.17 ms     network RTT; persistence amortized (App. A)
random read (cold)     38.8 ms     HDFS block load from local/remote disk
write (put)            1.13 ms     memstore write + WAL append
commit request         4.1 ms      WAL persistence via BookKeeper
=====================  ==========  =============================================

:class:`LatencyModel` carries these constants plus the derived service
times the cluster simulation needs (hot reads served from the block
cache, per-request CPU costs, oracle critical-section costs).  The two
oracle-side per-row costs differ between SI and WSI per §6.3: "the
running time of the critical section is slightly higher with
write-snapshot isolation since it requires loading as twice memory items
as with snapshot isolation" — SI checks and updates the *same* rows
(cache-warm), WSI checks the read set then updates the disjoint write
set.  The ~13 % gap reproduces the 104K vs 92K TPS saturation points of
Fig. 5.

All sampled latencies use an exponential jitter around the mean so queue
behaviour is realistic (an M/M/c-flavoured model); pass ``jitter=0`` for
deterministic service times.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

MS = 1e-3
US = 1e-6


@dataclass
class LatencyModel:
    """All timing constants for the simulated testbed (seconds)."""

    # §6.2 microbenchmark values.
    start_timestamp: float = 0.17 * MS
    read_cold: float = 38.8 * MS
    write: float = 1.13 * MS
    commit_wal: float = 4.1 * MS

    # Derived / modelled values.
    read_hot: float = 1.6 * MS  # block-cache hit: memstore/cache lookup
    network_rtt: float = 0.15 * MS  # client <-> server round trip
    server_cpu_per_op: float = 0.35 * MS  # request parse + cell handling

    # Status-oracle critical section (Fig. 5 calibration): the oracle
    # saturates at ~104K TPS under SI and ~92K TPS under WSI, i.e. mean
    # service ~9.6 us and ~10.9 us per commit request at the complex
    # workload's ~5 written (and ~5 read) rows per transaction.
    oracle_base: float = 7.0 * US  # per-request fixed cost
    oracle_per_row_si: float = 0.52 * US  # check+update same rows (warm)
    oracle_per_row_wsi_check: float = 0.42 * US  # load read-set items
    oracle_per_row_wsi_update: float = 0.36 * US  # then load write set
    # Group-commit frontend (repro.server): the batch pays oracle_base
    # once, and each batched request only its residual handling cost —
    # calibrated to the wall-clock ratio benchmark E17 measures.
    oracle_per_request_batched: float = 1.4 * US

    # Partitioned deployment (§6.3 footnote 6): one protocol round —
    # a phase-1 bulk validation or phase-3 bulk install — is one RPC to
    # one partition's commit-table shard.  Zero by default (the seed's
    # in-process partitions cost nothing extra); set it to a network
    # RTT to study distributed partitioning.  A serial coordinator pays
    # it once per *round*, a parallel executor once per *phase* (the
    # rounds overlap) — the overlap benchmark E21 measures on the wall
    # clock, priced here for queueing studies.
    partition_round: float = 0.0

    # BookKeeper batching (Appendix A): flush on 1 KB or 5 ms; a commit
    # is acknowledged at the next flush, so its latency is the batch-fill
    # wait plus the replicated ledger write (network + two bookie disks),
    # which dominates the 4.1 ms commit latency of §6.2.
    wal_flush_interval: float = 5.0 * MS
    wal_write: float = 3.5 * MS

    # jitter: coefficient of variation of service times (0 = deterministic)
    jitter: float = 1.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self, mean: float) -> float:
        """Draw a service time with the configured jitter.

        ``jitter=1`` gives an exponential distribution (CV=1); smaller
        values blend toward the deterministic mean.
        """
        if mean <= 0:
            return 0.0
        if self.jitter <= 0:
            return mean
        exponential = self._rng.expovariate(1.0 / mean)
        return (1 - self.jitter) * mean + self.jitter * exponential

    # convenience samplers -------------------------------------------
    def sample_read(self, cache_hit: bool) -> float:
        return self.sample(self.read_hot if cache_hit else self.read_cold)

    def sample_write(self) -> float:
        return self.sample(self.write)

    def sample_start_timestamp(self) -> float:
        return self.sample(self.start_timestamp)

    def oracle_service_si(self, rows_checked: int) -> float:
        """Critical-section time for an SI commit of ``rows_checked`` rows."""
        return self.oracle_base + self.oracle_per_row_si * rows_checked

    def oracle_service_wsi(self, rows_checked: int, rows_updated: int) -> float:
        """Critical-section time for a WSI commit: the read set is loaded
        for the check and the (different) write set for the update."""
        return (
            self.oracle_base
            + self.oracle_per_row_wsi_check * rows_checked
            + self.oracle_per_row_wsi_update * rows_updated
        )

    def oracle_service_batch(
        self, level: str, requests: int, rows_checked: int, rows_updated: int
    ) -> float:
        """Critical-section time for one group-commit batch (§6.3): the
        fixed entry cost is paid once, the per-row loads once per row,
        and each request only its residual batched handling cost."""
        if level == "si":
            row_cost = self.oracle_per_row_si * rows_checked
        else:
            row_cost = (
                self.oracle_per_row_wsi_check * rows_checked
                + self.oracle_per_row_wsi_update * rows_updated
            )
        return (
            self.oracle_base
            + self.oracle_per_request_batched * requests
            + row_cost
        )

    def partition_round_cost(
        self, check_rounds: int, install_rounds: int, parallel: bool
    ) -> float:
        """Protocol-round time of one partitioned flush (§6.3 footnote
        6's per-partition RPCs): a serial coordinator drives every round
        back-to-back; a parallel executor overlaps the rounds of each
        phase, paying one ``partition_round`` per non-empty phase."""
        if self.partition_round <= 0:
            return 0.0
        if parallel:
            rounds = (check_rounds > 0) + (install_rounds > 0)
        else:
            rounds = check_rounds + install_rounds
        return self.partition_round * rounds


def paper_latency_model(seed: Optional[int] = None, jitter: float = 1.0) -> LatencyModel:
    """The default model with the paper's §6.2 numbers."""
    return LatencyModel(seed=seed, jitter=jitter)
