"""Lock-based snapshot isolation baseline (Percolator, paper §2.1).

Public surface:

* :class:`PercolatorTransactionManager` / :class:`PercolatorTransaction`
  — client-run 2PC over lock and write columns.
* :class:`PercolatorStore` — data + lock + write columns.
* :class:`LockPolicy` — wait / abort-self / force-abort-holder.
* :class:`PercolatorEngine` — the batch-capable
  :class:`~repro.core.engine.CommitEngine` adapter that puts this
  protocol behind the group-commit/HA serving stack.
"""

from repro.percolator.engine import PercolatorEngine
from repro.percolator.percolator import (
    Lock,
    LockPolicy,
    PercolatorStore,
    PercolatorTransaction,
    PercolatorTransactionManager,
    WriteRecord,
)

__all__ = [
    "PercolatorEngine",
    "PercolatorTransactionManager",
    "PercolatorTransaction",
    "PercolatorStore",
    "LockPolicy",
    "Lock",
    "WriteRecord",
]
