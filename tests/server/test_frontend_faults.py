"""Crash-path and admission-control coverage for the frontend.

The headline regression: a flush that dies mid-decision or mid-WAL-
append used to strand every future of the batch in ``DecisionPending``
forever — the error surfaced only at the flush call site, and nothing
ever resolved the futures.  Now the batch is abandoned: every future
resolves with the error, callbacks fire, admission slots release.

Plus the close-trigger accounting split (``flushes_by_close`` vs
``flushes_by_force``) and the ``max_queue_depth`` admission bound.
"""

import pytest

from repro.core.errors import (
    DecisionPending,
    NotEnoughBookiesError,
    OracleClosed,
    Overloaded,
)
from repro.core.status_oracle import CommitRequest, make_oracle
from repro.server import OracleFrontend, RetryPolicy, call_with_retry
from repro.wal.bookkeeper import BookKeeperWAL


def req(start, writes=(), reads=()):
    return CommitRequest(start, write_set=frozenset(writes), read_set=frozenset(reads))


class _ExplodingEngine:
    """A backend whose batch-decide engine dies mid-flush."""

    def __init__(self):
        self.inner = make_oracle("wsi")
        self.stats = self.inner.stats

    def begin(self):
        return self.inner.begin()

    def _decide_batch(self, batch, commits, aborts, errors, _):
        raise RuntimeError("conflict-detection engine crashed")


class TestFlushFaults:
    def test_engine_crash_resolves_all_futures_with_the_error(self):
        frontend = OracleFrontend(_ExplodingEngine(), max_batch=100)
        futures = [
            frontend.submit_commit(req(frontend.begin(), writes={f"r{i}"}))
            for i in range(5)
        ]
        with pytest.raises(RuntimeError, match="engine crashed"):
            frontend.flush()
        for future in futures:
            assert future.done  # NOT a permanent DecisionPending
            assert future.outcome() == "error"
            with pytest.raises(RuntimeError):
                future.committed
        assert frontend.stats.flush_failures == 1

    def test_wal_append_crash_resolves_all_futures(self):
        # 2 of 3 bookies down < ack quorum: the 32nd submission fills
        # 1 KB, the count-flush syncs the WAL, the ledger append raises.
        # (Begin first: the TSO's reservation protocol also hits the
        # WAL, so the bookies must still be up while timestamps lease.)
        wal = BookKeeperWAL()
        oracle = make_oracle("wsi", wal=wal)
        frontend = OracleFrontend(oracle, max_batch=32)
        starts = [frontend.begin() for _ in range(32)]
        futures = [
            frontend.submit_commit(req(starts[i], writes={f"r{i}"}))
            for i in range(31)
        ]
        for bookie in wal.ledger_manager.bookies[:2]:
            bookie.crash()
        with pytest.raises(NotEnoughBookiesError):
            futures.append(
                frontend.submit_commit(req(starts[31], writes={"r31"}))
            )
        assert len(futures) == 31  # the 32nd submit raised mid-call
        open_batch = frontend._open_cell
        assert open_batch is None  # the doomed batch was abandoned
        # every submitted future resolved with the WAL error
        for future in futures:
            assert future.done and isinstance(future.error, NotEnoughBookiesError)
        assert frontend.stats.flush_failures == 1

    def test_done_callbacks_fire_on_abandoned_batch(self):
        frontend = OracleFrontend(_ExplodingEngine(), max_batch=100)
        future = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        resolved = []
        future.add_done_callback(lambda f: resolved.append(f.outcome()))
        with pytest.raises(RuntimeError):
            frontend.flush()
        assert resolved == ["error"]

    def test_admission_slots_released_after_failed_flush(self):
        frontend = OracleFrontend(_ExplodingEngine(), max_batch=100, max_queue_depth=3)
        for i in range(3):
            frontend.submit_commit(req(frontend.begin(), writes={f"r{i}"}))
        assert frontend.inflight == 3
        with pytest.raises(RuntimeError):
            frontend.flush()
        assert frontend.inflight == 0  # the bound is usable again
        frontend.submit_commit(req(frontend.begin(), writes={"again"}))

    def test_fail_pending_crashes_the_open_batch(self):
        frontend = OracleFrontend(make_oracle("wsi"), max_batch=100)
        decided = frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        frontend.flush()
        doomed = frontend.submit_commit(req(frontend.begin(), writes={"b"}))
        crashed = frontend.fail_pending(OracleClosed("host died"))
        assert crashed == 1
        assert decided.outcome() == "committed"  # earlier batch untouched
        assert doomed.outcome() == "error"
        assert isinstance(doomed.error, OracleClosed)
        assert frontend.stats.crashed_requests == 1
        assert frontend.fail_pending(OracleClosed("again")) == 0  # idempotent

    def test_fail_pending_leaves_backend_state_untouched(self):
        oracle = make_oracle("wsi")
        frontend = OracleFrontend(oracle, max_batch=100)
        frontend.submit_commit(req(frontend.begin(), writes={"x"}))
        frontend.fail_pending(OracleClosed("host died"))
        assert oracle.last_commit("x") is None  # never decided


class TestCloseTrigger:
    def test_close_flush_counted_apart_from_force(self):
        frontend = OracleFrontend(make_oracle("wsi"), max_batch=100)
        frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        frontend.close()
        assert frontend.stats.flushes_by_close == 1
        assert frontend.stats.flushes_by_force == 0

    def test_explicit_force_still_counted_as_force(self):
        frontend = OracleFrontend(make_oracle("wsi"), max_batch=100)
        frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        frontend.flush()
        frontend.submit_commit(req(frontend.begin(), writes={"b"}))
        frontend.close()
        assert frontend.stats.flushes_by_force == 1
        assert frontend.stats.flushes_by_close == 1


class TestAdmissionControl:
    def _frontend(self, depth, **kwargs):
        return OracleFrontend(
            make_oracle("wsi"), max_batch=100, max_queue_depth=depth, **kwargs
        )

    def test_bound_sheds_with_typed_rejection(self):
        frontend = self._frontend(2)
        frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        frontend.submit_abort(frontend.begin())
        with pytest.raises(Overloaded) as excinfo:
            frontend.submit_commit(req(frontend.begin(), writes={"c"}))
        assert excinfo.value.queue_depth == 2
        assert excinfo.value.limit == 2
        assert frontend.stats.overload_rejections == 1
        assert frontend.pending_count == 2  # the shed request never queued

    def test_nowait_paths_also_bounded(self):
        frontend = self._frontend(1)
        frontend.submit_commit_nowait(req(frontend.begin(), writes={"a"}))
        with pytest.raises(Overloaded):
            frontend.submit_abort_nowait(frontend.begin())

    def test_read_only_fast_path_exempt(self):
        frontend = self._frontend(1)
        frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        # read-only requests join no batch and hold no slot
        future = frontend.submit_commit(req(frontend.begin()))
        assert future.outcome() == "read-only"
        assert frontend.inflight == 1

    def test_slots_release_at_flush_without_durability_hook(self):
        frontend = self._frontend(2)
        frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        frontend.submit_commit(req(frontend.begin(), writes={"b"}))
        frontend.flush()
        assert frontend.inflight == 0
        assert frontend.stats.max_inflight_seen == 2

    def test_slots_deferred_until_mark_durable(self):
        frontend = self._frontend(2)
        attach = lambda cell: setattr(cell, "durable_event", object())
        frontend.on_flush(attach)
        frontend.submit_commit(req(frontend.begin(), writes={"a"}))
        cell = frontend.flush()
        # flushed but not durable: the slot is still held
        assert frontend.inflight == 1
        frontend.submit_commit(req(frontend.begin(), writes={"b"}))
        with pytest.raises(Overloaded):
            frontend.submit_commit(req(frontend.begin(), writes={"c"}))
        frontend.mark_durable(cell)
        assert frontend.inflight == 1  # only the new open batch remains
        frontend.mark_durable(cell)  # idempotent
        assert frontend.inflight == 1

    def test_unbounded_frontend_tracks_nothing(self):
        frontend = OracleFrontend(make_oracle("wsi"), max_batch=100)
        for i in range(10):
            frontend.submit_commit(req(frontend.begin(), writes={f"r{i}"}))
        assert frontend.inflight == 0
        assert frontend.stats.max_inflight_seen == 0

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            OracleFrontend(make_oracle("wsi"), max_queue_depth=0)


class TestRetryPolicyUnit:
    def test_schedule_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.01, multiplier=2.0, max_delay=0.05
        )
        assert list(policy.delays()) == [0.01, 0.02, 0.04, 0.05]
        assert policy.total_backoff() == pytest.approx(0.12)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0)

    def test_call_with_retry_recovers(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise Overloaded(5, 4)
            return "ok"

        backoffs = []
        result = call_with_retry(
            flaky,
            RetryPolicy(max_attempts=4, base_delay=0.001),
            retry_on=(Overloaded,),
            on_backoff=lambda attempt, delay: backoffs.append((attempt, delay)),
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert [a for a, _ in backoffs] == [1, 2]

    def test_call_with_retry_reraises_when_spent(self):
        def always():
            raise Overloaded(5, 4)

        with pytest.raises(Overloaded):
            call_with_retry(
                always, RetryPolicy(max_attempts=2), retry_on=(Overloaded,)
            )

    def test_foreign_errors_propagate_immediately(self):
        calls = []

        def boom():
            calls.append(1)
            raise RuntimeError("not retryable")

        with pytest.raises(RuntimeError):
            call_with_retry(
                boom, RetryPolicy(max_attempts=5), retry_on=(Overloaded,)
            )
        assert len(calls) == 1


class TestSessionBackpressure:
    def test_session_backs_off_and_resubmits(self):
        frontend = OracleFrontend(
            make_oracle("wsi"), max_batch=100, max_queue_depth=1
        )
        session = frontend.session()
        session._retry_policy = RetryPolicy(max_attempts=3, base_delay=0.001)
        session._sleep = lambda _delay: frontend.flush()
        session.begin()
        session.commit(write_set={"a"})
        session.begin()
        session.commit(write_set={"b"})
        assert session.overload_retries == 1
        assert session.backoff_seconds == pytest.approx(0.001)
        frontend.flush()
        assert session.commits == 2

    def test_policy_exhausted_reraises_and_txn_stays_open(self):
        frontend = OracleFrontend(
            make_oracle("wsi"), max_batch=100, max_queue_depth=1
        )
        from repro.server.session import ClientSession

        session = ClientSession(
            frontend, retry_policy=RetryPolicy(max_attempts=2, base_delay=0.001)
        )
        session.begin()
        session.commit(write_set={"a"})
        ts = session.begin()
        with pytest.raises(Overloaded):
            session.commit(write_set={"b"})
        assert session.open_count == 1  # still retryable elsewhere
        frontend.flush()
        future = session.commit(write_set={"b"}, start_ts=ts)
        frontend.flush()
        assert future.outcome() == "committed"
