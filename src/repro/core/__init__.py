"""Core contribution: write-snapshot isolation and the lock-free oracle.

Public surface:

* :class:`IsolationLevel`, :func:`create_system` — one-call assembly.
* :class:`TransactionManager`, :class:`Transaction` — the client API.
* :class:`SnapshotIsolationOracle` (Alg. 1),
  :class:`WriteSnapshotIsolationOracle` (Alg. 2),
  :class:`BoundedStatusOracle` (Alg. 3), :func:`make_oracle`.
* :class:`TimestampOracle` — batched-durability timestamp server.
* :class:`CommitTable`, :class:`ClientCommitView` — commit-state replicas.
* conflict predicates — the paper's §2/§4 definitions as functions.
* the exception hierarchy in :mod:`repro.core.errors`.
"""

from repro.core.analytics import (
    AnalyticalCommitRequest,
    AnalyticalOracle,
    RangeReadSet,
    RowRange,
)
from repro.core.commit_table import ClientCommitView, CommitTable
from repro.core.conflicts import (
    TxnFootprint,
    conflicts_under,
    rw_conflict,
    rw_spatial_overlap,
    rw_temporal_overlap,
    spatial_overlap,
    temporal_overlap,
    ww_conflict,
)
from repro.core.errors import (
    AbortException,
    ConflictAbort,
    DecisionPending,
    InvalidTransactionState,
    LockConflict,
    OracleClosed,
    RecoveryError,
    TmaxAbort,
    TransactionError,
    WALError,
)
from repro.core.isolation import IsolationLevel, TransactionalSystem, create_system
from repro.core.status_oracle import (
    BoundedStatusOracle,
    CommitRequest,
    CommitResult,
    OracleStats,
    SnapshotIsolationOracle,
    StatusOracle,
    WriteSnapshotIsolationOracle,
    make_oracle,
)
from repro.core.timestamps import TimestampOracle
from repro.core.transaction import Transaction, TransactionManager, TxnState

__all__ = [
    "AnalyticalOracle",
    "AnalyticalCommitRequest",
    "RangeReadSet",
    "RowRange",
    "IsolationLevel",
    "TransactionalSystem",
    "create_system",
    "TransactionManager",
    "Transaction",
    "TxnState",
    "StatusOracle",
    "SnapshotIsolationOracle",
    "WriteSnapshotIsolationOracle",
    "BoundedStatusOracle",
    "make_oracle",
    "CommitRequest",
    "CommitResult",
    "OracleStats",
    "TimestampOracle",
    "CommitTable",
    "ClientCommitView",
    "TxnFootprint",
    "ww_conflict",
    "rw_conflict",
    "spatial_overlap",
    "temporal_overlap",
    "rw_spatial_overlap",
    "rw_temporal_overlap",
    "conflicts_under",
    "TransactionError",
    "AbortException",
    "ConflictAbort",
    "DecisionPending",
    "TmaxAbort",
    "LockConflict",
    "InvalidTransactionState",
    "OracleClosed",
    "RecoveryError",
    "WALError",
]
