"""Fixture for the ``guarded-by`` pass.

``_pending`` is declared hot state owned by ``_lock`` (trailing form);
mutations outside ``with _lock:`` — including through a local alias —
are violations.  Reads and lock-holding mutations are fine.
"""

import threading


class Buffered:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []  # guarded-by: _lock

    def good_append(self, item):
        with self._lock:
            self._pending.append(item)

    def good_alias_lock(self, item):
        lock = self._lock
        with lock:
            self._pending.append(item)

    def good_read(self):
        return len(self._pending)

    def bad_append(self, item):
        self._pending.append(item)  # EXPECT: guarded-by

    def bad_rebind(self):
        self._pending = []  # EXPECT: guarded-by

    def bad_subscript(self, idx, item):
        self._pending[idx] = item  # EXPECT: guarded-by

    def bad_alias(self, item):
        pending = self._pending
        pending.append(item)  # EXPECT: guarded-by

    def reviewed(self, item):
        self._pending.append(item)  # lint: skip=guarded-by -- fixture
