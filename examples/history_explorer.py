#!/usr/bin/env python3
"""Interactive history classifier: paste a history, get the verdicts.

Uses the Berenson notation the paper uses — ``r1[x] w2[y] c1 c2`` — and
reports, for any history:

* is it (multiversion) serializable?
* would a snapshot-isolation oracle admit it (Algorithm 1)?
* would a write-snapshot-isolation oracle admit it (Algorithm 2)?
* which named anomalies manifest (write skew, lost update, ...)?

Run:  python examples/history_explorer.py                 # the paper's H1-H7
      python examples/history_explorer.py "r1[x] w2[x] c2 w1[y] c1"
"""

import sys

from repro.history import (
    ALL_HISTORIES,
    allowed_under_si,
    allowed_under_wsi,
    equivalent_serial_order,
    find_lost_updates,
    find_write_skew,
    is_serializable,
    parse_history,
    serialize_by_commit_order,
)


def explain(name: str, text: str) -> None:
    history = parse_history(text)
    print(f"\n{name}: {history}")

    serializable = is_serializable(history)
    print(f"  serializable:        {'yes' if serializable else 'NO'}", end="")
    if serializable:
        order = equivalent_serial_order(history)
        witness = [t for t in order if t != 0]
        print(f"  (serial order: {' -> '.join(f'txn{t}' for t in witness)})")
    else:
        print()

    si = allowed_under_si(history)
    if si.allowed:
        print("  snapshot isolation:  allows it")
    else:
        print(
            f"  snapshot isolation:  aborts txn{si.first_rejected} "
            f"(ww-conflict on {si.conflict_row} with txn{si.conflicting_with})"
        )

    wsi = allowed_under_wsi(history)
    if wsi.allowed:
        print("  write-snapshot iso.: allows it")
        serial = serialize_by_commit_order(history)
        print(f"  serial(h):           {serial}")
    else:
        print(
            f"  write-snapshot iso.: aborts txn{wsi.first_rejected} "
            f"(rw-conflict on {wsi.conflict_row} with txn{wsi.conflicting_with})"
        )

    for witness in find_write_skew(history):
        print(f"  anomaly:             {witness}")
    for witness in find_lost_updates(history):
        print(f"  anomaly:             {witness}")


def main() -> None:
    if len(sys.argv) > 1:
        for i, text in enumerate(sys.argv[1:], 1):
            explain(f"input {i}", text)
        return
    print("No history given: classifying the paper's H1-H7.")
    notes = {
        "H1": "SI's non-serializable crossover (§3.1)",
        "H2": "write skew violating x+y>0 (§3.1)",
        "H3": "lost update — both levels must prevent (§3.2)",
        "H4": "blind write — serializable, yet SI aborts it (§3.2)",
        "H5": "serial equivalent of H4",
        "H6": "serializable, yet WSI aborts it (§4.3)",
        "H7": "serial equivalent of H6",
    }
    for name in sorted(ALL_HISTORIES):
        print(f"\n--- {notes[name]}")
        explain(name, str(ALL_HISTORIES[name]))


if __name__ == "__main__":
    main()
