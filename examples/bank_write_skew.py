#!/usr/bin/env python3
"""The paper's write-skew scenario as a banking application (§3.1).

A couple shares two accounts; the bank's rule is that the *sum* must
stay positive (one account may go negative as long as the other covers
it).  Each withdrawal transaction checks the constraint before writing —
and yet, under snapshot isolation, two concurrent withdrawals can drive
the sum negative: the write-skew anomaly (History 2).

Under write-snapshot isolation the same interleaving aborts one of the
two withdrawals, because the committed one modified data the other read.

Run:  python examples/bank_write_skew.py
"""

from repro import create_system
from repro.core.errors import ConflictAbort

CHECKING, SAVINGS = "account:checking", "account:savings"


def open_accounts(manager) -> None:
    txn = manager.begin()
    txn.write(CHECKING, 60)
    txn.write(SAVINGS, 60)
    txn.commit()


def withdraw(txn, account: str, amount: int) -> bool:
    """Withdraw with an application-level constraint check.

    The constraint is validated *inside* the transaction, against its
    snapshot — exactly what a careful developer would write, and exactly
    what snapshot isolation silently undermines.
    """
    checking = txn.read(CHECKING)
    savings = txn.read(SAVINGS)
    balance = checking if account == CHECKING else savings
    if checking + savings - amount <= 0:
        return False  # constraint would be violated: refuse
    txn.write(account, balance - amount)
    return True


def run_concurrent_withdrawals(level: str) -> None:
    print(f"\n=== {level.upper()} ===")
    system = create_system(level)
    open_accounts(system.manager)

    # Two tellers process withdrawals at the same moment.
    teller1 = system.manager.begin()
    teller2 = system.manager.begin()

    ok1 = withdraw(teller1, CHECKING, 100)  # sum 120: 120-100 > 0, allowed
    ok2 = withdraw(teller2, SAVINGS, 100)   # same snapshot: also allowed
    print(f"teller1 approved: {ok1}, teller2 approved: {ok2}")

    outcomes = []
    for name, teller in (("teller1", teller1), ("teller2", teller2)):
        try:
            teller.commit()
            outcomes.append(f"{name} committed")
        except ConflictAbort as exc:
            outcomes.append(f"{name} ABORTED ({exc.reason})")
    print("; ".join(outcomes))

    audit = system.manager.begin()
    total = audit.read(CHECKING) + audit.read(SAVINGS)
    status = "OK" if total > 0 else "VIOLATED — the bank lost money!"
    print(f"final: checking={audit.read(CHECKING)}, savings={audit.read(SAVINGS)}, "
          f"sum={total}  -> constraint {status}")


def main() -> None:
    print("Invariant: checking + savings must stay > 0")
    print("Initial:   checking=60, savings=60; two concurrent 100-unit withdrawals")
    run_concurrent_withdrawals("si")   # write skew: both commit, sum -80
    run_concurrent_withdrawals("wsi")  # rw-conflict: one aborts, sum stays +20

    print(
        "\nSnapshot isolation committed both withdrawals even though each"
        "\nvalidated the constraint — History 2 of the paper.  Write-snapshot"
        "\nisolation aborted one: read-write conflict detection is sufficient"
        "\nfor serializability (Theorem 1)."
    )


if __name__ == "__main__":
    main()
