"""E7 — Figure 10: abort rate with zipfianLatest distribution.

Paper: "The abort rate with zipfianLatest increases more quickly
compared to zipfian.  Although the abort rates are similar in
write-snapshot isolation and snapshot isolation, it is slightly larger
in write-snapshot isolation: with throughput of 361 TPS the abort rate
under write-snapshot isolation is 21%, which is 2% larger than that
under snapshot isolation.  This is because in zipfianLatest the read set
is selected mostly from the recent written data, which increases the
chance of a read-write conflict in write-snapshot isolation.  This
slight overhead is the cost that we pay to benefit from the
serializability feature offered by write-snapshot isolation."
"""

import pytest

from repro.bench import abort_rate_chart, format_table, monotonic_increasing
from repro.sim.cluster_sim import sweep_cluster

CLIENTS = [5, 10, 20, 40, 80, 160, 320, 640]


def run_both():
    si = sweep_cluster("si", "zipfianLatest", client_counts=CLIENTS, measure=10.0)
    wsi = sweep_cluster("wsi", "zipfianLatest", client_counts=CLIENTS, measure=10.0)
    return si, wsi


@pytest.mark.figure("fig10")
def test_e7_fig10_latest_abort_rate(benchmark, print_header):
    si, wsi = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_header("E7 — Figure 10: abort rate with zipfianLatest distribution")
    rows = [
        (
            a.num_clients,
            f"{a.throughput_tps:.0f}",
            f"{100 * a.abort_rate:.1f}%",
            f"{b.throughput_tps:.0f}",
            f"{100 * b.abort_rate:.1f}%",
            f"{100 * (b.abort_rate - a.abort_rate):+.1f}pp",
        )
        for a, b in zip(si, wsi)
    ]
    print(
        format_table(
            ["clients", "SI TPS", "SI aborts", "WSI TPS", "WSI aborts", "WSI-SI"],
            rows,
            title="abort rate vs throughput (paper: WSI 21% vs SI 19% at 361 TPS)",
        )
    )

    print()
    print(abort_rate_chart(
        "Figure 10 (reproduced): abort rate, zipfianLatest",
        {
            "WSI": [(r.throughput_tps, 100 * r.abort_rate) for r in wsi],
            "SI": [(r.throughput_tps, 100 * r.abort_rate) for r in si],
        },
    ))
    # Shape: abort rate grows with load.
    assert monotonic_increasing([r.abort_rate for r in wsi], slack=0.15)
    # The serializability tax: WSI aborts at least as much as SI at high
    # load (reads target recently-written rows -> rw-conflicts), and the
    # gap stays "slight" (paper: 2 percentage points; we allow up to 6).
    high_load = [(a, b) for a, b in zip(si, wsi) if b.num_clients >= 160]
    gaps = [b.abort_rate - a.abort_rate for a, b in high_load]
    assert sum(gaps) / len(gaps) > -0.01  # WSI >= SI on average
    assert all(gap < 0.06 for gap in gaps)
    # Both land in a plausible band (paper ~19-21% at saturation; our
    # hashed-layout model yields lower absolute rates, see EXPERIMENTS.md).
    assert 0.02 < max(r.abort_rate for r in wsi) < 0.35
