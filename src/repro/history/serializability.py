"""Serializability checkers for (multiversion) histories.

Two formalisms, both standard:

* **Conflict serializability** (single-version): precedence graph over
  r/w conflicts in physical order; acyclic <=> conflict-serializable.
  Included for contrast — it is *too strict* for the paper's MVCC
  histories (it rejects H4, which the paper shows is serializable).
* **Multiversion serializability** (Bernstein–Goodman MVSG; what the
  paper means by "serializable"): with versions ordered by commit
  timestamp, build the multiversion serialization graph and test
  acyclicity.  This accepts exactly the histories that are equivalent to
  a serial execution under MVCC semantics — it accepts H4 and H6 and
  rejects H1/H2/H3, matching §3–4 of the paper.

Also provided: :func:`serialize_by_commit_order`, the constructive
transformation from the paper's Lemmas 1–2 (move read-only transactions
to their start, write transactions to their commit), and
:func:`equivalent`, the output-equivalence test used to validate it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.errors import InvariantViolation
from repro.history.history import History, Operation


# ----------------------------------------------------------------------
# graph utilities
# ----------------------------------------------------------------------
def find_cycle(edges: Dict[int, Set[int]]) -> Optional[List[int]]:
    """Return one cycle as a node list, or None if the digraph is acyclic."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {node: WHITE for node in edges}
    for nbrs in edges.values():
        for n in nbrs:
            color.setdefault(n, WHITE)
    stack_path: List[int] = []

    def dfs(node: int) -> Optional[List[int]]:
        color[node] = GRAY
        stack_path.append(node)
        for nbr in edges.get(node, ()):  # deterministic: sets of ints
            if color[nbr] == GRAY:
                idx = stack_path.index(nbr)
                return stack_path[idx:] + [nbr]
            if color[nbr] == WHITE:
                cycle = dfs(nbr)
                if cycle is not None:
                    return cycle
        stack_path.pop()
        color[node] = BLACK
        return None

    for node in sorted(color):
        if color[node] == WHITE:
            cycle = dfs(node)
            if cycle is not None:
                return cycle
    return None


def topological_order(edges: Dict[int, Set[int]]) -> Optional[List[int]]:
    """Topological sort; None if cyclic.  Ties broken by node number."""
    nodes: Set[int] = set(edges)
    for nbrs in edges.values():
        nodes |= nbrs
    indegree = {n: 0 for n in nodes}
    for nbrs in edges.values():
        for n in nbrs:
            indegree[n] += 1
    ready = sorted(n for n, d in indegree.items() if d == 0)
    order: List[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for nbr in sorted(edges.get(node, ())):
            indegree[nbr] -= 1
            if indegree[nbr] == 0:
                # insert keeping `ready` sorted
                lo, hi = 0, len(ready)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if ready[mid] < nbr:
                        lo = mid + 1
                    else:
                        hi = mid
                ready.insert(lo, nbr)
    if len(order) != len(nodes):
        return None
    return order


# ----------------------------------------------------------------------
# single-version conflict serializability (for contrast)
# ----------------------------------------------------------------------
def precedence_graph(history: History) -> Dict[int, Set[int]]:
    """Classic conflict graph: edge Ti -> Tj for each pair of conflicting
    operations with Ti's op first (rw, wr, ww on the same item)."""
    committed = set(history.committed_transactions())
    edges: Dict[int, Set[int]] = {t: set() for t in committed}
    ops = [
        (i, op) for i, op in enumerate(history.operations)
        if op.kind in ("r", "w") and op.txn in committed
    ]
    for a_idx in range(len(ops)):
        _, a = ops[a_idx]
        for b_idx in range(a_idx + 1, len(ops)):
            _, b = ops[b_idx]
            if a.txn == b.txn or a.item != b.item:
                continue
            if a.kind == "w" or b.kind == "w":
                edges[a.txn].add(b.txn)
    return edges


def is_conflict_serializable(history: History) -> bool:
    """Single-version conflict serializability (acyclic precedence graph)."""
    return find_cycle(precedence_graph(history)) is None


# ----------------------------------------------------------------------
# multiversion serializability (the paper's notion)
# ----------------------------------------------------------------------
def mvsg(history: History) -> Dict[int, Set[int]]:
    """Multiversion serialization graph with commit-order versions.

    Nodes are committed transactions plus a virtual initializer ``0``
    (writer of every item's initial version).  Edges:

    1. reads-from: writer -> reader;
    2. for reader ``Tk`` reading version ``x_i`` and another committed
       writer ``Tj`` of x: if ``x_j`` precedes ``x_i`` in version order,
       add ``Tj -> Ti``, else add ``Tk -> Tj``.

    Version order is commit order (the paper's systems install versions
    at commit timestamps), with the initial version first.
    """
    committed = history.committed_transactions()
    commit_pos: Dict[int, int] = {}
    for t in committed:
        pos = history.commit_position(t)
        if pos is None:
            raise InvariantViolation(f"committed txn {t} has no commit position")
        commit_pos[t] = pos
    # virtual initial txn 0 commits before everything
    INIT = 0
    if INIT in commit_pos:
        raise ValueError("history must not use transaction number 0")
    commit_pos[INIT] = -1

    edges: Dict[int, Set[int]] = {t: set() for t in committed}
    edges[INIT] = set()

    reads = history.reads_from(snapshot_reads=True)
    committed_set = set(committed)

    for (reader, item), writer in reads.items():
        if reader not in committed_set:
            continue
        src = INIT if writer is None else writer
        if src != reader and src in commit_pos:
            edges[src].add(reader)
        # rule 2: compare against every other committed writer of `item`
        for other in committed:
            if other in (reader, src) or item not in history.write_set(other):
                continue
            if commit_pos[other] < commit_pos[src]:
                edges[other].add(src)
            else:
                if reader != other:
                    edges[reader].add(other)
    return edges


def is_serializable(history: History) -> bool:
    """The paper's serializability: MVSG (commit-order versions) acyclic.

    Matches §3–4: H1, H2, H3 are not serializable; H4, H5, H6, H7 are.
    """
    return find_cycle(mvsg(history)) is None


def equivalent_serial_order(history: History) -> Optional[List[int]]:
    """A serial order witnessing serializability, or None."""
    return topological_order(mvsg(history))


# ----------------------------------------------------------------------
# output equivalence & the paper's constructive serialization
# ----------------------------------------------------------------------
def observed_state(history: History) -> Dict[str, Optional[int]]:
    """Final database state, abstracted: item -> committed final writer."""
    return {item: history.final_writer(item) for item in sorted(history.items())}


def observed_reads(history: History) -> Dict[Tuple[int, str], Optional[int]]:
    """reads-from relation restricted to committed readers."""
    committed = set(history.committed_transactions())
    return {
        key: writer
        for key, writer in history.reads_from(snapshot_reads=True).items()
        if key[0] in committed
    }


def equivalent(h1: History, h2: History) -> bool:
    """Paper §3: 'Two histories are equivalent if they include the same
    transactions and produce the same output.'

    Operationalized as: same committed transactions, every committed
    transaction reads from the same writers (hence computes the same
    values), and every item ends with the same final writer.
    """
    if set(h1.committed_transactions()) != set(h2.committed_transactions()):
        return False
    return (
        observed_reads(h1) == observed_reads(h2)
        and observed_state(h1) == observed_state(h2)
    )


def serialize_by_commit_order(history: History) -> History:
    """The constructive transformation of §4.2 (Lemmas 1 & 2).

    Build ``serial(h)``:

    1. keep the commit order of write transactions;
    2. keep the order of operations inside each transaction;
    3. move a read-only transaction's operations to right after its start;
    4. move a write transaction's operations to right before its commit.

    Aborted transactions are dropped ("their modifications are not read
    by other transactions").

    For histories produced under WSI the result is serial *and*
    equivalent (the paper's Theorem 1); property-based tests verify both.
    """
    committed = history.committed_transactions()
    read_only = {
        t for t in committed if not history.write_set(t)
    }
    # Anchor point of each transaction in the original interleaving:
    anchors: List[Tuple[int, int]] = []  # (anchor position, txn)
    for t in committed:
        if t in read_only:
            anchors.append((history.start_position(t), t))
        else:
            pos = history.commit_position(t)
            if pos is None:
                raise InvariantViolation(
                    f"committed txn {t} has no commit position"
                )
            anchors.append((pos, t))
    anchors.sort()
    ops: List[Operation] = []
    for _, t in anchors:
        ops.extend(op for op in history.operations_of(t) if op.kind != "a")
    return History(ops)
