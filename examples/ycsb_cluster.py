#!/usr/bin/env python3
"""The paper's evaluation in miniature: SI vs WSI over the cluster sim.

Runs the mixed YCSB-style workload (§6.1) through the discrete-event
cluster simulation at a few client counts for each key distribution, and
prints the latency / throughput / abort-rate comparison — a fast version
of Figures 6-10 (the full sweeps live in benchmarks/).

Run:  python examples/ycsb_cluster.py            # quick (~30 s)
      python examples/ycsb_cluster.py --full     # the paper's client sweep
"""

import sys

from repro.bench import format_table
from repro.sim import ClusterSim

QUICK_CLIENTS = [20, 80, 320]
FULL_CLIENTS = [5, 10, 20, 40, 80, 160, 320, 640]


def run(distribution: str, clients, measure: float):
    print(f"\n=== mixed workload, {distribution} distribution ===")
    rows = []
    for n in clients:
        per_level = {}
        for level in ("si", "wsi"):
            result = ClusterSim(
                level=level,
                distribution=distribution,
                num_clients=n,
                measure=measure,
                warmup=1.0,
                seed=42,
            ).run()
            per_level[level] = result
        si, wsi = per_level["si"], per_level["wsi"]
        rows.append(
            (
                n,
                f"{si.throughput_tps:.0f}",
                f"{si.avg_latency_ms:.0f}",
                f"{100 * si.abort_rate:.1f}%",
                f"{wsi.throughput_tps:.0f}",
                f"{wsi.avg_latency_ms:.0f}",
                f"{100 * wsi.abort_rate:.1f}%",
            )
        )
    print(
        format_table(
            ["clients", "SI TPS", "SI ms", "SI ab", "WSI TPS", "WSI ms", "WSI ab"],
            rows,
        )
    )


def main() -> None:
    full = "--full" in sys.argv
    clients = FULL_CLIENTS if full else QUICK_CLIENTS
    measure = 8.0 if full else 4.0
    for distribution in ("uniform", "zipfian", "zipfianLatest"):
        run(distribution, clients, measure)
    print(
        "\nTakeaways (matching §6.4-6.5): WSI tracks SI closely everywhere;"
        "\nuniform aborts ~0; zipfian conflicts grow with throughput; and the"
        "\nzipfianLatest read sets drawn from fresh writes cost WSI a slightly"
        "\nhigher abort rate — the price of serializability."
    )


if __name__ == "__main__":
    main()
