"""The read-only transaction anomaly (Fekete, O'Neil & O'Neil 2004).

The strongest known stress test for SI-adjacent protocols: a
*read-only* transaction makes an otherwise-serializable pair of updates
non-serializable.  Snapshot isolation admits it; write-snapshot
isolation must reject it *without ever aborting the read-only
transaction itself* — the combination §4.1's read-only exemption and
Theorem 1 promise, worth verifying explicitly.

Scenario (checking x, savings y, both 0):

* T1 deposits 20 into y;
* T2 withdraws 10 from x, incurring an overdraft fee because it saw
  x + y = 0 (it missed T1's deposit);
* T3 (read-only) reads x and y after T1 committed, seeing the deposit
  but not the withdrawal.

T3 observes (x=0, y=20): T1 happened, T2 did not ⟹ T1 < T2.  But T2
missed T1's deposit ⟹ T2 < T1.  Cycle: not serializable, even though
the history without T3 is serializable.
"""

import pytest

from repro.core import create_system
from repro.core.errors import ConflictAbort
from repro.history import (
    allowed_under_si,
    allowed_under_wsi,
    is_serializable,
    parse_history,
)

ANOMALY = parse_history(
    "r2[x] r2[y] r1[y] w1[y] c1 r3[x] r3[y] c3 w2[x] c2"
)
WITHOUT_READER = parse_history("r2[x] r2[y] r1[y] w1[y] c1 w2[x] c2")


class TestTheAnomaly:
    def test_full_history_not_serializable(self):
        assert not is_serializable(ANOMALY)

    def test_without_the_reader_it_is_serializable(self):
        # The two writers alone are fine: the only antidependency is
        # T2 -> T1 (T2 read y before T1's deposit); T1 reads nothing T2
        # writes, so no cycle — serial order T2, T1.
        assert is_serializable(WITHOUT_READER)

    def test_si_admits_it(self):
        # Disjoint write sets: SI cannot see the problem.
        assert allowed_under_si(ANOMALY).allowed

    def test_wsi_rejects_it_via_a_write_transaction(self):
        result = allowed_under_wsi(ANOMALY)
        assert not result.allowed
        # the aborted transaction is T2 (a writer), never T3 (read-only)
        assert result.first_rejected == 2
        assert result.conflict_row == "y"


class TestLiveExecution:
    def _run(self, level):
        system = create_system(level)
        init = system.manager.begin()
        init.write("x", 0)
        init.write("y", 0)
        init.commit()

        t2 = system.manager.begin()  # withdrawal: starts first
        assert t2.read("x") + t2.read("y") == 0

        t1 = system.manager.begin()  # deposit: touches only y
        deposit_base = t1.read("y")
        t1.write("y", deposit_base + 20)
        t1.commit()

        t3 = system.manager.begin()  # read-only report
        report = (t3.read("x"), t3.read("y"))
        t3.commit()  # must always succeed

        outcome = {"report": report, "t3_committed": True}
        try:
            t2.write("x", -11)  # 10 + overdraft fee, based on stale sum
            t2.commit()
            outcome["t2"] = "committed"
        except ConflictAbort:
            outcome["t2"] = "aborted"
        return outcome

    def test_si_produces_the_anomaly(self):
        outcome = self._run("si")
        assert outcome["t2"] == "committed"
        # T3's report shows the deposit but history ends with a fee that
        # assumed no deposit: the non-serializable outcome.
        assert outcome["report"] == (0, 20)

    def test_wsi_prevents_it_and_spares_the_reader(self):
        outcome = self._run("wsi")
        assert outcome["t2"] == "aborted"  # the writer pays
        assert outcome["t3_committed"]  # the read-only reader never does
        assert outcome["report"] == (0, 20)
