"""E1 — §6.2 microbenchmark table: per-operation latency breakdown.

Paper (one client, 34-machine testbed):

    start timestamp      0.17 ms
    random read (cold)  38.8  ms
    write                1.13 ms
    commit request       4.1  ms

The simulated single client must land on the same means.
"""

import pytest

from repro.bench import PaperAnchor
from repro.sim.microbench import run_microbench


@pytest.mark.figure("table-6.2")
def test_e1_operation_latency_breakdown(benchmark, print_header):
    result = benchmark.pedantic(
        lambda: run_microbench(samples=3000, seed=7),
        rounds=1,
        iterations=1,
    )
    print_header("E1 — §6.2 microbenchmark: operation latency breakdown")
    print(result.as_table())
    anchors = [
        PaperAnchor("start timestamp (ms)", 0.17, result.start_timestamp_ms, "ms"),
        PaperAnchor("random read, cold (ms)", 38.8, result.read_cold_ms, "ms"),
        PaperAnchor("write (ms)", 1.13, result.write_ms, "ms"),
        PaperAnchor("commit request (ms)", 4.1, result.commit_ms, "ms"),
    ]
    for anchor in anchors:
        print(anchor.as_row())

    # Shape: every operation within 20% of the paper's mean; ordering
    # start < write < commit < cold read strictly holds.
    assert result.start_timestamp_ms == pytest.approx(0.17, rel=0.2)
    assert result.read_cold_ms == pytest.approx(38.8, rel=0.2)
    assert result.write_ms == pytest.approx(1.13, rel=0.2)
    assert result.commit_ms == pytest.approx(4.1, rel=0.2)
    assert (
        result.start_timestamp_ms
        < result.write_ms
        < result.commit_ms
        < result.read_cold_ms
    )
