"""The group-commit oracle frontend: batched conflict detection.

§6.3 reports that "the current implementation of status oracle executes
the conflict detection algorithm in a critical section" and that the
oracle reaches its throughput only because the per-request costs —
entering the critical section, and above all persisting the decision via
BookKeeper — are *amortized* over many concurrent commit requests.  The
seed :class:`~repro.core.status_oracle.StatusOracle` pays every one of
those costs per request; :class:`OracleFrontend` restores the paper's
amortization:

* commit/abort requests from many logical client sessions are coalesced
  into bounded batches (a count bound, ``max_batch``, and a flush
  interval in injected time, mirroring the WAL's own 1 KB / 5 ms policy
  from Appendix A);
* conflict detection for the whole batch runs inside **one** critical
  section, in submission order, through the backend's own
  :meth:`~repro.core.status_oracle.StatusOracle.decide_batch` engine —
  one bulk pass, not one ``commit()`` call per request — so the
  decisions are observationally identical to feeding the unbatched
  oracle the same requests in batch order (the property suite in
  ``tests/server`` proves this for SI, WSI, the bounded and the
  partitioned oracle);
* the batch's decisions are persisted as a **single**
  :data:`~repro.wal.bookkeeper.GROUP_COMMIT_RECORD` WAL record, and the
  per-request futures resolve only at flush time — group commit.

The frontend never changes *what* is decided, only *when* the decision
is computed and persisted — the same thin-frontend property MetaSys-style
metadata layers rely on, and the property this repo's equivalence tests
pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.analysis.racecheck import active_checker, make_lock
from repro.core.engine import CommitEngine
from repro.core.errors import DecisionPending, OracleClosed, Overloaded
from repro.core.status_oracle import (
    CLIENT_ABORT,
    CommitRequest,
    CommitResult,
)
from repro.wal.bookkeeper import BookKeeperWAL

#: Default batch bound: 32 decisions fill exactly one 1 KB WAL entry at
#: Appendix A's 32 B per record, so one frontend batch maps onto one
#: BookKeeper ledger write.
DEFAULT_MAX_BATCH = 32
#: Default flush interval mirrors the WAL's 5 ms time trigger.
DEFAULT_FLUSH_INTERVAL = 0.005


@dataclass
class FlushedBatch:
    """One frontend batch: created when the batch opens, filled at flush.

    ``on_flush`` listeners receive it after the group-commit WAL record
    is queued but *before* ``flushed`` flips true (i.e. before any future
    reports done), so a simulator can attach a durability event first.
    The decision payloads are exactly what went into the WAL record, in
    decision order — callback-style clients (and the throughput bench's
    ``submit_commit_nowait`` path) read outcomes from here without
    per-request future objects.
    """

    flushed: bool = False
    seq: int = 0
    trigger: str = ""  # "count" | "timer" | "force" | "close" | "failed"
    #: How many batch items (commit requests + client aborts) this batch
    #: admitted — the admission-control unit released when the batch is
    #: durable (read-only fast-path requests never join a batch).
    requests: int = 0
    #: Futures of this batch, in submission order (nowait submissions
    #: contribute none); populated at submit time, emptied once the
    #: batch resolves so one retained future doesn't pin its siblings.
    #: ``on_flush`` listeners see the full list.
    futures: List["CommitFuture"] = None  # type: ignore[assignment]
    commits: int = 0
    aborts: int = 0
    rows_checked: int = 0
    rows_updated: int = 0
    wal_written: bool = False
    #: ``(start_ts, commit_ts, rows)`` per committed request, in order.
    committed_payload: Tuple = ()
    #: aborted start timestamps, in order.
    aborted_payload: Tuple = ()
    #: ``(start_ts, exception)`` per request whose decision raised (e.g.
    #: aborting an already-committed transaction) — the error is isolated
    #: to that request; the rest of the batch decides normally.
    errors: Tuple = ()
    #: Free slot for integrators (repro.sim stores the durability event).
    #: When a flush listener sets this, the batch's admission-control
    #: slots stay held until :meth:`OracleFrontend.mark_durable` is
    #: called (deferred durability); otherwise they release at flush.
    durable_event: Any = None
    #: True once this batch's admission slots were given back.
    released: bool = False
    #: True once some future of this batch registered a done-callback.
    has_callbacks: bool = False
    #: Per-partition protocol rounds this flush cost, when the backend
    #: is a :class:`~repro.core.partitioned.PartitionedOracle` decided
    #: through its batch engine (a
    #: :class:`~repro.core.partitioned.BatchRounds`); ``None`` for
    #: monolithic backends and per-request mode.  In a distributed
    #: deployment each check/install round is one RPC to one partition —
    #: this is the amortization the cross-partition batch protocol buys.
    protocol_rounds: Any = None

    @property
    def size(self) -> int:
        return self.commits + self.aborts


class CommitFuture:
    """The pending outcome of a batched commit (or abort) request.

    Resolved when the batch containing the request flushes.  Reading the
    outcome before resolution raises :class:`DecisionPending`; register a
    callback via :meth:`add_done_callback` to be notified at flush (the
    discrete-event simulator bridges this to an engine event).
    """

    # Class-level defaults keep per-future work on the hot path to two
    # attribute writes (start_ts at submit, batch at enqueue).
    _done = False  # instance-true only for read-only fast-path futures
    _committed = False
    _commit_ts: Optional[int] = None
    _reason = ""
    _row: Any = None
    _error: Optional[BaseException] = None
    _result: Optional[CommitResult] = None
    _cbs: Optional[List[Callable[["CommitFuture"], None]]] = None
    batch: Optional[FlushedBatch] = None

    def __init__(self, start_ts: int) -> None:
        self.start_ts = start_ts

    @property
    def done(self) -> bool:
        if self._done:
            return True
        batch = self.batch
        return batch is not None and batch.flushed

    @property
    def error(self) -> Optional[BaseException]:
        """The exception this request's decision raised, if any (the
        unbatched oracle would have raised it at the call site)."""
        return self._error

    @property
    def committed(self) -> bool:
        if not self.done:
            raise DecisionPending(f"txn {self.start_ts}: batch not yet flushed")
        if self._error is not None:
            raise self._error
        return self._committed

    @property
    def commit_ts(self) -> Optional[int]:
        if not self.done:
            raise DecisionPending(f"txn {self.start_ts}: batch not yet flushed")
        if self._error is not None:
            raise self._error
        return self._commit_ts

    def result(self) -> CommitResult:
        """The decision as a :class:`CommitResult` (built lazily)."""
        if not self.done:
            raise DecisionPending(f"txn {self.start_ts}: batch not yet flushed")
        if self._error is not None:
            raise self._error
        result = self._result
        if result is None:
            # lint: skip=future-discipline -- blessed: lazy result cache
            # built from already-settled decision fields, not a settle.
            result = self._result = CommitResult(
                self._committed,
                self.start_ts,
                commit_ts=self._commit_ts,
                reason=self._reason,
                conflict_row=self._row,
            )
        return result

    def outcome(self) -> str:
        """The resolved outcome as a public tag — ``"committed"``,
        ``"read-only"`` (committed with no commit timestamp, §5.1),
        ``"aborted"``, or ``"error"`` (the decision raised; the exception
        is on :attr:`error`).

        Unlike :attr:`committed` / :meth:`result`, this never re-raises
        the decision error — tally/bookkeeping callers (e.g.
        :meth:`~repro.server.session.ClientSession`'s done-callback) can
        classify every resolution through one stable surface instead of
        reading future internals.
        """
        if not self.done:
            raise DecisionPending(f"txn {self.start_ts}: batch not yet flushed")
        if self._error is not None:
            return "error"
        if self._committed:
            return "read-only" if self._commit_ts is None else "committed"
        return "aborted"

    def add_done_callback(self, fn: Callable[["CommitFuture"], None]) -> None:
        if self.done:
            fn(self)
            return
        if self._cbs is None:
            self._cbs = [fn]
        else:
            self._cbs.append(fn)
        self.batch.has_callbacks = True

    def _fire_callbacks(self) -> None:
        cbs = self._cbs
        if cbs:
            self._cbs = None
            for fn in cbs:
                fn(self)


class FutureArena:
    """Freelist of :class:`CommitFuture` objects for high-rate ingest.

    The throughput-bound ingest paths (bulk load, log apply, benchmark
    E17's nowait drivers) either forgo futures entirely
    (``submit_commit_nowait``) or, when the client does want a handle
    per request, allocate one ``CommitFuture`` per submission — at
    batch-128 flush rates that is pure allocator churn, since every
    future dies as soon as its outcome is read.  The arena recycles
    them: :meth:`~OracleFrontend.submit_commit_pooled` draws from the
    freelist and the client hands the future back with
    :meth:`~OracleFrontend.recycle_future` once it has read the
    outcome.

    Reset is one ``__dict__.clear()``: every per-decision field on
    ``CommitFuture`` is a *class-level* default precisely so that a
    bare instance is a fresh future — clearing the instance dict
    restores all of them (and drops the ``batch`` back-reference, so a
    pooled future never pins a resolved batch).  Recycling a pending
    future is refused: its batch still owns it.
    """

    __slots__ = ("_free", "allocated", "reused", "recycled")

    def __init__(self) -> None:
        self._free: List[CommitFuture] = []
        #: futures constructed because the freelist was empty.
        self.allocated = 0
        #: acquisitions served from the freelist.
        self.reused = 0
        #: futures handed back (``recycled - reused`` = freelist depth).
        self.recycled = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, start_ts: int) -> CommitFuture:
        """A fresh-looking future for ``start_ts`` (recycled if possible)."""
        free = self._free
        if free:
            future = free.pop()
            future.__dict__.clear()
            future.start_ts = start_ts
            self.reused += 1
        else:
            future = CommitFuture(start_ts)
            self.allocated += 1
        return future

    def release(self, future: CommitFuture) -> None:
        """Return a *settled* future to the freelist.

        The caller asserts it holds the only live reference; reading a
        recycled future afterwards observes a later request's outcome
        (the usual arena contract).
        """
        if not future.done:
            raise ValueError(
                f"txn {future.start_ts}: cannot recycle a pending future "
                "(its batch still owns it)"
            )
        self.recycled += 1
        self._free.append(future)


@dataclass
class FrontendStats:
    """Batching behaviour counters (the backend oracle keeps the
    protocol-level :class:`~repro.core.status_oracle.OracleStats`)."""

    batches: int = 0
    batched_requests: int = 0
    read_only_fast_path: int = 0
    client_aborts: int = 0
    #: How many timestamp leases were taken from the backend: one per
    #: local lease refill plus one per ``begin_many`` shortfall (0 when
    #: ``begin_lease=1`` and only per-call ``begin()`` is used).
    begin_leases: int = 0
    flushes_by_count: int = 0
    flushes_by_timer: int = 0
    flushes_by_force: int = 0
    #: ``close()``'s final flush, counted apart from explicit forces —
    #: a deployment that sees many close-flushes is tearing frontends
    #: down mid-batch, a different signal than callers forcing flushes.
    flushes_by_close: int = 0
    max_batch_seen: int = 0
    #: Batches whose flush died mid-decision or mid-WAL-append: every
    #: future of such a batch resolves with the error (never a permanent
    #: ``DecisionPending``), and nothing was persisted.
    flush_failures: int = 0
    #: Requests failed by :meth:`OracleFrontend.fail_pending` — a host
    #: crash taking the open batch with it (the HA tier retries them
    #: against the next leader).
    crashed_requests: int = 0
    #: Submissions shed by admission control (typed ``Overloaded``).
    overload_rejections: int = 0
    #: High-water mark of decisions in flight (pending + flushed batches
    #: not yet durable); bounded by ``max_queue_depth`` when set.
    max_inflight_seen: int = 0
    #: Totals of the partitioned batch protocol's per-partition rounds
    #: (zero for monolithic backends): check rounds are phase-1 bulk
    #: validations, install rounds phase-3 bulk installs — one RPC each
    #: per partition per flush in a distributed deployment.
    partition_check_rounds: int = 0
    partition_install_rounds: int = 0
    cross_partition_requests: int = 0
    #: Executor wall-clock spent fanning each protocol phase out
    #: (seconds, accumulated across flushes), plus the most rounds any
    #: one partition drove in a single flush (<= 2 under the protocol).
    #: Together these make benchmark E21's overlap claim observable:
    #: under a parallel executor the phase wall-clock tracks the
    #: per-partition occupancy, not the total round count.
    partition_validate_seconds: float = 0.0
    partition_install_seconds: float = 0.0
    max_partition_rounds_seen: int = 0

    def avg_batch_size(self) -> float:
        """Mean decisions per batch; 0.0 before any flush (never raises
        on an empty workload)."""
        return self.batched_requests / self.batches if self.batches else 0.0


class OracleFrontend:
    """Batches begin/commit/abort traffic in front of a commit engine.

    Args:
        backend: the engine that owns the conflict-detection state — any
            :class:`~repro.core.engine.CommitEngine`: a plain SI/WSI
            :class:`~repro.core.status_oracle.StatusOracle`, a
            :class:`~repro.core.status_oracle.BoundedStatusOracle`, a
            :class:`~repro.core.partitioned.PartitionedOracle`, a
            :class:`~repro.percolator.engine.PercolatorEngine`, or an
            :class:`~repro.ssi.engine.SSIEngine`.  The frontend touches
            only the engine contract (see :mod:`repro.core.engine`), so
            foreign backends that duck-type it also work.
        max_batch: flush as soon as this many decisions are pending.
        flush_interval: flush a non-empty batch this many (injected-time)
            seconds after it opened — drive via ``clock``+``tick()`` or
            hand the simulator's scheduler in via ``scheduler``.
        clock: callable returning the current time; defaults to a manual
            clock advanced with :meth:`advance_time`.
        scheduler: optional ``(delay, callback)`` scheduling hook (the
            sim passes ``engine.call_in``) used to fire the flush-interval
            trigger without polling.
        wal: where group-commit records go.  Defaults to the backend's
            WAL; pass one explicitly to give a WAL-less backend (e.g. the
            partitioned oracle) group durability.
        begin_lease: how many start timestamps to lease from the backend
            per refill of the frontend's local begin lease.  The default
            (1) keeps per-call semantics: every ``begin()`` is one
            ``backend.begin()`` round-trip into the critical section.
            With ``n > 1`` the frontend takes ``backend.lease(n)`` once
            per ``n`` begins and serves the block locally — the
            begin-side twin of the batch-decide amortization (benchmark
            E20).  Timestamps unserved when the frontend closes (or
            crashes) become gaps, never reuse: the lease is durably
            reserved before it is served — through the backend's own
            WAL, or through this frontend's WAL for backends whose TSO
            persists nothing itself (the partitioned oracle; see the
            reservation-adoption block in ``__init__``).
        max_queue_depth: admission-control bound on decisions in flight
            (pending in the open batch plus flushed batches whose
            durability is still outstanding, see :meth:`mark_durable`).
            A submit that would exceed the bound is shed with a typed
            :class:`~repro.core.errors.Overloaded` rejection instead of
            queueing without bound — under sustained over-capacity
            offered load the frontend keeps serving at capacity with
            bounded queue depth (and hence bounded latency) while
            clients back off and retry
            (:class:`~repro.server.retry.RetryPolicy`).  ``None`` (the
            default) disables admission control and costs the submit
            path nothing.  Benchmark E22 measures the degradation mode.
        per_request: force the pre-``decide_batch`` decision path — one
            ``backend.commit()`` / ``backend.abort()`` call per batch item
            inside the critical section.  This is the benchmark E18
            baseline (and the fallback for backends without a
            ``_decide_batch`` engine).  Best paired with a WAL-less
            backend plus an explicit ``wal=`` (as E18 does): a backend
            that owns a WAL appends per-record inside ``commit()``, so the
            frontend then skips its group record to avoid double logging.

    Backends that implement the batch-decide engine hook
    (:meth:`~repro.core.engine.CommitEngine._decide_batch` — plain
    SI/WSI, bounded, partitioned, Percolator, SSI) decide the whole
    batch in one bulk pass with locally-bound state and batched stats
    accounting; that is where the group-commit speed-ups (benchmarks
    E17/E18, and E23's per-engine shootout) come from.
    """

    def __init__(
        self,
        backend: Any,
        max_batch: int = DEFAULT_MAX_BATCH,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        clock: Optional[Callable[[], float]] = None,
        scheduler: Optional[Callable[[float, Callable[[], None]], None]] = None,
        wal: Optional[BookKeeperWAL] = None,
        begin_lease: int = 1,
        per_request: bool = False,
        max_queue_depth: Optional[int] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if flush_interval <= 0:
            raise ValueError("flush_interval must be > 0")
        if begin_lease < 1:
            raise ValueError("begin_lease must be >= 1")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        self._backend = backend
        # Begin-lease state: [_lease_next, _lease_hi] is the unserved
        # remainder of the current lease; empty (next > hi) forces the
        # refill path, which is also where the closed check lives —
        # close() empties the lease, so the begin() fast path stays two
        # attribute touches.  Foreign backends without a lease() surface
        # degrade to per-call begins regardless of ``begin_lease``.
        self._lease_fn = getattr(backend, "lease", None)
        self._begin_lease = begin_lease if self._lease_fn is not None else 1
        self._lease_next = 1
        self._lease_hi = 0
        self._max_batch = max_batch
        self._flush_interval = flush_interval
        self._manual_time = 0.0
        self._clock = clock or (lambda: self._manual_time)
        self._scheduler = scheduler
        self._wal = wal if wal is not None else getattr(backend, "_wal", None)
        # Begin-path durability: a backend TSO that persists no
        # reservation marks (the partitioned oracle's shared TSO, or an
        # explicitly-passed bare TimestampOracle) would let recovery
        # reissue served begins — including lease blocks.  When this
        # frontend owns the WAL, adopt the TSO's reservation stream into
        # it: ts-reserve records, flushed before any covered timestamp
        # is served, exactly like StatusOracle._log_ts_reservation.
        tso = getattr(backend, "timestamp_oracle", None)
        if (
            self._wal is not None
            and tso is not None
            and not tso.persists_reservations
        ):
            frontend_wal = self._wal

            def _log_reservation(high_water: int) -> None:
                frontend_wal.append("ts-reserve", high_water, size=8)
                frontend_wal.flush()

            tso.attach_wal(_log_reservation)
        # The backend's batch-decide engine hook (every CommitEngine
        # supplies one); foreign backends fall back to per-request.
        self._engine = (
            None if per_request else getattr(backend, "_decide_batch", None)
        )
        self._per_request = self._engine is None
        # In per-request mode a CommitEngine backend that owns a WAL
        # already appends one record per decision inside commit(); the
        # frontend must not also write a group record for the same batch.
        self._backend_logs_wal = (
            self._per_request
            and isinstance(backend, CommitEngine)
            and getattr(backend, "_wal", None) is not None
        )
        # §4.1 condition 3: an empty write set commits immediately at
        # submit time — unless the backend runs the E16 naive ablation,
        # in which case only fully-empty footprints take the fast path.
        self._ro_exempt = not getattr(backend, "naive_read_only", False)
        # Backends that track active transactions (SSI's prune horizon)
        # must learn when a fast-path request ends, or the bypassed
        # start pins their active set forever.
        self._release_start = getattr(backend, "release_start", None)
        # Batch items: a raw CommitRequest (nowait commit), a raw int
        # (nowait client abort), or a (CommitRequest | int, CommitFuture)
        # pair for future-style submissions.  The open-batch *swap*
        # (flush / fail_pending taking the batch) is the handoff point
        # shared with whatever drives the drain, so it happens under
        # _flush_lock; appends are single-writer on the submit side.
        self._flush_lock = make_lock("frontend-flush")
        self._rc = active_checker()
        if self._rc is not None:
            self._rc.register_state("frontend.pending", "frontend-flush")
        self._pending: List[Any] = []  # guarded-by: _flush_lock
        self._open_cell: Optional[FlushedBatch] = None
        self._batch_opened_at: Optional[float] = None
        # Admission control: decisions admitted but not yet released
        # (released at flush, or at mark_durable when a flush listener
        # defers durability).  Tracked only when bounded, so the
        # unbounded submit path pays a single attribute check.
        self._max_queue_depth = max_queue_depth
        self._inflight = 0
        self._batch_seq = 0
        self._flush_listeners: List[Callable[[FlushedBatch], None]] = []
        #: CommitFuture freelist behind submit_commit_pooled /
        #: recycle_future (see :class:`FutureArena`).
        self.future_arena = FutureArena()
        self.stats = FrontendStats()
        self._closed = False

    # ------------------------------------------------------------------
    # client surface
    #
    # The four submit_* methods deliberately inline the same short
    # enqueue/trigger sequence instead of sharing a helper: submit is on
    # the measured hot path (benchmark E17's >=3x bar), and one extra
    # Python call per request costs more than the duplication saves.
    # Change one, change all four.
    # ------------------------------------------------------------------
    @property
    def backend(self) -> Any:
        return self._backend

    @property
    def wal(self) -> Optional[BookKeeperWAL]:
        return self._wal

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def begin_lease_remaining(self) -> int:
        """Unserved timestamps left in the local begin lease."""
        remaining = self._lease_hi - self._lease_next + 1
        return remaining if remaining > 0 else 0

    def session(
        self, name: Optional[str] = None, begin_lease: int = 1
    ) -> "ClientSession":
        from repro.server.session import ClientSession

        return ClientSession(self, name=name, begin_lease=begin_lease)

    def begin(self) -> int:
        """Serve a start timestamp immediately.

        With the default ``begin_lease=1`` every call is one
        ``backend.begin()`` round-trip (the paper already amortizes the
        *persistence* of begins, Appendix A; the round-trip itself is
        what the lease removes).  With ``begin_lease=n`` the common case
        is two attribute touches on the local lease; one
        ``backend.lease(n)`` refill pays for the next ``n`` begins.
        """
        ts = self._lease_next
        if ts <= self._lease_hi:
            self._lease_next = ts + 1
            return ts
        if self._closed:
            raise OracleClosed("oracle frontend is closed")
        if self._begin_lease == 1:
            return self._backend.begin()
        lo, hi = self._lease_fn(self._begin_lease)
        self.stats.begin_leases += 1
        self._lease_next = lo + 1
        self._lease_hi = hi
        return lo

    def begin_many(self, n: int) -> List[int]:
        """Serve ``n`` start timestamps in one call.

        Drains the local lease first, then leases exactly the shortfall
        in a single ``backend.lease()`` round-trip — equivalent to ``n``
        back-to-back :meth:`begin` calls (nothing else can consume the
        TSO mid-call), but with one critical-section entry regardless of
        ``begin_lease``.
        """
        if n < 1:
            raise ValueError("begin_many needs n >= 1")
        nxt = self._lease_next
        take = min(n, self._lease_hi - nxt + 1)
        if take > 0:
            out = list(range(nxt, nxt + take))
            self._lease_next = nxt + take
        else:
            out = []
        short = n - len(out)
        if short:
            if self._closed:
                raise OracleClosed("oracle frontend is closed")
            if self._lease_fn is None:
                out.extend(self._backend.begin() for _ in range(short))
            else:
                lo, hi = self._lease_fn(short)
                self.stats.begin_leases += 1
                out.extend(range(lo, hi + 1))
        return out

    def submit_commit(self, request: CommitRequest) -> CommitFuture:
        """Queue a commit request; returns its future.

        Read-only requests (empty write set, §4.1 condition 3 / §5.1)
        resolve immediately — they touch no oracle state and cost no WAL
        write, so they never wait on a batch.
        """
        if self._closed:
            raise OracleClosed("oracle frontend is closed")
        future = CommitFuture(request.start_ts)
        if not request.write_set and (self._ro_exempt or not request.read_set):
            backend_stats = self._backend.stats
            backend_stats.commits += 1
            backend_stats.read_only_commits += 1
            self.stats.read_only_fast_path += 1
            if self._release_start is not None:
                self._release_start(request.start_ts)
            future._committed = True
            # lint: skip=future-discipline -- blessed: read-only fast path
            # settles inline, before the future ever escapes the submit.
            future._done = True
            return future
        if self._max_queue_depth is not None:
            self._admit()
        pending = self._pending
        pending.append((request, future))  # lint: skip=guarded-by -- single-writer submit side
        if len(pending) == 1:
            self._open_batch()
        cell = self._open_cell
        future.batch = cell
        cell.futures.append(future)
        if len(pending) >= self._max_batch:
            self.flush(trigger="count")
        return future

    def submit_commit_pooled(self, request: CommitRequest) -> CommitFuture:
        """:meth:`submit_commit` drawing the future from the arena.

        The ingest-path variant for clients that want a handle per
        request without per-request allocation: the returned future
        comes from :attr:`future_arena` when possible, and the caller
        hands it back with :meth:`recycle_future` after reading the
        outcome.  Semantics are otherwise identical to
        :meth:`submit_commit` (read-only fast path included).
        """
        if self._closed:
            raise OracleClosed("oracle frontend is closed")
        if not request.write_set and (self._ro_exempt or not request.read_set):
            backend_stats = self._backend.stats
            backend_stats.commits += 1
            backend_stats.read_only_commits += 1
            self.stats.read_only_fast_path += 1
            if self._release_start is not None:
                self._release_start(request.start_ts)
            future = self.future_arena.acquire(request.start_ts)
            future._committed = True
            # lint: skip=future-discipline -- blessed: read-only fast path
            # settles inline, before the future ever escapes the submit.
            future._done = True
            return future
        if self._max_queue_depth is not None:
            self._admit()  # may shed: acquire the future only once admitted
        future = self.future_arena.acquire(request.start_ts)
        pending = self._pending
        pending.append((request, future))  # lint: skip=guarded-by -- single-writer submit side
        if len(pending) == 1:
            self._open_batch()
        cell = self._open_cell
        future.batch = cell
        cell.futures.append(future)
        if len(pending) >= self._max_batch:
            self.flush(trigger="count")
        return future

    def recycle_future(self, future: CommitFuture) -> None:
        """Hand a settled future back to :attr:`future_arena`."""
        self.future_arena.release(future)

    def submit_commit_nowait(self, request: CommitRequest) -> None:
        """Queue a commit request without a future (callback-style).

        The decision is still computed, persisted and counted exactly as
        for :meth:`submit_commit`; the outcome is delivered through the
        batch itself — ``on_flush`` listeners read it from
        :attr:`FlushedBatch.committed_payload` / ``aborted_payload``.
        This is the ingest path for throughput-bound clients (bulk load,
        log apply, benchmark E17) that track transactions by start
        timestamp rather than per-request handles.
        """
        if self._closed:
            raise OracleClosed("oracle frontend is closed")
        if not request.write_set and (self._ro_exempt or not request.read_set):
            backend_stats = self._backend.stats
            backend_stats.commits += 1
            backend_stats.read_only_commits += 1
            self.stats.read_only_fast_path += 1
            if self._release_start is not None:
                self._release_start(request.start_ts)
            return
        if self._max_queue_depth is not None:
            self._admit()
        pending = self._pending
        pending.append(request)  # lint: skip=guarded-by -- single-writer submit side
        if len(pending) == 1:
            self._open_batch()
        if len(pending) >= self._max_batch:
            self.flush(trigger="count")

    def submit_abort(self, start_ts: int) -> CommitFuture:
        """Queue a client-initiated abort; resolves at batch flush so the
        abort record rides the same group-commit WAL write."""
        if self._closed:
            raise OracleClosed("oracle frontend is closed")
        if self._max_queue_depth is not None:
            self._admit()
        future = CommitFuture(start_ts)
        pending = self._pending
        pending.append((start_ts, future))  # lint: skip=guarded-by -- single-writer submit side
        self.stats.client_aborts += 1
        if len(pending) == 1:
            self._open_batch()
        cell = self._open_cell
        future.batch = cell
        cell.futures.append(future)
        if len(pending) >= self._max_batch:
            self.flush(trigger="count")
        return future

    def submit_abort_nowait(self, start_ts: int) -> None:
        """Queue a client-initiated abort without a future."""
        if self._closed:
            raise OracleClosed("oracle frontend is closed")
        if self._max_queue_depth is not None:
            self._admit()
        pending = self._pending
        pending.append(start_ts)  # lint: skip=guarded-by -- single-writer submit side
        self.stats.client_aborts += 1
        if len(pending) == 1:
            self._open_batch()
        if len(pending) >= self._max_batch:
            self.flush(trigger="count")

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        """Claim one in-flight slot or shed the request (``Overloaded``).

        Called only when ``max_queue_depth`` is set — the submit paths
        gate on that so the unbounded configuration pays one attribute
        check.  A slot covers the request from submit until its batch
        is durable (flush, or :meth:`mark_durable` when a listener
        defers durability), so the bound caps the queue *depth*, not
        just the open batch.
        """
        inflight = self._inflight
        if inflight >= self._max_queue_depth:
            self.stats.overload_rejections += 1
            raise Overloaded(inflight, self._max_queue_depth)
        inflight += 1
        self._inflight = inflight
        if inflight > self.stats.max_inflight_seen:
            self.stats.max_inflight_seen = inflight

    def _release(self, cell: FlushedBatch) -> None:
        """Give a batch's admission slots back (idempotent)."""
        if self._max_queue_depth is None or cell.released:
            return
        cell.released = True
        self._inflight -= cell.requests

    def mark_durable(self, batch: FlushedBatch) -> None:
        """Release a flushed batch's admission slots at durability.

        When an ``on_flush`` listener sets :attr:`FlushedBatch.durable_event`
        (the simulator modelling the WAL write), the batch's requests
        stay counted against ``max_queue_depth`` until the integration
        layer calls this — in flight means *not yet durable*, not merely
        *not yet decided*.  No-op when admission control is disabled or
        the batch already released its slots.
        """
        self._release(batch)

    @property
    def inflight(self) -> int:
        """Decisions currently counted against ``max_queue_depth``
        (pending in the open batch + flushed-not-yet-durable); stays 0
        when admission control is disabled."""
        return self._inflight

    # ------------------------------------------------------------------
    # flush triggers
    # ------------------------------------------------------------------
    def _open_batch(self) -> None:
        self._batch_seq += 1
        self._open_cell = FlushedBatch(seq=self._batch_seq, futures=[])
        self._batch_opened_at = self._clock()
        if self._scheduler is not None:
            cell = self._open_cell
            self._scheduler(self._flush_interval, lambda: self._timer_fired(cell))

    def _timer_fired(self, cell: FlushedBatch) -> None:
        # Fire only if the batch that armed this timer is still open.
        if self._open_cell is cell and self._pending:
            self.flush(trigger="timer")

    def tick(self) -> bool:
        """Fire the flush-interval trigger if it has elapsed (polling
        alternative to ``scheduler`` for manual-clock callers)."""
        if not self._pending:
            return False
        if self._clock() - self._batch_opened_at >= self._flush_interval:
            self.flush(trigger="timer")
            return True
        return False

    def advance_time(self, dt: float) -> None:
        """Advance the internal manual clock (standalone mode only)."""
        self._manual_time += dt

    def on_flush(self, listener: Callable[[FlushedBatch], None]) -> None:
        """Register a listener called with each :class:`FlushedBatch`
        after its WAL record is queued but *before* futures resolve."""
        self._flush_listeners.append(listener)

    # ------------------------------------------------------------------
    # the flush itself: one critical section per batch
    # ------------------------------------------------------------------
    def flush(self, trigger: str = "force") -> Optional[FlushedBatch]:
        """Process every pending request and resolve its future.

        Everything in here happens atomically with respect to other
        batches — this *is* the §6.3 critical section, entered once per
        batch instead of once per request.
        """
        with self._flush_lock:
            if self._rc is not None:
                self._rc.access("frontend.pending")
            batch = self._pending
            if not batch:
                return None
            self._pending = []
            cell = self._open_cell
            self._open_cell = None
            self._batch_opened_at = None
        cell.requests = len(batch)

        payload_commits: List[Tuple[int, int, Any]] = []
        payload_aborts: List[int] = []
        errors: List[Tuple[int, BaseException]] = []
        rounds = None
        # A crash anywhere between here and the WAL append must not
        # strand the batch's futures in permanent DecisionPending: the
        # unbatched oracle would have raised at the call site, so the
        # batched one resolves every future with the error instead (the
        # per-request errors list still isolates *decision* errors to
        # their own request — this except is for the engine or the WAL
        # dying, which dooms the whole batch).
        try:
            if self._per_request:
                counters = self._process_per_request(
                    batch, payload_commits, payload_aborts, errors
                )
            else:
                # The backend's batch-decide engine: one bulk pass over
                # the whole batch (see StatusOracle.decide_batch).
                # Futures are filled in directly; payloads come back in
                # decision order.
                counters = self._engine(
                    batch, payload_commits, payload_aborts, errors, None
                )
                # The partitioned engine reports how many per-partition
                # protocol rounds the flush cost (BatchRounds);
                # monolithic engines have no such notion, leaving None.
                rounds = getattr(self._backend, "last_flush_rounds", None)
            commits, aborts, rows_checked, rows_updated = counters

            # One group-commit record for the whole batch (§6.3 /
            # Appendix A amortization).  Batches that decided nothing
            # durable — e.g. all requests were read-only — write no
            # record at all; in per-request mode a WAL-owning backend
            # already logged each decision itself.  The loop-built
            # triples are already immutable (rows stay the request's
            # frozenset); append_decisions freezes the payload once and
            # owns the record-size rule.
            wal = self._wal
            wal_written = False
            if (
                wal is not None
                and (payload_commits or payload_aborts)
                and not self._backend_logs_wal
            ):
                payload = wal.append_decisions(payload_commits, payload_aborts)
                wal_written = True
            else:
                payload = (tuple(payload_commits), tuple(payload_aborts))
        except Exception as exc:
            self.stats.flush_failures += 1
            self._abandon_batch(cell, exc)
            raise

        stats = self.stats
        stats.batches += 1
        stats.batched_requests += len(batch)
        if len(batch) > stats.max_batch_seen:
            stats.max_batch_seen = len(batch)
        if trigger == "count":
            stats.flushes_by_count += 1
        elif trigger == "timer":
            stats.flushes_by_timer += 1
        elif trigger == "close":
            stats.flushes_by_close += 1
        else:
            stats.flushes_by_force += 1
        if rounds is not None:
            stats.partition_check_rounds += rounds.check_rounds
            stats.partition_install_rounds += rounds.install_rounds
            stats.cross_partition_requests += rounds.cross_requests
            stats.partition_validate_seconds += rounds.validate_wall
            stats.partition_install_seconds += rounds.install_wall
            if rounds.max_partition_rounds > stats.max_partition_rounds_seen:
                stats.max_partition_rounds_seen = rounds.max_partition_rounds
            cell.protocol_rounds = rounds

        cell.trigger = trigger
        cell.commits = commits
        cell.aborts = aborts
        cell.rows_checked = rows_checked
        cell.rows_updated = rows_updated
        cell.wal_written = wal_written
        cell.committed_payload, cell.aborted_payload = payload
        cell.errors = tuple(errors)
        for listener in self._flush_listeners:
            listener(cell)
        # Admission slots release at flush unless a listener attached a
        # durability event — then they stay held until mark_durable(),
        # so "in flight" spans submit through durable.
        if cell.durable_event is None:
            self._release(cell)
        # Group commit: this single flag resolves every future of the
        # batch at once, after the WAL record is queued (and after the
        # listeners had a chance to attach durability hooks).
        cell.flushed = True
        if cell.has_callbacks:
            for fut in cell.futures:
                fut._fire_callbacks()
        # Release the sibling-future list: a long-lived future handle
        # should keep its batch's outcome payloads alive, not every other
        # future of the batch.
        cell.futures = []
        return cell

    def _abandon_batch(self, cell: FlushedBatch, exc: BaseException) -> None:
        """Resolve a doomed batch: every unresolved future gets ``exc``.

        Used on the two crash paths — a flush that died mid-decision or
        mid-WAL-append, and :meth:`fail_pending` (host crash).  Futures
        that already carry a per-request decision error keep it; everyone
        else resolves with the batch-level error, so no future is ever a
        permanent ``DecisionPending``.  Nothing from the batch was made
        durable, and its admission slots are given back.
        """
        cell.trigger = "failed"
        for fut in cell.futures:
            if fut._error is None:
                fut._error = exc
        cell.flushed = True
        if cell.has_callbacks:
            for fut in cell.futures:
                fut._fire_callbacks()
        cell.futures = []
        self._release(cell)

    def fail_pending(self, exc: BaseException) -> int:
        """Crash path: fail the open batch without deciding anything.

        A host crash takes the open batch with it — those requests were
        never decided, never persisted, and would otherwise wait forever
        on a flush that can no longer happen.  Their futures resolve
        with ``exc`` (the HA tier then retries them against the next
        leader with their original start timestamps).  Returns how many
        requests were failed.
        """
        with self._flush_lock:
            if self._rc is not None:
                self._rc.access("frontend.pending")
            batch = self._pending
            if not batch:
                return 0
            self._pending = []
            cell = self._open_cell
            self._open_cell = None
            self._batch_opened_at = None
        cell.requests = len(batch)
        self.stats.crashed_requests += len(batch)
        self._abandon_batch(cell, exc)
        return len(batch)

    def _process_per_request(self, batch, payload_commits, payload_aborts,
                             errors):
        """The pre-``decide_batch`` decision path: one ``backend.commit``
        / ``backend.abort`` call per batch item inside the critical
        section.  Kept as the benchmark E18 baseline — it quantifies the
        per-request interpreter overhead the batch engine removes — and
        as the fallback for foreign backends without an engine."""
        backend = self._backend
        backend_stats = getattr(backend, "stats", None)
        # The partitioned oracle counts checked rows in its per-partition
        # stats, not the top-level ones — sum both so every backend kind
        # reports the same FlushedBatch.rows_checked as its engine mode.
        partitions = getattr(backend, "partitions", ())

        def rows_checked_now():
            total = backend_stats.rows_checked if backend_stats is not None else 0
            for partition in partitions:
                total += partition.stats.rows_checked
            return total

        rows_checked_before = rows_checked_now()
        commits = aborts = rows_updated = 0
        for item in batch:
            req, fut = item if item.__class__ is tuple else (item, None)
            try:
                if req.__class__ is not CommitRequest:
                    backend.abort(req)
                    aborts += 1
                    payload_aborts.append(req)
                    if fut is not None:
                        fut._reason = CLIENT_ABORT
                    continue
                result = backend.commit(req)
            except Exception as exc:
                start = req if req.__class__ is not CommitRequest else req.start_ts
                errors.append((start, exc))
                if fut is not None:
                    fut._error = exc
                continue
            if result.committed:
                commits += 1
                if result.commit_ts is not None:
                    # Read-only commits (commit_ts None) cost no WAL
                    # payload; only write commits are made durable.
                    rows_updated += len(req.write_set)
                    payload_commits.append(
                        (req.start_ts, result.commit_ts, req.write_set)
                    )
                if fut is not None:
                    fut._committed = True
                    fut._commit_ts = result.commit_ts
            else:
                aborts += 1
                payload_aborts.append(req.start_ts)
                if fut is not None:
                    fut._reason = result.reason
                    fut._row = result.conflict_row
            # Futures are left in exactly the state the batch engines
            # leave them: outcome fields set, ``_result`` built lazily
            # on first read — so a resolved future is indistinguishable
            # across decision paths (pinned by tests/server).
        return (
            commits,
            aborts,
            rows_checked_now() - rows_checked_before,
            rows_updated,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush the open batch (and the WAL) and stop accepting work.

        The backend oracle stays open — the frontend is a layer over it,
        not its owner — but a partitioned backend's *owned* round
        executor is shut down (worker threads joined; the backend falls
        back to serial rounds, deciding identically), so tearing down a
        frontend never leaves dangling threads."""
        if self._closed:
            return
        self.flush(trigger="close")
        if self._wal is not None:
            self._wal.flush()
        # Drop the unserved lease remainder: those timestamps become
        # gaps (they were durably reserved, so nothing can reuse them),
        # and an emptied lease routes begin() to the closed check.
        self._lease_next, self._lease_hi = 1, 0
        self._closed = True
        shutdown_executor = getattr(self._backend, "shutdown_executor", None)
        if shutdown_executor is not None:
            shutdown_executor()

    @property
    def closed(self) -> bool:
        return self._closed
