"""A small discrete-event simulation engine (SimPy-flavoured).

The paper's evaluation ran on 34 machines; we reproduce the *shape* of
its curves with a deterministic discrete-event simulation.  This engine
provides the three primitives the cluster model needs:

* **events** scheduled at simulated times;
* **processes** — Python generators that ``yield`` events and resume when
  they fire (client loops, server loops);
* **resources** — FIFO servers with finite capacity (oracle critical
  section, region-server CPUs and disks), which is where queueing delay,
  and hence every latency-vs-throughput knee in Figs. 5–10, comes from.

Determinism: the event heap breaks time ties by insertion sequence, and
all randomness lives in explicitly seeded RNGs owned by the callers, so
a simulation is reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterator, List, Optional, Tuple

#: A process is a generator yielding Events.
Process = Generator["Event", Any, None]


class Event:
    """Something that will happen; processes wait on it by yielding it."""

    __slots__ = ("engine", "triggered", "value", "_callbacks")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event immediately (at the current simulated time)."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return self


class Engine:
    """The event loop: a heap of (time, sequence, action)."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(self, when: float, action: Callable[[], None]) -> None:
        if when < self.now:
            raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
        heapq.heappush(self._heap, (when, self._seq, action))
        self._seq += 1

    def call_in(self, delay: float, action: Callable[[], None]) -> None:
        self.call_at(self.now + delay, action)

    def timeout(self, delay: float) -> Event:
        """An event that fires ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        event = Event(self)
        self.call_in(delay, lambda: event.succeed())
        return event

    def event(self) -> Event:
        """A bare event, triggered manually via ``succeed``."""
        return Event(self)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def process(self, generator: Process) -> Event:
        """Run a generator as a process; returns its completion event."""
        done = Event(self)

        def step(fired: Optional[Event]) -> None:
            try:
                target = generator.send(fired.value if fired is not None else None)
            except StopIteration as stop:
                if not done.triggered:
                    done.succeed(stop.value)
                return
            target.add_callback(step)

        # Start on the next tick so the caller can finish wiring up.
        self.call_in(0.0, lambda: step(None))
        return done

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Process events until the heap drains or ``until`` is reached."""
        while self._heap:
            when, _, action = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = when
            action()
        if until is not None:
            self.now = max(self.now, until)

    @property
    def pending_count(self) -> int:
        return len(self._heap)


class Resource:
    """A FIFO multi-server queue: ``capacity`` requests in service at once.

    Usage inside a process::

        grant = resource.acquire()
        yield grant
        yield engine.timeout(service_time)
        resource.release()

    or the one-shot helper ``yield from resource.serve(service_time)``.
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_service = 0
        self._waiting: Deque[Event] = deque()
        # metrics
        self.total_requests = 0
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None
        self.max_queue_len = 0

    # ------------------------------------------------------------------
    def acquire(self) -> Event:
        self.total_requests += 1
        grant = Event(self.engine)
        if self._in_service < self.capacity:
            self._enter_service()
            grant.succeed()
        else:
            self._waiting.append(grant)
            self.max_queue_len = max(self.max_queue_len, len(self._waiting))
        return grant

    def release(self) -> None:
        if self._in_service <= 0:
            raise RuntimeError(f"release() without acquire() on {self.name!r}")
        self._in_service -= 1
        self._account_idle()
        if self._waiting:
            grant = self._waiting.popleft()
            self._enter_service()
            grant.succeed()

    def serve(self, service_time: float) -> Iterator[Event]:
        """acquire -> hold for service_time -> release, as a sub-process."""
        yield self.acquire()
        try:
            yield self.engine.timeout(service_time)
        finally:
            self.release()

    # ------------------------------------------------------------------
    # utilization accounting
    # ------------------------------------------------------------------
    def _enter_service(self) -> None:
        if self._in_service == 0:
            self._busy_since = self.engine.now
        self._in_service += 1

    def _account_idle(self) -> None:
        if self._in_service == 0 and self._busy_since is not None:
            self.busy_time += self.engine.now - self._busy_since
            self._busy_since = None

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time at least one server was busy."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.engine.now - self._busy_since
        total = elapsed if elapsed is not None else self.engine.now
        return busy / total if total > 0 else 0.0

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    @property
    def in_service(self) -> int:
        return self._in_service
