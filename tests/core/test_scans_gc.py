"""Tests for transactional scans (search-condition reads) and version GC."""

import pytest

from repro.core import TransactionManager, create_system, make_oracle
from repro.core.errors import ConflictAbort
from repro.hbase import HBaseCluster


class TestTransactionalScan:
    def _load(self, manager, items):
        txn = manager.begin()
        for row, value in items:
            txn.write(row, value)
        txn.commit()

    def test_scan_returns_visible_rows(self, wsi_system):
        self._load(wsi_system.manager, [(i, i * 10) for i in range(10)])
        txn = wsi_system.manager.begin()
        assert txn.scan(3, 7) == {3: 30, 4: 40, 5: 50, 6: 60}

    def test_scan_respects_snapshot(self, wsi_system):
        self._load(wsi_system.manager, [(1, "old")])
        reader = wsi_system.manager.begin()
        writer = wsi_system.manager.begin()
        writer.write(2, "new-row")
        writer.commit()
        # reader's snapshot predates row 2: the scan must not see it.
        assert reader.scan(0, 10) == {1: "old"}

    def test_scan_sees_own_writes(self, wsi_system):
        txn = wsi_system.manager.begin()
        txn.write(5, "mine")
        assert txn.scan(0, 10) == {5: "mine"}

    def test_scanned_rows_enter_read_set(self, wsi_system):
        self._load(wsi_system.manager, [(i, i) for i in range(5)])
        txn = wsi_system.manager.begin()
        txn.scan(0, 5)
        assert set(range(5)) <= txn.read_set

    def test_scan_conflict_detected_at_commit(self, wsi_system):
        """§5: search-condition reads conflict like primary-key reads."""
        self._load(wsi_system.manager, [(i, i) for i in range(5)])
        scanner = wsi_system.manager.begin()
        scanner.scan(0, 5)
        scanner.write(100, "summary")
        overwriter = wsi_system.manager.begin()
        overwriter.write(3, "changed")
        overwriter.commit()
        with pytest.raises(ConflictAbort):
            scanner.commit()

    def test_scan_over_cluster(self):
        cluster = HBaseCluster.for_integer_keyspace(num_rows=100, num_servers=4)
        manager = TransactionManager(make_oracle("wsi"), cluster)
        txn = manager.begin()
        for row in (10, 40, 70):  # spread across regions
            txn.write(row, row)
        txn.commit()
        reader = manager.begin()
        assert reader.scan(0, 100) == {10: 10, 40: 40, 70: 70}

    def test_scan_skips_deleted(self, wsi_system):
        self._load(wsi_system.manager, [(1, "a"), (2, "b")])
        deleter = wsi_system.manager.begin()
        deleter.delete(1)
        deleter.commit()
        txn = wsi_system.manager.begin()
        assert txn.scan(0, 5) == {2: "b"}

    def test_unsupported_backend_raises(self, wsi_system):
        class NoScanStore:
            put = delete_version = get_versions = None

        txn = wsi_system.manager.begin()
        txn._manager = type(txn._manager)(
            wsi_system.oracle, wsi_system.store, wsi_system.manager.commit_source
        )
        txn._manager.store = NoScanStore()
        with pytest.raises(TypeError):
            txn.scan(0, 1)


class TestGarbageCollection:
    def test_watermark_is_oldest_active_snapshot(self, wsi_system):
        manager = wsi_system.manager
        t1 = manager.begin()
        t2 = manager.begin()
        assert manager.gc_watermark() == t1.start_ts
        t1.commit()
        assert manager.gc_watermark() == t2.start_ts

    def test_watermark_with_no_active_txns(self, wsi_system):
        manager = wsi_system.manager
        assert manager.gc_watermark() == wsi_system.oracle.timestamp_oracle.peek()

    def test_gc_removes_dead_versions(self, wsi_system):
        manager = wsi_system.manager
        for i in range(5):
            txn = manager.begin()
            txn.write("row", f"v{i}")
            txn.commit()
        assert wsi_system.store.version_count == 5
        removed = manager.collect_garbage()
        assert removed == 4  # only the newest survives
        reader = manager.begin()
        assert reader.read("row") == "v4"

    def test_gc_preserves_versions_active_snapshots_need(self, wsi_system):
        manager = wsi_system.manager
        t0 = manager.begin()
        t0.write("row", "old")
        t0.commit()
        pinned = manager.begin()  # holds the old snapshot open
        expected = pinned.read("row")
        for i in range(3):
            txn = manager.begin()
            txn.write("row", f"new{i}")
            txn.commit()
        manager.collect_garbage()
        # pinned must still read its snapshot value after GC
        assert pinned.read("row", track=False) == expected == "old"

    def test_gc_returns_zero_when_nothing_to_do(self, wsi_system):
        manager = wsi_system.manager
        txn = manager.begin()
        txn.write("row", 1)
        txn.commit()
        assert manager.collect_garbage() == 0

    def test_gc_over_cluster(self):
        cluster = HBaseCluster.for_integer_keyspace(num_rows=100, num_servers=3)
        manager = TransactionManager(make_oracle("wsi"), cluster)
        for i in range(4):
            txn = manager.begin()
            txn.write(50, f"v{i}")
            txn.commit()
        removed = manager.collect_garbage()
        assert removed == 3
        assert manager.begin().read(50) == "v3"
