"""Dense, process-independent key interning for the array lastCommit.

The array-backed conflict-detection store (:mod:`repro.core.lastcommit`)
replaces the per-row dict probe with a flat ``array('q')`` of commit
timestamps indexed by a *dense integer slot id*.  :class:`KeyInterner`
owns that id space: it maps each row key seen by an oracle (or by one
shard of a partitioned oracle — interners are never shared across
shards) to the next free slot, and remembers the reverse mapping so the
store can still iterate as a ``Mapping``.

**Slot 0 is reserved** — no key is ever assigned it, and the store
keeps its timestamp permanently 0 (the absent sentinel).  Ids therefore
start at 1, which lets the vectorised lookup lane below use 0 for
"unseen" with no masking.

Ids must be **stable across processes** for the same reason shard
routing must be (see :mod:`repro.core.sharding`): a replayed WAL or a
warm standby re-interning the same workload must land every key on the
same slot, or any id-keyed artifact (epoch snapshots, debug dumps,
cross-process comparisons in tests) silently diverges.  Builtin
``hash()`` salting makes *set iteration order* of ``str`` keys differ
per process, and write/read sets arrive as ``frozenset``\\ s — so
:meth:`KeyInterner.intern_many` orders the unseen keys of each batch by
``(stable_hash(key), repr(key))`` before assigning ids.  Given the same
sequence of key-*sets*, every process assigns identical ids regardless
of ``PYTHONHASHSEED`` (pinned by subprocess tests in
``tests/core/test_keyspace.py``).

Single-key :meth:`intern` is first-come-first-served — callers on
deterministic paths (install loops over a batch's write sets) reach it
only through :meth:`intern_many` or in an order they already control.

Equal keys intern equal: the id table is a dict, so the numeric
cross-type equality ``2 == 2.0 == Decimal(2)`` collapses to one id,
exactly as the dict backend collapses them to one ``lastCommit`` entry.

**The int lane.**  Conflict checks are bound by one random dict probe
per row — probing ``lastCommit`` directly (dict backend) or probing the
id table (array backend) costs the same, so interning alone buys
nothing.  For the dominant case of plain non-negative ``int`` row keys,
the interner therefore also maintains ``_int_table``: a flat
``array('q')`` mapping key -> slot id (0 = unseen), which numpy can
gather from *without any per-row Python work*.  The lane is valid while
every interned key is an exact ``int`` (``_int_lane`` flag; any other
key type disables it permanently).  Safety note for the store's
vectorised check: a *checked* key of another numeric type may truncate
into the wrong table cell, but while the lane is on no such key can be
interned, so the gathered maximum can only over-report (a suspected
conflict is always re-verified scalar-wise against the authoritative
dict) and never under-report — no false negatives, and false positives
are filtered by the rescan.  Interned int keys at or above
:data:`INT_LANE_BOUND` are simply not recorded; the store's bounds
guard (checked max >= table length) routes any request that could see
them to the scalar path.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from .sharding import stable_hash

__all__ = ["INT_LANE_BOUND", "KeyInterner"]

#: Largest int key recorded in the vectorised lookup lane.  The table
#: is direct-addressed (8 bytes per possible key below the largest seen)
#: so the bound caps its worst-case footprint at 16 MB.
INT_LANE_BOUND = 1 << 21


def _intern_order(key: Hashable) -> Tuple[int, str]:
    """Process-independent total order for id assignment.

    ``stable_hash`` does the heavy lifting; ``repr`` breaks the rare
    CRC-32 tie deterministically (canonical for the scalar row keys
    this repository uses — the same caveat as ``stable_hash`` itself).
    """
    return (stable_hash(key), repr(key))


class KeyInterner:
    """Stable key -> dense int slot id (one per store, one per shard).

    Slot ids are 1-based; slot 0 is the reserved absent sentinel.
    """

    __slots__ = ("_ids", "_keys", "_int_table", "_int_lane")

    def __init__(self) -> None:
        #: key -> slot id.  Dict equality semantics make cross-type-equal
        #: numeric keys share a slot, matching the dict backend.
        self._ids: Dict[Hashable, int] = {}
        #: slot id -> key; index 0 is the reserved sentinel.
        self._keys: List[Optional[Hashable]] = [None]
        #: int key -> slot id, 0 = unseen: the numpy-gatherable lane.
        self._int_table: array = array("q")
        #: lane validity: False once any non-``int`` key is interned.
        self._int_lane = True

    def __len__(self) -> int:
        """Number of interned keys (the reserved slot doesn't count)."""
        return len(self._keys) - 1

    @property
    def slot_capacity(self) -> int:
        """Slots a backing array must provide (reserved slot included)."""
        return len(self._keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._ids

    def id_of(self, key: Hashable) -> int:
        """The slot of an already-interned key (KeyError when unseen)."""
        return self._ids[key]

    def get(self, key: Hashable, default: Optional[int] = None) -> Optional[int]:
        return self._ids.get(key, default)

    def key_of(self, kid: int) -> Hashable:
        """Reverse lookup: the key occupying slot ``kid`` (1-based)."""
        return self._keys[kid]

    def _note(self, key: Hashable, kid: int) -> None:
        """Record a fresh interning in the int lane (or invalidate it)."""
        if self._int_lane:
            if key.__class__ is int:
                if 0 <= key < INT_LANE_BOUND:
                    table = self._int_table
                    size = len(table)
                    if key >= size:
                        # Doubling growth: zero-fill (0 == unseen) so a
                        # straight ascending intern stays amortised O(n).
                        grown = max(key + 1, 2 * size)
                        table.frombytes(bytes((grown - size) << 3))
                    table[key] = kid
                elif key < 0:
                    # A negative interned key would dodge the store's
                    # checked-max bounds guard (numpy fancy indexing
                    # wraps negatives), so it could be *missed* by the
                    # gather — the one alias direction the rescan can't
                    # repair.  End the lane.
                    self._int_lane = False
                # Int keys at/above the bound are *not* recorded: the
                # store's checked-max >= len(table) guard falls back to
                # the scalar path whenever such a key could matter.
            else:
                # Any non-int key (str, float, bool, tuple...) ends the
                # lane for good: vectorised casts could alias it.
                self._int_lane = False

    def intern(self, key: Hashable) -> int:
        """Slot of ``key``, assigning the next free one on first sight."""
        ids = self._ids
        kid = ids.get(key)
        if kid is None:
            keys = self._keys
            kid = len(keys)
            ids[key] = kid
            keys.append(key)
            self._note(key, kid)
        return kid

    def intern_many(self, keys: Iterable[Hashable]) -> List[int]:
        """Slots for ``keys`` (in input order), interning unseen ones.

        Unseen keys are assigned ids in ``(stable_hash, repr)`` order,
        not input order, so a ``frozenset`` input (whose iteration
        order is salt-dependent for strings) yields the same ids in
        every process.
        """
        ids = self._ids
        missing = [key for key in keys if key not in ids]
        if missing:
            missing.sort(key=_intern_order)
            table = self._keys
            for key in missing:
                if key not in ids:  # duplicates inside one batch
                    kid = len(table)
                    ids[key] = kid
                    table.append(key)
                    self._note(key, kid)
        return [ids[key] for key in keys]

    @property
    def int_lane_ok(self) -> bool:
        """True while the vectorised int lane is usable."""
        return self._int_lane

    @property
    def int_table(self) -> array:
        """The int-key lookup lane (key -> slot, 0 = unseen)."""
        return self._int_table
